"""Tests for charge policies, the suspect detector, and dumpsys."""

import pytest

from repro.android import (
    NotExportedError,
    SCREEN_BRIGHTNESS,
    SecurityException,
    dumpsys,
    dumpsys_activity,
    dumpsys_battery,
    dumpsys_power,
    dumpsys_services,
    explicit,
)
from repro.core import (
    CollateralEnergyDetector,
    FullCharge,
    ProportionalSplit,
    ScreenDelta,
    attach_eandroid,
)
from repro.power import NEXUS4

from helpers import booted_system, make_app


@pytest.fixture
def rig():
    system = booted_system(make_app("com.mal"), make_app("com.vic"))
    from repro.android import SCREEN_BRIGHT_WAKE_LOCK

    system.power_manager.acquire(
        system.package_manager.system_uid, SCREEN_BRIGHT_WAKE_LOCK, "rig"
    )
    return system


class TestChargePolicies:
    def _attack(self, system, policy):
        ea = attach_eandroid(system, policy=policy)
        mal = system.uid_of("com.mal")
        vic = system.uid_of("com.vic")
        system.hardware.cpu.set_utilization(vic, 0.5)
        system.am.bind_service(mal, explicit("com.vic", "PlainService"))
        system.run_for(60.0)
        return ea, mal, vic

    def test_full_charge_is_default(self, rig):
        ea, mal, vic = self._attack(rig, None)
        assert ea.accounting.policy.name == "full"
        charged = ea.accounting.collateral_breakdown(mal)[vic]
        assert charged == pytest.approx(rig.hardware.meter.energy_j(owner=vic))

    def test_proportional_split(self, rig):
        ea, mal, vic = self._attack(rig, ProportionalSplit(0.5))
        charged = ea.accounting.collateral_breakdown(mal)[vic]
        assert charged == pytest.approx(
            0.5 * rig.hardware.meter.energy_j(owner=vic)
        )

    def test_split_fraction_validated(self):
        with pytest.raises(ValueError):
            ProportionalSplit(1.5)

    def test_screen_delta_discounts_baseline(self, rig):
        policy = ScreenDelta(NEXUS4.screen, baseline_brightness=102)
        ea = attach_eandroid(rig, policy=policy)
        mal = rig.uid_of("com.mal")
        rig.settings.put(mal, SCREEN_BRIGHTNESS, 255)
        rig.run_for(100.0)
        from repro.core import SCREEN_TARGET

        charged = ea.accounting.collateral_breakdown(mal)[SCREEN_TARGET]
        raw = rig.hardware.meter.screen_energy_j(start=0.0)
        expected_delta = (
            (NEXUS4.screen.power_mw(255) - NEXUS4.screen.power_mw(102)) * 100 / 1000
        )
        assert charged < raw
        assert charged == pytest.approx(expected_delta, rel=0.01)

    def test_screen_delta_leaves_app_targets_alone(self, rig):
        policy = ScreenDelta(NEXUS4.screen)
        ea, mal, vic = self._attack(rig, policy)
        charged = ea.accounting.collateral_breakdown(mal)[vic]
        assert charged == pytest.approx(rig.hardware.meter.energy_j(owner=vic))

    def test_screen_delta_never_negative(self, rig):
        policy = ScreenDelta(NEXUS4.screen, baseline_brightness=255)
        ea = attach_eandroid(rig, policy=policy)
        mal = rig.uid_of("com.mal")
        rig.settings.put(mal, SCREEN_BRIGHTNESS, 200)
        rig.settings.put(mal, SCREEN_BRIGHTNESS, 255)
        rig.run_for(50.0)
        from repro.core import SCREEN_TARGET

        breakdown = ea.accounting.collateral_breakdown(mal)
        assert breakdown.get(SCREEN_TARGET, 0.0) == 0.0


class TestDetector:
    def test_ranks_attacker_first(self, rig):
        ea = attach_eandroid(rig)
        mal = rig.uid_of("com.mal")
        vic = rig.uid_of("com.vic")
        rig.hardware.cpu.set_utilization(vic, 0.6)
        rig.am.bind_service(mal, explicit("com.vic", "PlainService"))
        rig.run_for(120.0)
        detector = CollateralEnergyDetector(rig, ea.accounting)
        suspects = detector.rank_suspects()
        assert suspects[0].uid == mal
        assert suspects[0].mechanisms == ["service_bind"]
        assert "Vic" in suspects[0].targets
        assert suspects[0].live_attacks == 1

    def test_flag_thresholds(self, rig):
        ea = attach_eandroid(rig)
        mal = rig.uid_of("com.mal")
        vic = rig.uid_of("com.vic")
        rig.hardware.cpu.set_utilization(vic, 0.6)
        rig.am.bind_service(mal, explicit("com.vic", "PlainService"))
        rig.run_for(120.0)
        detector = CollateralEnergyDetector(
            rig, ea.accounting, min_collateral_j=1.0, min_share=0.05
        )
        flagged = detector.flag()
        assert [s.uid for s in flagged] == [mal]
        strict = CollateralEnergyDetector(
            rig, ea.accounting, min_collateral_j=1e9
        )
        assert strict.flag() == []

    def test_stealth_ratio_high_for_pure_malware(self, rig):
        ea = attach_eandroid(rig)
        mal = rig.uid_of("com.mal")
        vic = rig.uid_of("com.vic")
        rig.hardware.cpu.set_utilization(vic, 0.6)
        rig.am.bind_service(mal, explicit("com.vic", "PlainService"))
        rig.run_for(60.0)
        suspect = CollateralEnergyDetector(rig, ea.accounting).rank_suspects()[0]
        assert suspect.stealth_ratio > 100  # drains much, shows nothing

    def test_no_suspects_without_collateral(self, rig):
        ea = attach_eandroid(rig)
        rig.run_for(60.0)
        detector = CollateralEnergyDetector(rig, ea.accounting)
        assert detector.rank_suspects() == []
        assert detector.render_text() == "no collateral energy recorded"

    def test_render_text(self, rig):
        ea = attach_eandroid(rig)
        mal = rig.uid_of("com.mal")
        rig.am.bind_service(mal, explicit("com.vic", "PlainService"))
        rig.hardware.cpu.set_utilization(rig.uid_of("com.vic"), 0.3)
        rig.run_for(60.0)
        text = CollateralEnergyDetector(rig, ea.accounting).render_text()
        assert "Mal" in text and "collateral" in text


class TestDumpsys:
    def test_activity_dump(self, rig):
        rig.launch_app("com.mal")
        text = dumpsys_activity(rig)
        assert "com.mal/PlainActivity" in text
        assert "[front]" in text
        assert "state=resumed" in text

    def test_services_dump(self, rig):
        uid = rig.uid_of("com.mal")
        rig.am.bind_service(uid, explicit("com.vic", "PlainService"))
        text = dumpsys_services(rig)
        assert "com.vic/PlainService" in text
        assert "bindings=1" in text

    def test_power_dump(self, rig):
        uid = rig.uid_of("com.mal")
        rig.launch_app("com.mal")
        rig.power_manager.acquire(uid, "PARTIAL_WAKE_LOCK", "job")
        text = dumpsys_power(rig)
        assert "PARTIAL_WAKE_LOCK 'job'" in text
        assert "mScreenOn=True" in text

    def test_battery_dump(self, rig):
        rig.hardware.cpu.set_utilization(rig.uid_of("com.mal"), 0.5)
        text = dumpsys_battery(rig)
        assert "level:" in text
        assert "Mal" in text

    def test_full_dump(self, rig):
        text = dumpsys(rig)
        for section in ("ACTIVITY MANAGER", "ACTIVE SERVICES", "POWER MANAGER", "BATTERY"):
            assert section in text


class TestReorderTasksPermission:
    def test_app_without_permission_denied(self):
        system = booted_system(
            make_app("com.noperm", permissions=()), make_app("com.target")
        )
        system.launch_app("com.target")
        system.press_home()
        uid = system.uid_of("com.noperm")
        with pytest.raises(SecurityException):
            system.am.move_task_to_front(uid, "com.target")

    def test_app_with_permission_allowed(self):
        system = booted_system(make_app("com.perm"), make_app("com.target"))
        system.launch_app("com.target")
        system.press_home()
        uid = system.uid_of("com.perm")
        system.am.move_task_to_front(uid, "com.target")
        assert system.foreground_package() == "com.target"

    def test_own_task_needs_no_permission(self):
        system = booted_system(make_app("com.noperm", permissions=()))
        system.launch_app("com.noperm")
        system.press_home()
        uid = system.uid_of("com.noperm")
        system.am.move_task_to_front(uid, "com.noperm")
        assert system.foreground_package() == "com.noperm"

    def test_user_always_allowed(self):
        system = booted_system(make_app("com.target"))
        system.launch_app("com.target")
        system.press_home()
        system.am.move_task_to_front(
            system.package_manager.system_uid, "com.target", user_initiated=True
        )
        assert system.foreground_package() == "com.target"

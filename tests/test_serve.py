"""The energy query service: ingestion, serving, caching, backpressure."""

import json

import pytest

from repro.accounting import BatteryStats, PowerTutor
from repro.offline import TraceFormatError, capture_trace
from repro.reports import BACKENDS, ReportRequest
from repro.serve import (
    ALL_SESSIONS,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    ProfilingService,
    ProtocolError,
    QueryFailedError,
    QueryRequest,
    QueryResponse,
    ServiceClient,
    ServiceConfig,
    parse_queries_jsonl,
)
from repro.workloads import run_attack3, run_scene1


@pytest.fixture(scope="module")
def scene_run():
    return run_scene1()


@pytest.fixture(scope="module")
def scene_trace(scene_run):
    return capture_trace(scene_run.system, scene_run.eandroid)


@pytest.fixture()
def service(scene_trace):
    svc = ProfilingService(ServiceConfig(telemetry=False))
    svc.ingest_trace("scene", scene_trace, "test")
    return svc


class TestIngestion:
    def test_single_json_file(self, tmp_path, scene_trace):
        path = tmp_path / "device.json"
        path.write_text(scene_trace.to_json(), encoding="utf-8")
        svc = ProfilingService(ServiceConfig(telemetry=False))
        assert svc.ingest(path) == ["device"]

    def test_jsonl_stream(self, tmp_path, scene_trace):
        line = scene_trace.to_json()
        path = tmp_path / "fleet.jsonl"
        path.write_text(f"{line}\n{line}\n", encoding="utf-8")
        svc = ProfilingService(ServiceConfig(telemetry=False))
        assert svc.ingest(path) == ["fleet#1", "fleet#2"]

    def test_directory_and_corpus_entries(self):
        svc = ProfilingService(ServiceConfig(telemetry=False))
        names = svc.ingest("corpus")
        assert len(names) >= 1
        # corpus entries replay their recorded scenario into a trace
        for name in names:
            assert svc.sessions[name].trace.channels

    def test_malformed_document_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        svc = ProfilingService(ServiceConfig(telemetry=False))
        with pytest.raises(TraceFormatError):
            svc.ingest(bad)

    def test_missing_path_raises(self):
        svc = ProfilingService(ServiceConfig(telemetry=False))
        with pytest.raises(FileNotFoundError):
            svc.ingest("no-such-path")


class TestServing:
    def test_served_equals_live(self, service, scene_run):
        system, ea = scene_run.system, scene_run.eandroid
        client = ServiceClient(service)
        for backend, live in (
            ("batterystats", BatteryStats(system).report()),
            ("powertutor", PowerTutor(system).report()),
            ("eandroid", ea.report()),
        ):
            payload = client.query("scene", backend)
            assert payload["total_j"] == pytest.approx(
                live.total_energy_j(), rel=1e-6
            )
            served = {
                row["uid"]: row["energy_j"]
                for row in payload["entries"]
                if row["uid"] is not None
            }
            for entry in live.entries:
                if entry.uid is not None:
                    assert served[entry.uid] == pytest.approx(
                        entry.energy_j, rel=1e-6, abs=1e-9
                    )

    def test_all_backends_answer(self, service):
        client = ServiceClient(service)
        for backend in BACKENDS:
            payload = client.query("scene", backend)
            assert payload["schema"] == "repro.report/1"
            assert payload["backend"] == backend

    def test_cache_hits_on_repeat(self, service):
        (query,) = ServiceClient(service).build("scene", "eandroid")
        first = service.submit(query)
        second = service.submit(query)
        assert not first.cached and second.cached
        assert first.report == second.report
        assert service.cache.hits == 1 and service.cache.misses == 1

    def test_unknown_session_is_error(self, service):
        (query,) = ServiceClient(service).build("ghost", "energy")
        response = service.submit(query)
        assert response.status == STATUS_ERROR
        assert "ghost" in response.error
        with pytest.raises(QueryFailedError):
            ServiceClient(service).query("ghost", "energy")

    def test_wildcard_fans_out(self, scene_trace):
        svc = ProfilingService(ServiceConfig(telemetry=False))
        svc.ingest_trace("a", scene_trace, "test")
        svc.ingest_trace("b", scene_trace, "test")
        payloads = ServiceClient(svc).query(ALL_SESSIONS, "energy")
        assert set(payloads) == {"a", "b"}

    def test_shed_on_small_queue(self, scene_trace):
        svc = ProfilingService(ServiceConfig(max_queue=2, telemetry=False))
        svc.ingest_trace("scene", scene_trace, "test")
        client = ServiceClient(svc)
        queries = [
            client.build("scene", "energy", start=float(i))[0] for i in range(5)
        ]
        responses = svc.serve_batch(queries, burst=5)
        statuses = [r.status for r in responses]
        assert statuses.count(STATUS_OK) == 2
        assert statuses.count(STATUS_SHED) == 3
        assert svc.stats.shed == 3

    def test_client_resubmits_shed(self, scene_trace):
        svc = ProfilingService(ServiceConfig(max_queue=2, telemetry=False))
        svc.ingest_trace("scene", scene_trace, "test")
        client = ServiceClient(svc)
        queries = [
            client.build("scene", "energy", start=float(i))[0] for i in range(5)
        ]
        responses = client.submit_all(queries, burst=5)
        assert all(r.status == STATUS_OK for r in responses)

    def test_shed_exhaustion_names_query_and_session(self, scene_trace):
        """A still-shed response must say which query, where, how hard
        the client tried — not a bare 'queue full'."""
        svc = ProfilingService(ServiceConfig(max_queue=2, telemetry=False))
        svc.ingest_trace("scene", scene_trace, "test")
        client = ServiceClient(svc, max_resubmits=0)
        queries = [
            client.build("scene", "energy", start=float(i))[0] for i in range(5)
        ]
        responses = client.submit_all(queries, burst=5)
        shed = [r for r in responses if r.status == STATUS_SHED]
        assert len(shed) == 3
        for response in shed:
            assert f"query {response.id} " in response.error
            assert "session 'scene'" in response.error
            assert "0 resubmit(s)" in response.error

    def test_manifest_shape(self, service):
        ServiceClient(service).query("scene", "energy")
        manifest = service.manifest()
        assert manifest["kind"] == "repro-serve-manifest"
        assert manifest["stats"]["answered"] == 1
        assert "scene" in manifest["sessions"]
        assert manifest["cache"]["capacity"] == service.config.cache_entries


class TestSharding:
    def test_two_workers_match_serial(self, scene_trace):
        attack = run_attack3()
        attack_trace = capture_trace(attack.system, attack.eandroid)

        def build(workers):
            svc = ProfilingService(
                ServiceConfig(workers=workers, telemetry=False)
            )
            svc.ingest_trace("scene", scene_trace, "test")
            svc.ingest_trace("attack", attack_trace, "test")
            return svc

        serial, sharded = build(1), build(2)
        queries = [
            QueryRequest(
                id=i,
                session=session,
                report=ReportRequest(backend=backend),
            )
            for i, (session, backend) in enumerate(
                (s, b)
                for s in ("scene", "attack")
                for b in ("batterystats", "eandroid", "collateral")
            )
        ]
        serial_responses = serial.serve_batch(list(queries))
        sharded_responses = sharded.serve_batch(list(queries))
        assert all(r.status == STATUS_OK for r in sharded_responses)
        for a, b in zip(serial_responses, sharded_responses):
            assert a.id == b.id and a.report == b.report

    def test_shard_assignment_is_stable(self, service):
        assert service.shard_of("scene") == service.shard_of("scene")


class TestProtocol:
    def test_query_round_trip(self):
        query = QueryRequest(
            id=7,
            session="scene",
            report=ReportRequest(backend="eandroid", start=1.0, end=9.0),
        )
        assert QueryRequest.from_dict(query.to_dict()) == query

    def test_response_round_trip(self):
        response = QueryResponse(
            id=7, session="scene", status=STATUS_OK, report={"total_j": 1.0}
        )
        restored = QueryResponse.from_dict(response.to_dict())
        assert restored.id == 7 and restored.report == {"total_j": 1.0}

    def test_parse_queries_jsonl(self):
        lines = [
            "# comment",
            "",
            json.dumps({"session": "a", "backend": "energy"}),
            json.dumps({"id": 9, "session": "b", "backend": "eandroid"}),
        ]
        queries = parse_queries_jsonl(lines)
        assert [q.id for q in queries] == [3, 9]

    def test_parse_errors_carry_line_numbers(self):
        with pytest.raises(ProtocolError, match="line 2"):
            parse_queries_jsonl(["# ok", "{broken"])

    def test_bad_backend_is_protocol_error(self):
        with pytest.raises(ProtocolError):
            parse_queries_jsonl([json.dumps({"session": "a", "backend": "nope"})])


class TestStdinDaemon:
    """The stdin/stdout JSONL loop (`repro serve --daemon`)."""

    def _run_daemon(self, service, lines, monkeypatch, capsys):
        import io

        from repro.cli import _serve_daemon

        monkeypatch.setattr("sys.stdin", io.StringIO("".join(lines)))
        _serve_daemon(service, ServiceClient(service))
        return [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]

    def test_oversized_line_degrades_to_typed_error(
        self, service, monkeypatch, capsys
    ):
        # Regression: an over-long stdin line used to be fed straight to
        # the JSON parser; it must hit the shared MAX_LINE_BYTES guard
        # and come back as a typed error, like the TCP front-end.
        from repro.serve import MAX_LINE_BYTES

        huge = json.dumps(
            {
                "id": 5,
                "session": "scene",
                "backend": "energy",
                "pad": "x" * MAX_LINE_BYTES,
            }
        )
        follow_up = json.dumps({"id": 6, "session": "scene", "backend": "energy"})
        out = self._run_daemon(
            service, [huge + "\n", follow_up + "\n"], monkeypatch, capsys
        )
        assert len(out) == 2
        assert out[0]["status"] == "error"
        assert "maximum line size" in out[0]["error"]
        assert str(MAX_LINE_BYTES) in out[0]["error"]
        # the loop survives the oversized line and serves the next one
        assert out[1]["id"] == 6 and out[1]["status"] == STATUS_OK

    def test_garbage_line_is_typed_error_not_crash(
        self, service, monkeypatch, capsys
    ):
        out = self._run_daemon(
            service,
            ['{"id": broken\n', "# comment\n", "\n"],
            monkeypatch,
            capsys,
        )
        assert len(out) == 1
        assert out[0]["status"] == "error" and out[0]["error"]

    def test_valid_queries_still_answer(self, service, monkeypatch, capsys):
        line = json.dumps({"id": 3, "session": "scene", "backend": "eandroid"})
        out = self._run_daemon(service, [line + "\n"], monkeypatch, capsys)
        assert [r["status"] for r in out] == [STATUS_OK]
        assert out[0]["report"]["total_j"] > 0.0

"""The benchmark registry, suite, BENCH.json schema, and perf gate.

The CI gate's contract is two-sided: it must pass on unchanged code
*and* fail when a real slowdown lands.  The second half is exercised
exactly as CI does — ``REPRO_BENCH_SELFTEST=1`` inflates every measured
sample 2x (calibration excluded, so normalization cannot cancel it) and
the gate must trip.
"""

import json

import pytest

from repro.bench import (
    SELFTEST_ENV,
    SuiteConfig,
    UnknownBenchError,
    available_bench_names,
    compare_benchmarks,
    load_bench_json,
    resolve_bench_selection,
    run_suite,
    write_bench_json,
)
from repro.bench.suite import BENCH_SCHEMA, CALIBRATION_NAME
from repro.cli import main

CHEAP = ["calibration", "meter_query_1k"]
# For gate round-trips: a benchmark long enough (~tens of ms) that
# scheduler jitter cannot fake a 1.25x swing between two real runs.
STABLE = ["calibration", "kernel_dispatch"]


def _document(**normals):
    """A synthetic BENCH.json with calibration 1.0 s and given medians."""
    benchmarks = {
        CALIBRATION_NAME: {
            "kind": "calibration",
            "median_s": 1.0,
            "min_s": 1.0,
            "error": None,
        }
    }
    for name, median in normals.items():
        benchmarks[name] = {
            "kind": "micro",
            "median_s": median,
            "min_s": median,
            "error": None,
        }
    return {
        "schema": BENCH_SCHEMA,
        "kind": "repro-bench",
        "calibration_s": 1.0,
        "benchmarks": benchmarks,
    }


class TestRegistry:
    def test_registry_has_the_issue_benchmarks(self):
        names = available_bench_names()
        for required in (
            "calibration",
            "meter_query_1k",
            "meter_query_50k",
            "kernel_dispatch",
            "fig1_end_to_end",
            "fig9_end_to_end",
            "fuzz_oracle_step",
        ):
            assert required in names

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownBenchError, match="no_such_bench"):
            resolve_bench_selection(["no_such_bench"])

    def test_selection_keeps_order_and_dedupes(self):
        specs = resolve_bench_selection(
            ["meter_query_1k", "calibration", "meter_query_1k"]
        )
        assert [s.name for s in specs] == ["meter_query_1k", "calibration"]


class TestSuite:
    def test_suite_runs_and_serialises(self, tmp_path):
        report = run_suite(SuiteConfig(names=CHEAP, repeats=2))
        assert report.passed
        assert report.calibration_s > 0
        path = write_bench_json(report, tmp_path / "BENCH.json")
        document = load_bench_json(path)
        assert document["schema"] == BENCH_SCHEMA
        assert set(document["benchmarks"]) == set(CHEAP)
        record = document["benchmarks"]["meter_query_1k"]
        assert record["repeats"] == 2
        assert record["min_s"] <= record["median_s"] <= record["p95_s"]
        assert record["metrics"]["speedup_vs_naive"] > 5.0

    def test_calibration_always_included(self):
        report = run_suite(SuiteConfig(names=["meter_query_1k"], repeats=2))
        assert {r.name for r in report.results} == {
            CALIBRATION_NAME,
            "meter_query_1k",
        }

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"kind": "other"}))
        with pytest.raises(ValueError, match="not a repro-bench"):
            load_bench_json(path)


class TestGate:
    def test_identical_runs_pass(self):
        gate = compare_benchmarks(_document(a=0.1), _document(a=0.1))
        assert gate.passed
        assert gate.comparisons[0].ratio == pytest.approx(1.0)

    def test_regression_beyond_threshold_fails(self):
        gate = compare_benchmarks(
            _document(a=0.13, b=0.1), _document(a=0.1, b=0.1), max_regress=1.25
        )
        assert not gate.passed
        assert [c.name for c in gate.regressions] == ["a"]
        assert "REGRESSION" in gate.render_text()

    def test_calibration_normalization_absorbs_machine_speed(self):
        # Current machine is uniformly 3x slower — calibration moved too,
        # so nothing regresses.
        slow = _document(a=0.3)
        slow["benchmarks"][CALIBRATION_NAME]["median_s"] = 3.0
        slow["benchmarks"][CALIBRATION_NAME]["min_s"] = 3.0
        slow["calibration_s"] = 3.0
        gate = compare_benchmarks(slow, _document(a=0.1))
        assert gate.passed
        assert gate.comparisons[0].ratio == pytest.approx(1.0)

    def test_new_and_removed_benchmarks_are_skipped_not_failed(self):
        gate = compare_benchmarks(_document(new=0.1), _document(old=0.1))
        assert gate.passed
        assert sorted(gate.skipped) == ["new", "old"]

    def test_selftest_injection_fails_the_gate(self, tmp_path, monkeypatch):
        monkeypatch.delenv(SELFTEST_ENV, raising=False)
        baseline = run_suite(SuiteConfig(names=STABLE, repeats=2))
        monkeypatch.setenv(SELFTEST_ENV, "1")
        inflated = run_suite(SuiteConfig(names=STABLE, repeats=2))
        gate = compare_benchmarks(
            inflated.to_dict(), baseline.to_dict(), max_regress=1.25
        )
        assert not gate.passed, gate.render_text()
        assert [c.name for c in gate.regressions] == ["kernel_dispatch"]


class TestCli:
    def test_list_exits_zero(self, capsys):
        assert main(["bench", "--list"]) == 0
        assert "meter_query_50k" in capsys.readouterr().out

    def test_unknown_name_exits_two(self, capsys):
        assert main(["bench", "no_such_bench"]) == 2
        assert "available:" in capsys.readouterr().err

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        code = main(
            ["bench", *CHEAP, "--repeats", "1",
             "--compare", str(tmp_path / "absent.json")]
        )
        assert code == 2
        assert "cannot load baseline" in capsys.readouterr().err

    def test_gate_round_trip_passes_and_selftest_fails(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.delenv(SELFTEST_ENV, raising=False)
        baseline = tmp_path / "BENCH_baseline.json"
        assert main(
            ["bench", *STABLE, "--repeats", "2",
             "--write-baseline", str(baseline)]
        ) == 0
        assert main(
            ["bench", *STABLE, "--repeats", "2",
             "--compare", str(baseline), "--max-regress", "1.25"]
        ) == 0
        monkeypatch.setenv(SELFTEST_ENV, "1")
        assert main(
            ["bench", *STABLE, "--repeats", "2",
             "--compare", str(baseline), "--max-regress", "1.25"]
        ) == 1
        assert "REGRESSION" in capsys.readouterr().out

"""Tests for offline trace capture + attribution.

The headline invariant: offline reports reconstructed from a serialised
trace equal the live profilers' reports.
"""

import pytest

from repro.accounting import BatteryStats, PowerTutor
from repro.offline import DeviceTrace, OfflineAnalyzer, capture_trace
from repro.workloads import run_attack3, run_attack6, run_scene1


def analyzer_for(run):
    trace = capture_trace(run.system, run.eandroid)
    # Round-trip through JSON so serialisation is part of the invariant.
    return OfflineAnalyzer(DeviceTrace.from_json(trace.to_json()))


def assert_reports_match(live, offline):
    live_by_label = {e.label: e for e in live.entries}
    offline_by_label = {e.label.replace(" (no foreground)", ""): e for e in offline.entries}
    for label, live_entry in live_by_label.items():
        key = label.replace(" (no foreground)", "")
        offline_entry = offline_by_label.get(key)
        assert offline_entry is not None, f"missing {label} offline"
        assert offline_entry.energy_j == pytest.approx(
            live_entry.energy_j, rel=1e-9, abs=1e-9
        ), label


class TestTraceRoundTrip:
    def test_json_round_trip_identity(self):
        run = run_scene1()
        trace = capture_trace(run.system, run.eandroid)
        parsed = DeviceTrace.from_json(trace.to_json(indent=2))
        assert parsed.captured_at == trace.captured_at
        assert parsed.apps == trace.apps
        assert len(parsed.channels) == len(trace.channels)
        assert parsed.foreground == trace.foreground
        assert len(parsed.links) == len(trace.links)

    def test_version_check(self):
        with pytest.raises(ValueError):
            DeviceTrace.from_json('{"format_version": 99}')


class TestOfflineEqualsOnline:
    def test_batterystats_scene1(self):
        run = run_scene1()
        offline = analyzer_for(run).batterystats_report(run.start, run.end)
        live = BatteryStats(run.system).report(run.start, run.end)
        assert_reports_match(live, offline)

    def test_powertutor_scene1(self):
        run = run_scene1()
        offline = analyzer_for(run).powertutor_report(run.start, run.end)
        live = PowerTutor(run.system).report(run.start, run.end)
        assert_reports_match(live, offline)

    def test_eandroid_attack3(self):
        run = run_attack3()
        offline = analyzer_for(run).eandroid_report(run.start, run.end)
        live = run.eandroid_report()
        assert_reports_match(live, offline)

    def test_eandroid_attack6_screen_collateral(self):
        run = run_attack6()
        analyzer = analyzer_for(run)
        malware = int(run.notes["malware_uid"])
        offline_breakdown = analyzer.collateral_breakdown(
            malware, run.start, run.end
        )
        live_breakdown = run.eandroid.accounting.collateral_breakdown(
            malware, run.start, run.end
        )
        assert set(offline_breakdown) == set(live_breakdown)
        for target, joules in live_breakdown.items():
            assert offline_breakdown[target] == pytest.approx(joules, rel=1e-9)


class TestOfflinePrimitives:
    def test_energy_window_query(self):
        run = run_scene1()
        analyzer = analyzer_for(run)
        camera = run.system.uid_of("com.app.camera")
        live = run.system.hardware.meter.energy_j(owner=camera, start=10.0, end=50.0)
        assert analyzer.energy_j(owner=camera, start=10.0, end=50.0) == pytest.approx(
            live
        )

    def test_labels(self):
        run = run_scene1()
        analyzer = analyzer_for(run)
        camera = run.system.uid_of("com.app.camera")
        assert analyzer.label_for(camera) == "Camera"
        assert analyzer.label_for(424242) == "uid:424242"


class TestOfflineOverGeneratedDay:
    def test_offline_matches_live_after_a_full_day(self):
        """The heavyweight invariant: a 6-hour generated day with three
        live malware, dozens of attack links opening and closing — the
        offline reconstruction from the serialised trace still matches
        the live E-Android report entry-for-entry."""
        from repro.workloads import run_day

        day = run_day(seed=11, hours=6.0, with_malware=True)
        trace = capture_trace(day.system, day.eandroid)
        analyzer = OfflineAnalyzer(DeviceTrace.from_json(trace.to_json()))
        live = day.eandroid.report()
        offline = analyzer.eandroid_report()
        live_by_uid = {e.uid: e for e in live.entries if e.uid is not None}
        offline_by_uid = {e.uid: e for e in offline.entries if e.uid is not None}
        assert set(live_by_uid) == set(offline_by_uid)
        for uid, live_entry in live_by_uid.items():
            assert offline_by_uid[uid].energy_j == pytest.approx(
                live_entry.energy_j, rel=1e-6, abs=1e-6
            ), live_entry.label
            assert offline_by_uid[uid].collateral_j.keys() == (
                live_entry.collateral_j.keys()
            )

"""Unit tests for the hardware component power models."""

import pytest

from repro.power import (
    CAMERA,
    CPU,
    GPS,
    RADIO,
    SCREEN,
    SCREEN_OWNER,
    SYSTEM_OWNER,
    HardwarePlatform,
    NEXUS4,
)
from repro.sim import Kernel


@pytest.fixture
def platform():
    return HardwarePlatform(Kernel(), NEXUS4)


class TestCpuModel:
    def test_idle_floor_attributed_to_system(self, platform):
        assert platform.meter.current_power_mw(SYSTEM_OWNER) >= NEXUS4.cpu.idle_mw

    def test_utilization_adds_dynamic_power(self, platform):
        cpu = platform.cpu
        before = platform.meter.current_power_mw()
        cpu.set_utilization(10001, 0.5)
        after = platform.meter.current_power_mw()
        expected = 0.5 * (NEXUS4.cpu.active_mw[-1] - NEXUS4.cpu.idle_mw)
        assert after - before == pytest.approx(expected)

    def test_utilization_bounds(self, platform):
        with pytest.raises(ValueError):
            platform.cpu.set_utilization(1, 1.5)
        with pytest.raises(ValueError):
            platform.cpu.set_utilization(1, -0.1)

    def test_oversubscription_scales_shares(self, platform):
        cpu = platform.cpu
        cpu.set_utilization(1, 0.8)
        cpu.set_utilization(2, 0.8)
        dyn = NEXUS4.cpu.active_mw[-1] - NEXUS4.cpu.idle_mw
        assert platform.meter.current_power_mw(1) == pytest.approx(dyn * 0.5)
        assert platform.meter.current_power_mw(2) == pytest.approx(dyn * 0.5)
        assert cpu.total_utilization() == 1.0

    def test_clear_utilization(self, platform):
        cpu = platform.cpu
        cpu.set_utilization(1, 0.4)
        cpu.set_utilization(1, 0.0)
        assert platform.meter.current_power_mw(1) == 0.0
        assert cpu.utilization_of(1) == 0.0

    def test_frequency_steps(self, platform):
        cpu = platform.cpu
        cpu.set_utilization(1, 1.0)
        cpu.set_frequency_index(0)
        low = platform.meter.current_power_mw(1)
        cpu.set_frequency_index(len(NEXUS4.cpu.freq_levels_mhz) - 1)
        high = platform.meter.current_power_mw(1)
        assert high > low

    def test_invalid_frequency_index(self, platform):
        with pytest.raises(ValueError):
            platform.cpu.set_frequency_index(99)

    def test_suspend_halts_app_draw(self, platform):
        cpu = platform.cpu
        cpu.set_utilization(1, 1.0)
        cpu.suspend()
        assert cpu.suspended
        assert platform.meter.current_power_mw(1) == 0.0
        assert platform.meter.current_power_mw(SYSTEM_OWNER) < NEXUS4.cpu.idle_mw + NEXUS4.system_base_mw

    def test_resume_restores_demand(self, platform):
        cpu = platform.cpu
        cpu.set_utilization(1, 1.0)
        cpu.suspend()
        cpu.resume()
        assert platform.meter.current_power_mw(1) > 0.0

    def test_suspend_idempotent(self, platform):
        platform.cpu.suspend()
        platform.cpu.suspend()
        platform.cpu.resume()
        platform.cpu.resume()
        assert not platform.cpu.suspended


class TestScreenModel:
    def test_starts_off(self, platform):
        assert not platform.screen.is_on
        assert platform.screen.current_power_mw() == 0.0

    def test_turn_on_draws_power(self, platform):
        platform.screen.turn_on()
        expected = NEXUS4.screen.power_mw(platform.screen.brightness)
        assert platform.meter.current_power_mw(SCREEN_OWNER) == pytest.approx(expected)

    def test_brightness_scales_power(self, platform):
        screen = platform.screen
        screen.turn_on()
        screen.set_brightness(0)
        low = screen.current_power_mw()
        screen.set_brightness(255)
        high = screen.current_power_mw()
        assert high - low == pytest.approx(255 * NEXUS4.screen.per_level_mw)

    def test_brightness_clamped(self, platform):
        platform.screen.set_brightness(9999)
        assert platform.screen.brightness == 255
        platform.screen.set_brightness(-5)
        assert platform.screen.brightness == 0

    def test_dim_state_power(self, platform):
        screen = platform.screen
        screen.turn_on()
        screen.set_brightness(200)
        screen.dim()
        assert screen.is_dimmed
        assert screen.current_power_mw() == pytest.approx(
            NEXUS4.screen.power_mw(NEXUS4.screen.dim_brightness)
        )
        screen.undim()
        assert not screen.is_dimmed

    def test_turn_off_resets_dim(self, platform):
        screen = platform.screen
        screen.turn_on()
        screen.dim()
        screen.turn_off()
        assert not screen.is_dimmed
        assert platform.meter.current_power_mw(SCREEN_OWNER) == 0.0

    def test_listeners_fire_on_change(self, platform):
        events = []
        platform.screen.add_listener(lambda: events.append(platform.screen.is_on))
        platform.screen.turn_on()
        platform.screen.turn_on()  # no-op, no event
        platform.screen.turn_off()
        assert events == [True, False]

    def test_energy_integrates_brightness_change(self, platform):
        kernel = platform.kernel
        screen = platform.screen
        screen.turn_on()
        screen.set_brightness(0)
        kernel.run_for(10.0)
        screen.set_brightness(255)
        kernel.run_for(10.0)
        low_j = NEXUS4.screen.power_mw(0) * 10 / 1000
        high_j = NEXUS4.screen.power_mw(255) * 10 / 1000
        assert platform.meter.screen_energy_j() == pytest.approx(low_j + high_j)


class TestRadioModel:
    def test_levels_validated(self, platform):
        with pytest.raises(ValueError):
            platform.radio.set_activity(1, 9)

    def test_high_activity_power(self, platform):
        platform.radio.set_activity(1, platform.radio.HIGH)
        expected = NEXUS4.radio.high_mw - NEXUS4.radio.idle_mw
        assert platform.meter.current_power_mw(1) == pytest.approx(expected)

    def test_tail_after_activity(self, platform):
        radio = platform.radio
        radio.set_activity(1, radio.HIGH)
        platform.kernel.run_for(5.0)
        radio.set_activity(1, radio.IDLE)
        expected_tail = NEXUS4.radio.tail_mw - NEXUS4.radio.idle_mw
        assert platform.meter.current_power_mw(1) == pytest.approx(expected_tail)
        platform.kernel.run_for(NEXUS4.radio.tail_seconds + 0.1)
        assert platform.meter.current_power_mw(1) == 0.0

    def test_new_activity_cancels_tail(self, platform):
        radio = platform.radio
        radio.set_activity(1, radio.LOW)
        radio.set_activity(1, radio.IDLE)
        radio.set_activity(2, radio.HIGH)
        platform.kernel.run_for(NEXUS4.radio.tail_seconds + 1)
        # uid 2 still active at HIGH; tail gone.
        assert platform.meter.current_power_mw(2) > 0


class TestGpsModel:
    def test_on_off(self, platform):
        gps = platform.gps
        gps.start(1)
        assert gps.is_on()
        assert platform.meter.current_power_mw(1) == pytest.approx(NEXUS4.gps.on_mw)
        gps.stop(1)
        assert not gps.is_on()
        assert platform.meter.current_power_mw(1) == 0.0

    def test_shared_holders_split_power(self, platform):
        gps = platform.gps
        gps.start(1)
        gps.start(2)
        assert platform.meter.current_power_mw(1) == pytest.approx(NEXUS4.gps.on_mw / 2)

    def test_refcounted_per_uid(self, platform):
        gps = platform.gps
        gps.start(1)
        gps.start(1)
        gps.stop(1)
        assert gps.is_on()
        gps.stop(1)
        assert not gps.is_on()


class TestCameraModel:
    def test_exclusive_session(self, platform):
        platform.camera.open(1)
        with pytest.raises(RuntimeError):
            platform.camera.open(2)

    def test_preview_and_record_power(self, platform):
        camera = platform.camera
        camera.open(1)
        assert platform.meter.current_power_mw(1) == pytest.approx(NEXUS4.camera.preview_mw)
        camera.start_recording()
        assert platform.meter.current_power_mw(1) == pytest.approx(NEXUS4.camera.record_mw)
        camera.stop_recording()
        assert platform.meter.current_power_mw(1) == pytest.approx(NEXUS4.camera.preview_mw)
        camera.close()
        assert platform.meter.current_power_mw(1) == 0.0
        assert camera.session_uid is None

    def test_record_without_session_rejected(self, platform):
        with pytest.raises(RuntimeError):
            platform.camera.start_recording()


class TestAudioModel:
    def test_playback(self, platform):
        audio = platform.audio
        audio.start(1)
        assert audio.is_playing(1)
        assert platform.meter.current_power_mw(1) == pytest.approx(NEXUS4.audio.playback_mw)
        audio.stop(1)
        assert not audio.is_playing(1)
        assert platform.meter.current_power_mw(1) == 0.0

    def test_refcounted(self, platform):
        audio = platform.audio
        audio.start(1)
        audio.start(1)
        audio.stop(1)
        assert audio.is_playing(1)
        audio.stop(1)
        assert not audio.is_playing(1)


class TestPlatformSuspend:
    def test_suspend_drops_to_floor(self, platform):
        platform.screen.turn_on()
        platform.cpu.set_utilization(1, 0.5)
        platform.suspend()
        assert platform.suspended
        total = platform.meter.current_power_mw()
        assert total == pytest.approx(NEXUS4.suspend_mw + NEXUS4.cpu.suspend_mw)

    def test_resume_restores_base(self, platform):
        platform.suspend()
        platform.resume()
        assert not platform.suspended
        assert platform.meter.current_power_mw() == pytest.approx(
            NEXUS4.system_base_mw + NEXUS4.cpu.idle_mw
        )


class TestRoutineAccounting:
    """eprof-style per-routine CPU decomposition (§II)."""

    def test_routines_get_separate_channels(self, platform):
        cpu = platform.cpu
        cpu.set_utilization(1, 0.2, routine="render")
        cpu.set_utilization(1, 0.3, routine="network")
        platform.kernel.run_for(10.0)
        breakdown = platform.meter.energy_by_component(1)
        assert set(breakdown) == {"cpu:render", "cpu:network"}
        assert breakdown["cpu:network"] > breakdown["cpu:render"]

    def test_default_routine_keeps_plain_channel(self, platform):
        platform.cpu.set_utilization(1, 0.5)
        platform.kernel.run_for(5.0)
        assert set(platform.meter.energy_by_component(1)) == {"cpu"}

    def test_total_utilization_sums_routines(self, platform):
        cpu = platform.cpu
        cpu.set_utilization(1, 0.2, routine="a")
        cpu.set_utilization(1, 0.3, routine="b")
        assert cpu.utilization_of(1) == pytest.approx(0.5)
        assert cpu.routine_utilization(1, "a") == pytest.approx(0.2)
        assert cpu.routine_utilization(1, "zzz") == 0.0

    def test_clearing_one_routine_leaves_others(self, platform):
        cpu = platform.cpu
        cpu.set_utilization(1, 0.2, routine="a")
        cpu.set_utilization(1, 0.3, routine="b")
        cpu.set_utilization(1, 0.0, routine="a")
        assert cpu.utilization_of(1) == pytest.approx(0.3)
        assert platform.meter.current_power_mw(1) > 0

    def test_app_total_unchanged_by_labelling(self, platform):
        """Splitting load into routines never changes the app's total."""
        kernel = platform.kernel
        cpu = platform.cpu
        cpu.set_utilization(1, 0.6)
        kernel.run_for(10.0)
        plain = platform.meter.energy_j(owner=1)
        cpu.set_utilization(1, 0.0)
        cpu.set_utilization(1, 0.3, routine="x")
        cpu.set_utilization(1, 0.3, routine="y")
        start = kernel.now
        kernel.run_for(10.0)
        split = platform.meter.energy_j(owner=1, start=start)
        assert split == pytest.approx(plain)

    def test_suspend_zeroes_routine_channels(self, platform):
        cpu = platform.cpu
        cpu.set_utilization(1, 0.4, routine="bg")
        cpu.suspend()
        assert platform.meter.current_power_mw(1) == 0.0

"""The serving layer on the artifact store: spill, memoized replay,
session persistence, and JSON-vs-binary report identity."""

import json
from pathlib import Path

import pytest

import repro.serve.ingest as ingest_module
from repro.cli import main
from repro.offline import capture_trace
from repro.serve import (
    REPLAY_REF_NAMESPACE,
    SESSION_REF_NAMESPACE,
    ProfilingService,
    ServiceClient,
    ServiceConfig,
    scenario_digest,
)
from repro.store import ArtifactStore, decode_trace, encode_trace
from repro.workloads import run_scene1

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"


@pytest.fixture(scope="module")
def scene_trace():
    run = run_scene1()
    return capture_trace(run.system, run.eandroid)


def _service(tmp_path, **overrides) -> ProfilingService:
    config = dict(
        telemetry=False, store_dir=str(tmp_path / "store"), **overrides
    )
    return ProfilingService(ServiceConfig(**config))


def _corpus_entry() -> Path:
    return sorted(CORPUS_DIR.glob("*.json"))[0]


# ----------------------------------------------------------------------
# spill-to-disk
# ----------------------------------------------------------------------
class TestSpill:
    def test_spilled_session_faults_in_on_query(self, tmp_path, scene_trace):
        svc = _service(tmp_path, spill=True)
        record = svc.ingest_trace("scene", scene_trace, "test")
        assert record.spilled
        assert svc.manifest()["sessions"]["scene"]["spilled"] is True
        # Summary fields survive the spill without a decode.
        assert record.channel_count == len(scene_trace.channels)
        client = ServiceClient(svc)
        report = client.query("scene", "eandroid")
        assert report["backend"] == "eandroid"
        assert not record.spilled  # faulted back in by the query

    def test_spill_pins_a_session_ref(self, tmp_path, scene_trace):
        svc = _service(tmp_path, spill=True)
        svc.ingest_trace("scene", scene_trace, "test")
        store = ArtifactStore(tmp_path / "store")
        digest = store.get_ref(SESSION_REF_NAMESPACE, "scene")
        assert digest is not None
        assert store.info(digest).codec == "trace-bin"
        assert store.gc(dry_run=True).removed == 0  # ref keeps it live

    def test_manifest_reports_store_stats(self, tmp_path, scene_trace):
        svc = _service(tmp_path, spill=True)
        svc.ingest_trace("scene", scene_trace, "test")
        stats = svc.manifest()["store"]
        assert stats["objects"] >= 1
        assert stats["refs"] >= 1

    def test_no_store_manifest_is_none(self, scene_trace):
        svc = ProfilingService(ServiceConfig(telemetry=False))
        svc.ingest_trace("scene", scene_trace, "test")
        assert svc.manifest()["store"] is None


# ----------------------------------------------------------------------
# digest-memoized corpus replay
# ----------------------------------------------------------------------
class TestMemoizedReplay:
    def test_second_ingest_skips_simulation(self, tmp_path, monkeypatch):
        calls = []
        real = ingest_module._replay_corpus_entry

        def counting(data):
            calls.append(1)
            return real(data)

        monkeypatch.setattr(ingest_module, "_replay_corpus_entry", counting)
        entry = _corpus_entry()
        svc = _service(tmp_path)
        first = svc.ingest(entry)
        assert len(calls) == 1
        svc2 = _service(tmp_path)
        second = svc2.ingest(entry)
        assert len(calls) == 1  # replayed from the store, not re-simulated
        assert first == second

    def test_memoized_trace_matches_fresh_replay(self, tmp_path):
        entry = _corpus_entry()
        document = json.loads(entry.read_text(encoding="utf-8"))
        store = ArtifactStore(tmp_path / "store")
        fresh = ingest_module.trace_from_document(document, store=store)
        memo = ingest_module.trace_from_document(document, store=store)
        assert json.loads(memo.to_json()) == json.loads(fresh.to_json())
        digest = store.get_ref(REPLAY_REF_NAMESPACE, scenario_digest(document))
        assert digest is not None
        assert store.info(digest).meta["scenario"] == scenario_digest(document)

    def test_without_store_replay_still_works(self):
        document = json.loads(_corpus_entry().read_text(encoding="utf-8"))
        trace = ingest_module.trace_from_document(document)
        assert trace.channels


# ----------------------------------------------------------------------
# same-stem collision (regression: later file used to replace earlier)
# ----------------------------------------------------------------------
class TestStemCollision:
    def test_same_stem_different_content_gets_digest_suffix(
        self, tmp_path, scene_trace
    ):
        a_dir, b_dir = tmp_path / "a", tmp_path / "b"
        a_dir.mkdir()
        b_dir.mkdir()
        (a_dir / "device.json").write_text(
            scene_trace.to_json(), encoding="utf-8"
        )
        other = json.loads(scene_trace.to_json())
        other["captured_at"] = other["captured_at"] + 1.0
        (b_dir / "device.json").write_text(json.dumps(other), encoding="utf-8")

        svc = ProfilingService(ServiceConfig(telemetry=False))
        first = svc.ingest(a_dir / "device.json")
        second = svc.ingest(b_dir / "device.json")
        assert first == ["device"]
        assert len(second) == 1 and second[0].startswith("device@")
        assert second[0] != "device"
        # Both sessions answer; neither replaced the other.
        assert set(svc.session_names()) == {"device", second[0]}

    def test_reingesting_the_same_file_is_idempotent(
        self, tmp_path, scene_trace
    ):
        path = tmp_path / "device.json"
        path.write_text(scene_trace.to_json(), encoding="utf-8")
        svc = ProfilingService(ServiceConfig(telemetry=False))
        assert svc.ingest(path) == ["device"]
        assert svc.ingest(path) == ["device"]
        assert svc.session_names() == ["device"]


# ----------------------------------------------------------------------
# session persistence across processes
# ----------------------------------------------------------------------
class TestRestoreSessions:
    def test_restore_reregisters_spilled_sessions(self, tmp_path, scene_trace):
        svc = _service(tmp_path, spill=True)
        svc.ingest_trace("scene", scene_trace, "test")

        fresh = _service(tmp_path)
        assert fresh.session_names() == []
        assert fresh.restore_sessions() == ["scene"]
        record = fresh.sessions["scene"]
        assert record.spilled  # summary only, no decode yet
        assert record.channel_count == len(scene_trace.channels)
        report = ServiceClient(fresh).query("scene", "batterystats")
        assert report["backend"] == "batterystats"

    def test_restore_skips_existing_and_missing(self, tmp_path, scene_trace):
        svc = _service(tmp_path, spill=True)
        svc.ingest_trace("scene", scene_trace, "test")
        store = ArtifactStore(tmp_path / "store")
        store.set_ref(SESSION_REF_NAMESPACE, "ghost", "0" * 64)

        fresh = _service(tmp_path)
        fresh.ingest_trace("scene", scene_trace, "test")  # name taken
        assert fresh.restore_sessions() == []

    def test_restore_without_store_is_a_noop(self, scene_trace):
        svc = ProfilingService(ServiceConfig(telemetry=False))
        assert svc.restore_sessions() == []

    def test_restore_failure_names_session_and_source(
        self, tmp_path, scene_trace
    ):
        """A corrupt persisted session must fail naming the session,
        its ref, and the artifact — not with a bare store error."""
        from repro.store import StoreError

        svc = _service(tmp_path, spill=True)
        svc.ingest_trace("scene", scene_trace, "test")
        store = ArtifactStore(tmp_path / "store")
        digest = store.get_ref(SESSION_REF_NAMESPACE, "scene")
        # Corrupt the manifest but leave the blob: has() still answers
        # True, so restore proceeds until the manifest read blows up.
        store.meta_path(digest).write_text("{not json", encoding="utf-8")

        fresh = _service(tmp_path)
        with pytest.raises(StoreError) as excinfo:
            fresh.restore_sessions()
        message = str(excinfo.value)
        assert "failed to restore session 'scene'" in message
        assert f"ref {SESSION_REF_NAMESPACE}/scene" in message
        assert digest[:16] in message


# ----------------------------------------------------------------------
# JSON-ingested vs binary-ingested sessions serve identical bytes
# ----------------------------------------------------------------------
class TestReportByteIdentity:
    def test_served_payloads_identical_across_formats(
        self, tmp_path, scene_trace
    ):
        json_path = tmp_path / "scene.json"
        json_path.write_text(scene_trace.to_json(), encoding="utf-8")
        bin_path = tmp_path / "scene_bin.rtb"
        bin_path.write_bytes(encode_trace(scene_trace))

        svc = ProfilingService(ServiceConfig(telemetry=False))
        svc.ingest(json_path)
        svc.ingest(bin_path)
        client = ServiceClient(svc)
        for backend in ("energy", "eandroid", "batterystats", "powertutor"):
            via_json = client.query("scene", backend, start=0.0, end=30.0)
            via_bin = client.query("scene_bin", backend, start=0.0, end=30.0)
            assert json.dumps(via_json, sort_keys=True) == json.dumps(
                via_bin, sort_keys=True
            )

    def test_decode_encode_round_trip_through_session(self, scene_trace):
        svc = ProfilingService(ServiceConfig(telemetry=False))
        svc.ingest_trace("a", scene_trace, "memory")
        svc.ingest_trace("b", decode_trace(encode_trace(scene_trace)), "memory")
        client = ServiceClient(svc)
        assert json.dumps(client.query("a", "collateral"), sort_keys=True) == (
            json.dumps(client.query("b", "collateral"), sort_keys=True)
        )


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestServeStoreCli:
    def _queries_file(self, tmp_path):
        path = tmp_path / "queries.jsonl"
        path.write_text(
            json.dumps({"session": "*", "backend": "eandroid"}) + "\n",
            encoding="utf-8",
        )
        return path

    def test_serve_with_store_memoizes_and_persists(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        args = [
            "serve",
            "--batch",
            str(CORPUS_DIR),
            "--queries",
            str(self._queries_file(tmp_path)),
            "--store",
            str(store_dir),
            "--spill",
        ]
        assert main(args) == 0
        capsys.readouterr()
        store = ArtifactStore(store_dir)
        assert store.refs(REPLAY_REF_NAMESPACE)
        assert store.refs(SESSION_REF_NAMESPACE)
        assert store.verify() == []

        # A later process restores the persisted sessions from the store.
        restore_args = [
            "serve",
            "--queries",
            str(self._queries_file(tmp_path)),
            "--store",
            str(store_dir),
            "--restore",
        ]
        assert main(restore_args) == 0
        out = capsys.readouterr().out
        entries = len(list(CORPUS_DIR.glob("*.json")))
        assert f"restored {entries} session(s)" in out
        assert f"{entries} answered" in out

    def test_restore_without_store_errors(self, tmp_path, capsys):
        assert (
            main(
                [
                    "serve",
                    "--queries",
                    str(self._queries_file(tmp_path)),
                    "--restore",
                ]
            )
            == 2
        )
        assert "--restore" in capsys.readouterr().err

"""Suite-wide fixtures."""

import pytest

from repro.exec.cache import CACHE_ENV_VAR


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path_factory, monkeypatch):
    """Point the experiment result cache at a per-session temp directory.

    Keeps tests hermetic: nothing under ``~/.cache/repro`` is read or
    written, and cached results can never leak between unrelated runs of
    the suite and the user's own evaluations.
    """
    cache_root = tmp_path_factory.getbasetemp() / "repro-result-cache"
    monkeypatch.setenv(CACHE_ENV_VAR, str(cache_root))

"""Smoke test for the all-in-one experiment runner."""

from repro.experiments import run_all


def test_run_all_claims_hold():
    outcomes = run_all(micro_iterations=10, antutu_rounds=6)
    assert len(outcomes) == 10
    names = [o.name for o in outcomes]
    assert names[0] == "fig1" and names[-1] == "efficiency"
    failed = [o.name for o in outcomes if not o.claim_holds]
    # AnTuTu at tiny sizes can be noisy; everything else must hold.
    assert [n for n in failed if n != "fig11"] == []
    for outcome in outcomes:
        assert outcome.text  # every experiment renders something


def test_save_outcomes(tmp_path):
    from repro.experiments import run_fig1
    from repro.experiments.runner import ExperimentOutcome, save_outcomes

    fig1 = run_fig1()
    outcomes = [ExperimentOutcome("fig1", fig1.camera_blamed, fig1.render_text())]
    written = save_outcomes(outcomes, str(tmp_path))
    assert len(written) == 2  # fig1.txt + summary.txt
    assert (tmp_path / "fig1.txt").read_text().startswith("[REPRODUCED]")
    assert "fig1" in (tmp_path / "summary.txt").read_text()

"""Smoke test for the all-in-one experiment runner."""

from repro.experiments import run_all


def test_run_all_claims_hold():
    outcomes = run_all(micro_iterations=10, antutu_rounds=6)
    assert len(outcomes) == 10
    names = [o.name for o in outcomes]
    assert names[0] == "fig1" and names[-1] == "efficiency"
    failed = [o.name for o in outcomes if not o.claim_holds]
    # AnTuTu at tiny sizes can be noisy; everything else must hold.
    assert [n for n in failed if n != "fig11"] == []
    for outcome in outcomes:
        assert outcome.text  # every experiment renders something


def test_save_outcomes(tmp_path):
    from repro.experiments import run_fig1
    from repro.experiments.runner import ExperimentOutcome, save_outcomes

    fig1 = run_fig1()
    outcomes = [ExperimentOutcome("fig1", fig1.camera_blamed, fig1.render_text())]
    written = save_outcomes(outcomes, str(tmp_path))
    assert len(written) == 2  # fig1.txt + summary.txt
    assert (tmp_path / "fig1.txt").read_text().startswith("[REPRODUCED]")
    assert "fig1" in (tmp_path / "summary.txt").read_text()


def test_save_outcomes_creates_missing_directories(tmp_path):
    from repro.experiments.runner import ExperimentOutcome, save_outcomes

    target = tmp_path / "deep" / "nested" / "dir"
    outcomes = [ExperimentOutcome("fig1", True, "body")]
    written = save_outcomes(outcomes, target)  # Path, not str — both accepted
    assert target.is_dir()
    assert (target / "fig1.txt").exists()
    assert all(str(target) in path for path in written)


def test_run_evaluation_selection_and_engine(tmp_path):
    from repro.exec import EngineConfig, ExperimentEngine
    from repro.experiments.runner import run_evaluation

    engine = ExperimentEngine(EngineConfig(cache_dir=tmp_path / "cache"))
    run = run_evaluation(only=["fig6", "fig1"], engine=engine)
    assert [r.name for r in run.results] == ["fig6", "fig1"]
    # a second evaluation through a fresh engine replays from cache
    engine2 = ExperimentEngine(EngineConfig(cache_dir=tmp_path / "cache"))
    warm = run_evaluation(only=["fig6", "fig1"], engine=engine2)
    assert warm.cache_stats.hits == 2
    assert [a.outcome.text for a in run.results] == [
        b.outcome.text for b in warm.results
    ]


def test_default_jobs_paper_order_and_overrides():
    from repro.experiments.runner import default_jobs

    jobs = default_jobs(micro_iterations=7, antutu_rounds=3)
    assert [name for name, _ in jobs][:3] == ["fig1", "fig2", "fig3"]
    params = dict(jobs)
    assert params["fig10"] == {"iterations": 7}
    assert params["fig11"] == {"rounds": 3}
    assert params["efficiency"] == {}


def test_runner_main_writes_manifest(tmp_path, capsys):
    from repro.experiments.runner import main

    out = tmp_path / "artifacts"
    code = main(
        [
            str(out),
            "--only",
            "fig1",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
    )
    assert code == 0
    assert (out / "fig1.txt").exists()
    assert (out / "manifest.json").exists()
    text = capsys.readouterr().out
    assert "[REPRODUCED] fig1" in text
    assert "1/1 experiment claims hold" in text

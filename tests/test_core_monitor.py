"""Tests for the E-Android monitor — the Fig. 5 attack-lifecycle FSMs."""

import pytest

from repro.android import (
    BRIGHTNESS_MODE_AUTOMATIC,
    BRIGHTNESS_MODE_MANUAL,
    SCREEN_BRIGHT_WAKE_LOCK,
    PARTIAL_WAKE_LOCK,
    SCREEN_BRIGHTNESS,
    SCREEN_BRIGHTNESS_MODE,
    explicit,
)
from repro.core import AttackKind, CollateralEventType, SCREEN_TARGET, attach_eandroid

from helpers import booted_system, make_app


@pytest.fixture
def rig():
    system = booted_system(
        make_app("com.malware"), make_app("com.victim"), make_app("com.third")
    )
    return system, attach_eandroid(system)


def live_kinds(ea):
    return [(l.kind, l.driving_uid, l.target) for l in ea.accounting.live_attacks()]


class TestActivityTracker:
    """Fig. 5a."""

    def test_cross_app_start_opens_link(self, rig):
        system, ea = rig
        malware = system.uid_of("com.malware")
        victim = system.uid_of("com.victim")
        system.am.start_activity(malware, explicit("com.victim", "PlainActivity"))
        assert (AttackKind.ACTIVITY, malware, victim) in live_kinds(ea)

    def test_same_app_start_ignored(self, rig):
        system, ea = rig
        system.launch_app("com.malware")
        malware = system.uid_of("com.malware")
        system.am.start_activity(malware, explicit("com.malware", "TransparentActivity"))
        assert all(k != AttackKind.ACTIVITY for k, _, _ in live_kinds(ea))

    def test_user_start_opens_no_link(self, rig):
        system, ea = rig
        system.launch_app("com.victim")
        assert live_kinds(ea) == []

    def test_user_restart_ends_link(self, rig):
        """Attack ends when the app is started again."""
        system, ea = rig
        malware = system.uid_of("com.malware")
        system.am.start_activity(malware, explicit("com.victim", "PlainActivity"))
        system.run_for(10.0)
        system.launch_app("com.victim")  # user starts the victim
        assert live_kinds(ea) == []
        link = ea.accounting.attacks_by_kind(AttackKind.ACTIVITY)[0]
        assert link.duration(system.now) == pytest.approx(10.0)

    def test_new_driver_replaces_link(self, rig):
        system, ea = rig
        malware = system.uid_of("com.malware")
        third = system.uid_of("com.third")
        victim = system.uid_of("com.victim")
        system.am.start_activity(malware, explicit("com.victim", "PlainActivity"))
        system.run_for(5.0)
        system.am.start_activity(third, explicit("com.victim", "PlainActivity"))
        kinds = live_kinds(ea)
        assert (AttackKind.ACTIVITY, third, victim) in kinds
        assert (AttackKind.ACTIVITY, malware, victim) not in kinds

    def test_user_move_to_front_ends_link(self, rig):
        system, ea = rig
        malware = system.uid_of("com.malware")
        system.am.start_activity(malware, explicit("com.victim", "PlainActivity"))
        system.press_home()
        system.am.move_task_to_front(
            system.package_manager.system_uid, "com.victim", user_initiated=True
        )
        assert all(k != AttackKind.ACTIVITY for k, _, _ in live_kinds(ea))

    def test_app_move_to_front_opens_link(self, rig):
        system, ea = rig
        system.launch_app("com.victim")
        system.press_home()
        malware = system.uid_of("com.malware")
        victim = system.uid_of("com.victim")
        system.am.move_task_to_front(malware, "com.victim")
        assert (AttackKind.ACTIVITY, malware, victim) in live_kinds(ea)


class TestInterruptTracker:
    """Fig. 5b."""

    def test_app_interrupting_foreground_opens_link(self, rig):
        system, ea = rig
        system.launch_app("com.victim")
        malware = system.uid_of("com.malware")
        victim = system.uid_of("com.victim")
        # Malware starts its own activity over the victim.
        system.am.start_activity(malware, explicit("com.malware", "PlainActivity"))
        assert (AttackKind.INTERRUPT, malware, victim) in live_kinds(ea)

    def test_home_intent_interrupt(self, rig):
        """Attack #4's move: malware sends the victim to background by
        starting the home UI; the launcher (system) is never charged."""
        system, ea = rig
        system.launch_app("com.victim")
        malware = system.uid_of("com.malware")
        victim = system.uid_of("com.victim")
        system.am.move_task_to_front(malware, "com.android.launcher")
        kinds = live_kinds(ea)
        assert (AttackKind.INTERRUPT, malware, victim) in kinds
        assert all(t != system.launcher.uid for _, _, t in kinds)

    def test_user_home_press_is_not_interrupt(self, rig):
        system, ea = rig
        system.launch_app("com.victim")
        system.press_home()
        assert live_kinds(ea) == []

    def test_interrupt_ends_when_victim_returns(self, rig):
        system, ea = rig
        system.launch_app("com.victim")
        malware = system.uid_of("com.malware")
        system.am.start_activity(malware, explicit("com.malware", "PlainActivity"))
        system.run_for(8.0)
        system.am.move_task_to_front(
            system.package_manager.system_uid, "com.victim", user_initiated=True
        )
        assert live_kinds(ea) == []
        link = ea.accounting.attacks_by_kind(AttackKind.INTERRUPT)[0]
        assert link.duration(system.now) == pytest.approx(8.0)


class TestServiceTracker:
    """Fig. 5c."""

    def test_start_until_stop(self, rig):
        system, ea = rig
        malware = system.uid_of("com.malware")
        victim = system.uid_of("com.victim")
        system.am.start_service(malware, explicit("com.victim", "PlainService"))
        assert (AttackKind.SERVICE_START, malware, victim) in live_kinds(ea)
        system.run_for(10.0)
        system.am.stop_service(malware, explicit("com.victim", "PlainService"))
        assert live_kinds(ea) == []

    def test_stop_self_ends_link(self, rig):
        system, ea = rig
        malware = system.uid_of("com.malware")
        record = system.am.start_service(malware, explicit("com.victim", "PlainService"))
        record.instance.stop_self()
        assert live_kinds(ea) == []

    def test_bind_until_unbind(self, rig):
        system, ea = rig
        malware = system.uid_of("com.malware")
        victim = system.uid_of("com.victim")
        conn = system.am.bind_service(malware, explicit("com.victim", "PlainService"))
        assert (AttackKind.SERVICE_BIND, malware, victim) in live_kinds(ea)
        system.am.unbind_service(conn)
        assert live_kinds(ea) == []

    def test_attack3_window_matches_bind_period(self, rig):
        """Fig. 9c: only energy during the collateral window is charged."""
        system, ea = rig
        malware = system.uid_of("com.malware")
        victim = system.uid_of("com.victim")
        svc = explicit("com.victim", "PlainService")
        # Victim starts its own service (no link: same app).
        system.am.start_service(victim, svc)
        system.run_for(20.0)
        # Malware binds; victim stops — the binding keeps it alive.
        conn = system.am.bind_service(malware, svc)
        bind_time = system.now
        system.am.stop_service(victim, svc)
        system.run_for(60.0)
        system.am.unbind_service(conn)
        links = ea.accounting.attacks_by_kind(AttackKind.SERVICE_BIND)
        assert len(links) == 1
        assert links[0].begin_time == bind_time
        assert links[0].end_time == bind_time + 60.0

    def test_refcounted_binds(self, rig):
        system, ea = rig
        malware = system.uid_of("com.malware")
        svc = explicit("com.victim", "PlainService")
        c1 = system.am.bind_service(malware, svc)
        c2 = system.am.bind_service(malware, svc)
        assert len(ea.accounting.attacks_by_kind(AttackKind.SERVICE_BIND)) == 1
        system.am.unbind_service(c1)
        assert len(live_kinds(ea)) == 1
        system.am.unbind_service(c2)
        assert live_kinds(ea) == []

    def test_malware_death_ends_bind_link(self, rig):
        system, ea = rig
        system.launch_app("com.malware")
        malware = system.uid_of("com.malware")
        system.am.bind_service(malware, explicit("com.victim", "PlainService"))
        system.am.force_stop("com.malware")
        assert all(k != AttackKind.SERVICE_BIND for k, _, _ in live_kinds(ea))

    def test_same_app_service_ops_ignored(self, rig):
        system, ea = rig
        victim = system.uid_of("com.victim")
        svc = explicit("com.victim", "PlainService")
        system.am.start_service(victim, svc)
        conn = system.am.bind_service(victim, svc)
        assert live_kinds(ea) == []
        system.am.unbind_service(conn)  # must not crash the tracker
        system.am.stop_service(victim, svc)
        assert live_kinds(ea) == []


class TestScreenTracker:
    """Fig. 5d."""

    def test_brightness_increase_opens_link(self, rig):
        system, ea = rig
        malware = system.uid_of("com.malware")
        system.settings.put(malware, SCREEN_BRIGHTNESS, 255)
        assert (AttackKind.SCREEN, malware, SCREEN_TARGET) in live_kinds(ea)

    def test_brightness_decrease_by_attacker_ends_link(self, rig):
        system, ea = rig
        malware = system.uid_of("com.malware")
        system.settings.put(malware, SCREEN_BRIGHTNESS, 255)
        system.run_for(10.0)
        system.settings.put(malware, SCREEN_BRIGHTNESS, 50)
        assert live_kinds(ea) == []

    def test_systemui_change_ends_link(self, rig):
        system, ea = rig
        malware = system.uid_of("com.malware")
        system.settings.put(malware, SCREEN_BRIGHTNESS, 255)
        system.systemui.user_set_brightness(120)
        assert live_kinds(ea) == []

    def test_switch_to_auto_ends_link(self, rig):
        system, ea = rig
        malware = system.uid_of("com.malware")
        system.settings.put(malware, SCREEN_BRIGHTNESS, 255)
        system.systemui.user_set_auto_mode(True)
        assert live_kinds(ea) == []

    def test_switch_to_manual_opens_link(self, rig):
        """Camouflaged auto-mode attack: store a high value, then flip
        the mode to manual so it takes effect."""
        system, ea = rig
        malware = system.uid_of("com.malware")
        system.systemui.user_set_auto_mode(True)
        system.settings.put(malware, SCREEN_BRIGHTNESS, 255)  # stored, inert
        assert live_kinds(ea) == []
        system.settings.put(malware, SCREEN_BRIGHTNESS_MODE, BRIGHTNESS_MODE_MANUAL)
        assert (AttackKind.SCREEN, malware, SCREEN_TARGET) in live_kinds(ea)

    def test_decrease_without_link_is_noop(self, rig):
        system, ea = rig
        malware = system.uid_of("com.malware")
        system.settings.put(malware, SCREEN_BRIGHTNESS, 50)
        assert all(k != AttackKind.SCREEN for k, _, _ in live_kinds(ea))


class TestWakelockTracker:
    """Fig. 5e."""

    def test_acquire_in_background_opens_link(self, rig):
        system, ea = rig
        system.launch_app("com.victim")  # victim foreground, malware not
        malware = system.uid_of("com.malware")
        system.power_manager.acquire(malware, SCREEN_BRIGHT_WAKE_LOCK, "svc-lock")
        assert (AttackKind.WAKELOCK, malware, SCREEN_TARGET) in live_kinds(ea)

    def test_acquire_in_foreground_no_link(self, rig):
        system, ea = rig
        system.launch_app("com.victim")
        victim = system.uid_of("com.victim")
        system.power_manager.acquire(victim, SCREEN_BRIGHT_WAKE_LOCK, "fg-lock")
        assert live_kinds(ea) == []

    def test_entering_background_with_lock_opens_link(self, rig):
        system, ea = rig
        system.launch_app("com.victim")
        victim = system.uid_of("com.victim")
        system.power_manager.acquire(victim, SCREEN_BRIGHT_WAKE_LOCK, "fg-lock")
        system.press_home()
        assert (AttackKind.WAKELOCK, victim, SCREEN_TARGET) in live_kinds(ea)

    def test_release_ends_link(self, rig):
        system, ea = rig
        system.launch_app("com.victim")
        victim = system.uid_of("com.victim")
        lock = system.power_manager.acquire(victim, SCREEN_BRIGHT_WAKE_LOCK, "l")
        system.press_home()
        system.run_for(25.0)
        lock.release()
        assert live_kinds(ea) == []
        link = ea.accounting.attacks_by_kind(AttackKind.WAKELOCK)[0]
        assert link.duration(system.now) == pytest.approx(25.0)

    def test_return_to_foreground_ends_link(self, rig):
        system, ea = rig
        system.launch_app("com.victim")
        victim = system.uid_of("com.victim")
        system.power_manager.acquire(victim, SCREEN_BRIGHT_WAKE_LOCK, "l")
        system.press_home()
        assert len(live_kinds(ea)) == 1
        system.am.move_task_to_front(
            system.package_manager.system_uid, "com.victim", user_initiated=True
        )
        assert live_kinds(ea) == []

    def test_partial_lock_not_a_screen_attack(self, rig):
        system, ea = rig
        system.launch_app("com.victim")
        malware = system.uid_of("com.malware")
        system.power_manager.acquire(malware, PARTIAL_WAKE_LOCK, "cpu-lock")
        assert live_kinds(ea) == []

    def test_death_release_ends_link(self, rig):
        system, ea = rig
        system.launch_app("com.malware")
        malware = system.uid_of("com.malware")
        system.launch_app("com.victim")
        system.power_manager.acquire(malware, SCREEN_BRIGHT_WAKE_LOCK, "leak")
        assert len(live_kinds(ea)) >= 1
        system.am.force_stop("com.malware")
        assert all(k != AttackKind.WAKELOCK for k, _, _ in live_kinds(ea))


class TestEventJournal:
    def test_all_events_logged_including_system(self, rig):
        system, ea = rig
        system.launch_app("com.victim")
        system.press_home()
        log = ea.monitor.log
        assert len(log.of_type(CollateralEventType.ACTIVITY_START)) >= 1
        assert len(log.of_type(CollateralEventType.FOREGROUND_CHANGED)) >= 2

    def test_same_app_events_journaled_but_linkless(self, rig):
        system, ea = rig
        victim = system.uid_of("com.victim")
        system.am.start_service(victim, explicit("com.victim", "PlainService"))
        assert len(ea.monitor.log.of_type(CollateralEventType.SERVICE_START)) == 1
        assert ea.accounting.attack_log() == []

    def test_cross_app_flag(self, rig):
        system, ea = rig
        malware = system.uid_of("com.malware")
        system.am.start_service(malware, explicit("com.victim", "PlainService"))
        event = ea.monitor.log.of_type(CollateralEventType.SERVICE_START)[0]
        assert event.is_cross_app


class TestLateAttach:
    def test_monitor_primed_with_preexisting_locks(self):
        """A monitor attached after locks were acquired still tracks
        the Fig. 5e begin condition on the next foreground change."""
        system = booted_system(make_app("com.holder"), make_app("com.fg"))
        system.launch_app("com.holder")
        holder = system.uid_of("com.holder")
        from repro.android import SCREEN_BRIGHT_WAKE_LOCK

        system.power_manager.acquire(holder, SCREEN_BRIGHT_WAKE_LOCK, "pre")
        ea = attach_eandroid(system)  # attached AFTER the acquire
        system.launch_app("com.fg")  # holder backgrounds with the lock
        assert (AttackKind.WAKELOCK, holder, SCREEN_TARGET) in live_kinds(ea)

"""The unified Report API: requests, views, and the deprecation shim."""

import json
import warnings

import pytest

from repro.accounting import BatteryStats, PowerTutor
from repro.export import report_to_dict
from repro.offline import OfflineAnalyzer, capture_trace
from repro.reports import (
    BACKENDS,
    REPORT_SCHEMA,
    ProfilerReportView,
    ReportRequest,
    ReportView,
    UnknownBackendError,
    view_from_report,
)
from repro.workloads import run_attack3


@pytest.fixture(scope="module")
def attack_run():
    return run_attack3()


class TestReportRequest:
    def test_unknown_backend_raises(self):
        with pytest.raises(UnknownBackendError):
            ReportRequest(backend="nope")

    def test_backends_construct(self):
        for backend in BACKENDS:
            assert ReportRequest(backend=backend).backend == backend

    def test_owners_normalised_sorted(self):
        request = ReportRequest(backend="energy", owners=[30, 10, 20])
        assert request.owners == (10, 20, 30)

    def test_key_distinguishes_fields(self):
        keys = {
            ReportRequest(backend="energy").key(),
            ReportRequest(backend="eandroid").key(),
            ReportRequest(backend="energy", start=1.0).key(),
            ReportRequest(backend="energy", end=5.0).key(),
            ReportRequest(backend="energy", owners=(10,)).key(),
        }
        assert len(keys) == 5

    def test_dict_round_trip(self):
        request = ReportRequest(backend="powertutor", start=2.0, end=9.0, owners=(10,))
        assert ReportRequest.from_dict(request.to_dict()) == request

    def test_frozen(self):
        request = ReportRequest(backend="energy")
        with pytest.raises(AttributeError):
            request.backend = "eandroid"


class TestReportViews:
    def test_live_profilers_expose_views(self, attack_run):
        system, ea = attack_run.system, attack_run.eandroid
        for profiler in (BatteryStats(system), PowerTutor(system), ea.interface):
            view = profiler.report_view()
            assert isinstance(view, ReportView)
            assert view.backend == profiler.backend
            assert view.total_j() == pytest.approx(
                profiler.report().total_energy_j()
            )

    def test_to_dict_schema(self, attack_run):
        view = BatteryStats(attack_run.system).report_view()
        doc = view.to_dict()
        assert doc["schema"] == REPORT_SCHEMA
        assert doc["backend"] == "batterystats"
        assert doc["total_j"] == pytest.approx(view.total_j())
        assert {"uid", "label", "energy_j", "collateral_j"} <= set(doc["entries"][0])

    def test_describe_validates_backend(self, attack_run):
        profiler = BatteryStats(attack_run.system)
        with pytest.raises(UnknownBackendError):
            profiler.describe(ReportRequest(backend="powertutor"))
        view = profiler.describe(ReportRequest(backend="batterystats"))
        assert view.backend == "batterystats"

    def test_owner_filter(self, attack_run):
        system = attack_run.system
        report = BatteryStats(system).report()
        uids = [e.uid for e in report.entries if e.uid is not None]
        keep = uids[0]
        request = ReportRequest(backend="batterystats", owners=(keep,))
        view = view_from_report(report, "batterystats", request)
        assert [row.uid for row in view.rows()] == [keep]

    def test_offline_analyzer_describes_all_backends(self, attack_run):
        trace = capture_trace(attack_run.system, attack_run.eandroid)
        analyzer = OfflineAnalyzer(trace)
        for backend in BACKENDS:
            view = analyzer.describe(ReportRequest(backend=backend))
            assert view.backend == backend
            assert view.to_dict()["schema"] == REPORT_SCHEMA


class TestDeprecationShim:
    def test_byte_identity_with_view(self, attack_run):
        system, ea = attack_run.system, attack_run.eandroid
        for profiler, backend in (
            (BatteryStats(system), "batterystats"),
            (PowerTutor(system), "powertutor"),
            (ea.interface, "eandroid"),
        ):
            report = profiler.report()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                legacy = report_to_dict(report)
            fresh = ProfilerReportView(backend=backend, report=report).to_dict()
            assert json.dumps(legacy, sort_keys=True) == json.dumps(
                fresh, sort_keys=True
            )

    def test_single_deprecation_warning(self, attack_run, monkeypatch):
        import repro.export as export_module

        monkeypatch.setattr(export_module, "_warned_report_to_dict", False)
        report = BatteryStats(attack_run.system).report()
        with pytest.warns(DeprecationWarning):
            report_to_dict(report)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            report_to_dict(report)  # second call must stay silent

"""Tests for implicit-intent resolution with multiple handlers.

The paper (§IV-A): "When an implicit intent is launched, Android starts
'resolverActivity', where a user could designate the app to start ...
For the implicit intent case, E-Android tracks both intents and ignores
the Android system's UI, and records both apps' user IDs after the
choice is made."
"""

import pytest

from repro.android import (
    ACTION_VIDEO_CAPTURE,
    ActivityNotFoundError,
    AndroidManifest,
    App,
    AndroidSystem,
    CATEGORY_DEFAULT,
    ComponentDecl,
    ComponentKind,
    IntentFilterDecl,
    implicit,
)
from repro.core import AttackKind, attach_eandroid

from helpers import PlainActivity


def capture_app(package: str) -> App:
    manifest = AndroidManifest(
        package=package,
        category="photography",
        components=(
            ComponentDecl(
                name="CaptureActivity",
                kind=ComponentKind.ACTIVITY,
                exported=True,
                intent_filters=(
                    IntentFilterDecl(
                        actions=frozenset({ACTION_VIDEO_CAPTURE}),
                        categories=frozenset({CATEGORY_DEFAULT}),
                    ),
                ),
            ),
        ),
    )
    return App(manifest, {"CaptureActivity": PlainActivity})


def caller_app() -> App:
    from repro.android import launcher_filter

    manifest = AndroidManifest(
        package="com.caller",
        components=(
            ComponentDecl(
                name="PlainActivity",
                kind=ComponentKind.ACTIVITY,
                exported=True,
                intent_filters=(launcher_filter(),),
            ),
        ),
    )
    return App(manifest, {"PlainActivity": PlainActivity})


@pytest.fixture
def system():
    system = AndroidSystem()
    system.install(caller_app())
    system.install(capture_app("com.cam.one"))
    system.install(capture_app("com.cam.two"))
    system.boot()
    return system


class TestResolver:
    def test_default_policy_picks_first_by_package(self, system):
        uid = system.uid_of("com.caller")
        record = system.am.start_activity(uid, implicit(ACTION_VIDEO_CAPTURE))
        assert record.package == "com.cam.one"

    def test_custom_policy_chooses(self, system):
        chosen = []

        def pick_second(intent, handlers):
            chosen.append([app.package for app, _ in handlers])
            return handlers[1]

        system.am.set_resolver_policy(pick_second)
        uid = system.uid_of("com.caller")
        record = system.am.start_activity(uid, implicit(ACTION_VIDEO_CAPTURE))
        assert record.package == "com.cam.two"
        assert chosen == [["com.cam.one", "com.cam.two"]]

    def test_single_handler_skips_resolver(self, system):
        system.package_manager.uninstall("com.cam.two")
        calls = []
        system.am.set_resolver_policy(lambda i, h: calls.append(1) or h[0])
        uid = system.uid_of("com.caller")
        record = system.am.start_activity(uid, implicit(ACTION_VIDEO_CAPTURE))
        assert record.package == "com.cam.one"
        assert calls == []  # policy (the "user dialog") never consulted

    def test_no_handler_raises(self, system):
        uid = system.uid_of("com.caller")
        with pytest.raises(ActivityNotFoundError):
            system.am.start_activity(uid, implicit("action.nobody.handles"))

    def test_resolved_intent_is_explicit(self, system):
        uid = system.uid_of("com.caller")
        record = system.am.start_activity(uid, implicit(ACTION_VIDEO_CAPTURE))
        assert record.instance.intent.is_explicit
        assert record.instance.intent.action == ACTION_VIDEO_CAPTURE

    def test_monitor_attributes_original_caller_through_resolver(self, system):
        """The attack link names the caller, not the resolver UI."""
        ea = attach_eandroid(system)
        system.am.set_resolver_policy(lambda i, h: h[1])
        caller = system.uid_of("com.caller")
        target = system.uid_of("com.cam.two")
        system.am.start_activity(caller, implicit(ACTION_VIDEO_CAPTURE))
        links = ea.accounting.attacks_by_kind(AttackKind.ACTIVITY)
        assert len(links) == 1
        assert links[0].driving_uid == caller
        assert links[0].target == target

    def test_monitor_journal_records_resolved_component(self, system):
        from repro.core import CollateralEventType

        ea = attach_eandroid(system)
        caller = system.uid_of("com.caller")
        system.am.start_activity(caller, implicit(ACTION_VIDEO_CAPTURE))
        event = ea.monitor.log.of_type(CollateralEventType.ACTIVITY_START)[-1]
        assert event.details["component"] == "CaptureActivity"

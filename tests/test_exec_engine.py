"""Tests for the parallel execution engine, result cache, and manifest."""

import json

import pytest

from repro.exec import (
    EngineConfig,
    ExperimentEngine,
    ResultCache,
    build_manifest,
    source_tree_hash,
    write_manifest,
)
from repro.experiments import ExperimentSpec, REGISTRY
from repro.experiments.registry import register

CHEAP = [("fig1", {}), ("fig6", {}), ("fig7", {})]


def make_engine(tmp_path, **overrides):
    config = dict(parallel=1, cache_dir=tmp_path / "cache")
    config.update(overrides)
    return ExperimentEngine(EngineConfig(**config))


class TestCache:
    def test_key_depends_on_name_and_params(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = cache.key_for("fig1", {})
        assert cache.key_for("fig1", {}) == base
        assert cache.key_for("fig2", {}) != base
        assert cache.key_for("fig1", {"seed": 1}) != base

    def test_tree_hash_stable_within_process(self):
        assert source_tree_hash() == source_tree_hash()

    def test_load_miss_then_store_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load("fig1", {}) is None
        cache.store("fig1", {}, {"name": "fig1", "claim_holds": True, "text": "t"})
        payload = cache.load("fig1", {})
        assert payload["outcome"]["text"] == "t"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.store("fig1", {}, {"name": "fig1"})
        path.write_text("{not json", encoding="utf-8")
        assert cache.load("fig1", {}) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("fig1", {}, {"name": "fig1"})
        assert cache.clear() == 1
        assert cache.load("fig1", {}) is None


class TestEngineSerial:
    def test_cold_then_warm(self, tmp_path):
        cold = make_engine(tmp_path).run(CHEAP)
        assert [r.cached for r in cold.results] == [False, False, False]
        assert cold.cache_stats.misses == 3
        assert cold.cache_stats.stores == 3

        warm_engine = make_engine(tmp_path)
        warm = warm_engine.run(CHEAP)
        assert [r.cached for r in warm.results] == [True, True, True]
        assert warm.cache_stats.hits == 3
        # replay is byte-identical
        for a, b in zip(cold.results, warm.results):
            assert a.outcome.text == b.outcome.text
            assert a.outcome.claim_holds == b.outcome.claim_holds

    def test_refresh_recomputes(self, tmp_path):
        make_engine(tmp_path).run(CHEAP[:1])
        refreshed = make_engine(tmp_path, refresh=True).run(CHEAP[:1])
        assert refreshed.cache_stats.hits == 0
        assert refreshed.results[0].cached is False
        assert refreshed.cache_stats.stores == 1

    def test_no_cache_leaves_disk_untouched(self, tmp_path):
        run = make_engine(tmp_path, use_cache=False).run(CHEAP[:1])
        assert run.results[0].cached is False
        assert not (tmp_path / "cache").exists()

    def test_results_in_request_order(self, tmp_path):
        run = make_engine(tmp_path, use_cache=False).run(
            [("fig7", {}), ("fig1", {}), ("fig6", {})]
        )
        assert [r.name for r in run.results] == ["fig7", "fig1", "fig6"]

    def test_aliases_and_bare_names_accepted(self, tmp_path):
        run = make_engine(tmp_path, use_cache=False).run(["fig1"])
        assert run.results[0].name == "fig1"

    def test_params_resolved_against_defaults(self, tmp_path):
        run = make_engine(tmp_path, use_cache=False).run(
            [("fig10", {"iterations": 3})]
        )
        assert run.results[0].params == {"iterations": 3}
        assert run.results[0].outcome.claim_holds in (True, False)


class TestEngineParallel:
    def test_parallel_matches_serial(self, tmp_path):
        serial = make_engine(tmp_path / "a", use_cache=False).run(CHEAP)
        fanned = make_engine(tmp_path / "b", use_cache=False, parallel=2).run(CHEAP)
        assert [r.name for r in fanned.results] == [r.name for r in serial.results]
        for a, b in zip(serial.results, fanned.results):
            assert a.outcome.text == b.outcome.text
            assert a.outcome.claim_holds == b.outcome.claim_holds

    def test_parallel_populates_cache_for_serial_replay(self, tmp_path):
        make_engine(tmp_path, parallel=2).run(CHEAP)
        warm = make_engine(tmp_path).run(CHEAP)
        assert warm.cache_stats.hits == 3


class TestFailureHandling:
    @pytest.fixture()
    def boom_spec(self):
        def explode():
            raise RuntimeError("boom")

        spec = ExperimentSpec(name="boom", runner=explode, description="always fails")
        register(spec)
        yield spec
        REGISTRY.pop("boom", None)

    def test_failure_becomes_deviation(self, tmp_path, boom_spec):
        run = make_engine(tmp_path, use_cache=False, retries=2).run(["boom"])
        result = run.results[0]
        assert result.outcome.claim_holds is False
        assert result.outcome.status == "DEVIATION"
        assert result.attempts == 3  # 1 + 2 retries
        assert "boom" in result.error

    def test_failure_does_not_poison_other_jobs(self, tmp_path, boom_spec):
        run = make_engine(tmp_path, use_cache=False, retries=0).run(
            [("fig1", {}), ("boom", {}), ("fig6", {})]
        )
        statuses = {r.name: r.outcome.claim_holds for r in run.results}
        assert statuses["fig1"] is True
        assert statuses["boom"] is False
        assert statuses["fig6"] is True

    def test_failures_are_never_cached(self, tmp_path, boom_spec):
        make_engine(tmp_path, retries=0).run(["boom"])
        warm = make_engine(tmp_path, retries=0).run(["boom"])
        assert warm.cache_stats.hits == 0


class TestManifest:
    def test_manifest_contents(self, tmp_path):
        engine = make_engine(tmp_path)
        run = engine.run(CHEAP)
        manifest = build_manifest(run)
        assert manifest["cache"] == {"hits": 0, "misses": 3, "stores": 3}
        assert manifest["summary"]["total"] == 3
        assert manifest["summary"]["reproduced"] == 3
        assert [e["name"] for e in manifest["experiments"]] == [
            "fig1",
            "fig6",
            "fig7",
        ]
        for entry in manifest["experiments"]:
            assert entry["status"] == "REPRODUCED"
            assert entry["cached"] is False
            assert entry["wall_time_s"] >= 0.0

    def test_write_manifest_roundtrips_as_json(self, tmp_path):
        run = make_engine(tmp_path).run(CHEAP[:1])
        path = write_manifest(run, tmp_path / "out")
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["schema"] == 1
        assert data["tree_hash"] == source_tree_hash()
        assert data["engine"]["parallel"] == 1

    def test_warm_manifest_shows_cache_hits(self, tmp_path):
        make_engine(tmp_path).run(CHEAP)
        warm = make_engine(tmp_path).run(CHEAP)
        manifest = build_manifest(warm)
        assert manifest["cache"]["hits"] == 3
        assert all(e["cached"] for e in manifest["experiments"])

"""Unit tests for the simulated process table and link-to-death."""

import pytest

from repro.sim import DeadProcessError, ProcessTable, UnknownPidError


class TestProcessTable:
    def test_spawn_assigns_distinct_pids(self):
        table = ProcessTable()
        a = table.spawn(uid=10001, name="com.example.a")
        b = table.spawn(uid=10002, name="com.example.b")
        assert a.pid != b.pid
        assert a.alive and b.alive

    def test_get_unknown_pid(self):
        with pytest.raises(UnknownPidError):
            ProcessTable().get(424242)

    def test_is_alive(self):
        table = ProcessTable()
        record = table.spawn(uid=1, name="x")
        assert table.is_alive(record.pid)
        table.kill(record.pid)
        assert not table.is_alive(record.pid)
        assert not table.is_alive(999999)

    def test_kill_records_time(self):
        table = ProcessTable()
        record = table.spawn(uid=1, name="x", now=1.0)
        table.kill(record.pid, now=9.0)
        assert record.death_time == 9.0
        assert record.start_time == 1.0

    def test_double_kill_raises(self):
        table = ProcessTable()
        record = table.spawn(uid=1, name="x")
        table.kill(record.pid)
        with pytest.raises(DeadProcessError):
            table.kill(record.pid)

    def test_processes_of_uid(self):
        table = ProcessTable()
        a = table.spawn(uid=7, name="a")
        b = table.spawn(uid=7, name="b")
        table.spawn(uid=8, name="c")
        assert {p.pid for p in table.processes_of_uid(7)} == {a.pid, b.pid}
        table.kill(a.pid)
        assert [p.pid for p in table.processes_of_uid(7)] == [b.pid]
        assert {p.pid for p in table.processes_of_uid(7, alive_only=False)} == {
            a.pid,
            b.pid,
        }

    def test_kill_uid(self):
        table = ProcessTable()
        table.spawn(uid=7, name="a")
        table.spawn(uid=7, name="b")
        killed = table.kill_uid(7)
        assert len(killed) == 2
        assert table.processes_of_uid(7) == []

    def test_live_count(self):
        table = ProcessTable()
        a = table.spawn(uid=1, name="a")
        table.spawn(uid=2, name="b")
        assert table.live_count() == 2
        table.kill(a.pid)
        assert table.live_count() == 1


class TestLinkToDeath:
    def test_observer_fires_on_kill(self):
        table = ProcessTable()
        record = table.spawn(uid=1, name="x")
        deaths = []
        record.link_to_death(lambda rec: deaths.append(rec.pid))
        table.kill(record.pid)
        assert deaths == [record.pid]

    def test_observers_fire_in_registration_order(self):
        table = ProcessTable()
        record = table.spawn(uid=1, name="x")
        order = []
        record.link_to_death(lambda _: order.append("first"))
        record.link_to_death(lambda _: order.append("second"))
        table.kill(record.pid)
        assert order == ["first", "second"]

    def test_link_to_dead_process_raises(self):
        table = ProcessTable()
        record = table.spawn(uid=1, name="x")
        table.kill(record.pid)
        with pytest.raises(DeadProcessError):
            record.link_to_death(lambda _: None)

    def test_unlink(self):
        table = ProcessTable()
        record = table.spawn(uid=1, name="x")
        deaths = []
        observer = lambda rec: deaths.append(rec.pid)  # noqa: E731
        record.link_to_death(observer)
        assert record.unlink_to_death(observer) is True
        assert record.unlink_to_death(observer) is False
        table.kill(record.pid)
        assert deaths == []

    def test_observers_cleared_after_death(self):
        table = ProcessTable()
        record = table.spawn(uid=1, name="x")
        deaths = []
        record.link_to_death(lambda rec: deaths.append(rec.pid))
        table.kill(record.pid)
        assert record._death_observers == []

"""Unit tests for the discrete-event kernel, clock, and event queue."""

import pytest

from repro.sim import (
    EventCancelledError,
    EventQueue,
    Kernel,
    KernelStateError,
    SchedulingError,
    VirtualClock,
)


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now() == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(SchedulingError):
            VirtualClock(-1.0)

    def test_advance(self):
        clock = VirtualClock()
        clock.advance_to(3.5)
        assert clock.now() == 3.5

    def test_advance_to_same_time_is_noop(self):
        clock = VirtualClock(2.0)
        clock.advance_to(2.0)
        assert clock.now() == 2.0

    def test_backwards_advance_rejected(self):
        clock = VirtualClock(2.0)
        with pytest.raises(SchedulingError):
            clock.advance_to(1.0)


class TestEventQueue:
    def test_empty_queue(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert not queue
        assert queue.pop() is None
        assert queue.peek_time() is None

    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(2.0, lambda: None, "b")
        queue.push(1.0, lambda: None, "a")
        queue.push(3.0, lambda: None, "c")
        names = [queue.pop().name for _ in range(3)]
        assert names == ["a", "b", "c"]

    def test_fifo_for_same_time(self):
        queue = EventQueue()
        for label in "abcde":
            queue.push(1.0, lambda: None, label)
        names = [queue.pop().name for _ in range(5)]
        assert names == list("abcde")

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None, "a")
        queue.push(2.0, lambda: None, "b")
        first.cancel()
        queue.note_cancelled()
        assert queue.pop().name == "b"

    def test_double_cancel_raises(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancel()
        with pytest.raises(EventCancelledError):
            event.cancel()

    def test_cancel_if_pending(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        assert event.cancel_if_pending() is True
        assert event.cancel_if_pending() is False

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(4.0, lambda: None)
        first.cancel()
        queue.note_cancelled()
        assert queue.peek_time() == 4.0

    def test_event_state_properties(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        assert event.pending and not event.cancelled and not event.dispatched
        event.mark_dispatched()
        assert event.dispatched and not event.pending


class TestKernel:
    def test_call_later_runs_at_right_time(self):
        kernel = Kernel()
        seen = []
        kernel.call_later(5.0, lambda: seen.append(kernel.now))
        kernel.run_for(10.0)
        assert seen == [5.0]
        assert kernel.now == 10.0

    def test_call_at_absolute(self):
        kernel = Kernel()
        seen = []
        kernel.call_at(3.0, lambda: seen.append(kernel.now))
        kernel.run_until(3.0)
        assert seen == [3.0]

    def test_call_soon(self):
        kernel = Kernel()
        seen = []
        kernel.call_soon(lambda: seen.append("x"))
        kernel.run_for(0.0)
        assert seen == ["x"]

    def test_past_scheduling_rejected(self):
        kernel = Kernel()
        kernel.call_later(5.0, lambda: None)
        kernel.run_for(5.0)
        with pytest.raises(SchedulingError):
            kernel.call_at(2.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulingError):
            Kernel().call_later(-1.0, lambda: None)

    def test_negative_duration_rejected(self):
        with pytest.raises(SchedulingError):
            Kernel().run_for(-1.0)

    def test_events_schedule_more_events(self):
        kernel = Kernel()
        seen = []

        def first():
            seen.append(("first", kernel.now))
            kernel.call_later(2.0, second)

        def second():
            seen.append(("second", kernel.now))

        kernel.call_later(1.0, first)
        kernel.run_for(10.0)
        assert seen == [("first", 1.0), ("second", 3.0)]

    def test_cancel_via_kernel(self):
        kernel = Kernel()
        seen = []
        event = kernel.call_later(1.0, lambda: seen.append("x"))
        assert kernel.cancel(event) is True
        assert kernel.cancel(event) is False
        kernel.run_for(5.0)
        assert seen == []
        assert kernel.pending_events == 0

    def test_run_until_deadline_before_now_rejected(self):
        kernel = Kernel()
        kernel.run_for(5.0)
        with pytest.raises(SchedulingError):
            kernel.run_until(1.0)

    def test_run_until_returns_dispatch_count(self):
        kernel = Kernel()
        for i in range(4):
            kernel.call_later(float(i), lambda: None)
        assert kernel.run_until(2.0) == 3

    def test_drain(self):
        kernel = Kernel()
        kernel.call_later(1.0, lambda: None)
        kernel.call_later(100.0, lambda: None)
        assert kernel.drain() == 2
        assert kernel.now == 100.0

    def test_drain_livelock_detection(self):
        kernel = Kernel()

        def perpetuate():
            kernel.call_soon(perpetuate)

        kernel.call_soon(perpetuate)
        with pytest.raises(KernelStateError):
            kernel.drain(max_events=100)

    def test_step(self):
        kernel = Kernel()
        seen = []
        kernel.call_later(2.0, lambda: seen.append("a"))
        assert kernel.step() is True
        assert kernel.now == 2.0
        assert kernel.step() is False

    def test_error_propagates_without_handler(self):
        kernel = Kernel()
        kernel.call_later(1.0, lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            kernel.run_for(2.0)

    def test_error_handler_receives_exception(self):
        kernel = Kernel()
        captured = []
        kernel.set_error_handler(lambda event, exc: captured.append(exc))
        kernel.call_later(1.0, lambda: 1 / 0)
        kernel.run_for(2.0)
        assert len(captured) == 1
        assert isinstance(captured[0], ZeroDivisionError)

    def test_dispatched_count(self):
        kernel = Kernel()
        for _ in range(3):
            kernel.call_soon(lambda: None)
        kernel.run_for(0.0)
        assert kernel.dispatched_count == 3

    def test_reentrancy_guard(self):
        kernel = Kernel()
        errors = []

        def nested():
            try:
                kernel.run_for(1.0)
            except KernelStateError as exc:
                errors.append(exc)

        kernel.call_later(1.0, nested)
        kernel.run_for(2.0)
        assert len(errors) == 1

    def test_same_time_fifo_through_kernel(self):
        kernel = Kernel()
        seen = []
        for label in "abc":
            kernel.call_at(1.0, lambda label=label: seen.append(label))
        kernel.run_for(2.0)
        assert seen == ["a", "b", "c"]


class TestDispatchMarkAndCountSemantics:
    """Regression: mark/count exactly once under both handler configurations."""

    def test_raising_event_without_handler_is_marked_and_counted_once(self):
        kernel = Kernel()
        event = kernel.call_later(1.0, lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            kernel.run_for(2.0)
        assert event.dispatched
        assert not event.pending
        assert kernel.dispatched_count == 1
        # A dispatched event cannot be revived or re-cancelled.
        assert event.cancel_if_pending() is False
        with pytest.raises(EventCancelledError):
            event.cancel()

    def test_raising_event_with_handler_is_marked_and_counted_once(self):
        kernel = Kernel()
        kernel.set_error_handler(lambda event, exc: None)
        event = kernel.call_later(1.0, lambda: 1 / 0)
        kernel.run_for(2.0)
        assert event.dispatched
        assert kernel.dispatched_count == 1

    def test_count_agrees_across_mixed_success_and_failure(self):
        kernel = Kernel()
        consumed = []
        kernel.set_error_handler(lambda event, exc: consumed.append(exc))
        ran = []
        kernel.call_later(1.0, lambda: 1 / 0)
        kernel.call_later(2.0, lambda: ran.append("ok"))
        kernel.call_later(3.0, lambda: 1 / 0)
        assert kernel.run_for(5.0) == 3
        assert ran == ["ok"]
        assert len(consumed) == 2
        assert kernel.dispatched_count == 3

    def test_count_matches_with_and_without_handler(self):
        """The same timeline yields the same count either way."""

        def build(with_handler):
            kernel = Kernel()
            if with_handler:
                kernel.set_error_handler(lambda event, exc: None)
            kernel.call_later(1.0, lambda: 1 / 0)
            kernel.call_later(2.0, lambda: None)
            return kernel

        handled = build(with_handler=True)
        handled.run_for(3.0)

        unhandled = build(with_handler=False)
        with pytest.raises(ZeroDivisionError):
            unhandled.run_for(3.0)
        # The raising event itself is counted in both configurations; the
        # unhandled run aborted before reaching the second event.
        assert handled.dispatched_count == 2
        assert unhandled.dispatched_count == 1

    def test_handler_exception_still_marks_event(self):
        kernel = Kernel()

        def bad_handler(event, exc):
            raise RuntimeError("handler broke")

        kernel.set_error_handler(bad_handler)
        event = kernel.call_later(1.0, lambda: 1 / 0)
        with pytest.raises(RuntimeError):
            kernel.run_for(2.0)
        assert event.dispatched
        assert kernel.dispatched_count == 1


class TestRepeatingTimer:
    def test_fires_on_interval(self):
        kernel = Kernel()
        ticks = []
        kernel.call_repeating(2.0, lambda: ticks.append(kernel.now))
        kernel.run_for(7.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_immediate_start(self):
        kernel = Kernel()
        ticks = []
        kernel.call_repeating(5.0, lambda: ticks.append(kernel.now), immediately=True)
        kernel.run_for(6.0)
        assert ticks == [0.0, 5.0]

    def test_cancel_stops_firing(self):
        kernel = Kernel()
        timer = kernel.call_repeating(1.0, lambda: None)
        kernel.run_for(3.5)
        timer.cancel()
        fired = timer.fire_count
        kernel.run_for(10.0)
        assert timer.fire_count == fired
        assert not timer.active

    def test_cancel_idempotent(self):
        kernel = Kernel()
        timer = kernel.call_repeating(1.0, lambda: None)
        timer.cancel()
        timer.cancel()

    def test_cancel_from_inside_callback(self):
        kernel = Kernel()
        holder = {}

        def tick():
            if holder["timer"].fire_count >= 2:
                holder["timer"].cancel()

        holder["timer"] = kernel.call_repeating(1.0, tick)
        kernel.run_for(10.0)
        assert holder["timer"].fire_count == 2

    def test_invalid_interval(self):
        with pytest.raises(SchedulingError):
            Kernel().call_repeating(0.0, lambda: None)

    def test_cancel_during_first_callback_stops_everything(self):
        kernel = Kernel()
        holder = {}
        times = []

        def tick():
            times.append(kernel.now)
            holder["timer"].cancel()

        holder["timer"] = kernel.call_repeating(3.0, tick)
        kernel.run_for(30.0)
        assert times == [3.0]
        assert holder["timer"].fire_count == 1
        assert not holder["timer"].active
        assert kernel.pending_events == 0  # no orphaned reschedule

    def test_immediately_first_fire_is_at_creation_time(self):
        kernel = Kernel()
        kernel.run_for(4.0)  # arm away from t=0 to pin the fire time
        times = []
        kernel.call_repeating(2.5, lambda: times.append(kernel.now), immediately=True)
        kernel.run_for(6.0)
        assert times == [4.0, 6.5, 9.0]

    def test_fire_count_spans_n_intervals(self):
        kernel = Kernel()
        timer = kernel.call_repeating(2.0, lambda: None)
        kernel.run_for(11.0)  # fires at 2, 4, 6, 8, 10
        assert timer.fire_count == 5
        kernel.run_for(1.0)  # 12.0 lands exactly on the next interval
        assert timer.fire_count == 6
        assert timer.active

    def test_fire_count_zero_before_first_interval(self):
        kernel = Kernel()
        timer = kernel.call_repeating(5.0, lambda: None)
        kernel.run_for(4.9)
        assert timer.fire_count == 0

"""Scale integration tests: a generated day of usage on one device."""

import pytest

from repro.accounting import BatteryStats, PowerTutor
from repro.core import SCREEN_TARGET
from repro.workloads import run_day


class TestDayGeneration:
    def test_deterministic_per_seed(self):
        first = run_day(seed=7, hours=2.0)
        second = run_day(seed=7, hours=2.0)
        assert first.log.launches == second.log.launches
        assert first.system.battery.percent() == pytest.approx(
            second.system.battery.percent()
        )

    def test_different_seeds_differ(self):
        a = run_day(seed=1, hours=2.0)
        b = run_day(seed=2, hours=2.0)
        assert a.log.launches != b.log.launches

    def test_sessions_happen(self):
        day = run_day(seed=42, hours=4.0)
        assert day.log.sessions >= 4
        assert sum(day.log.launches.values()) >= day.log.sessions

    def test_battery_drains_meaningfully(self):
        day = run_day(seed=42, hours=4.0)
        assert 0.0 <= day.system.battery.percent() < 100.0


class TestDayInvariants:
    @pytest.fixture(scope="class")
    def day(self):
        return run_day(seed=42, hours=6.0, with_malware=True)

    def test_energy_conservation_over_day(self, day):
        meter = day.system.hardware.meter
        assert meter.total_energy_j() == pytest.approx(
            sum(meter.energy_by_owner().values()), rel=1e-9
        )
        assert day.system.battery.energy_used_j() == pytest.approx(
            meter.total_energy_j(), rel=1e-9
        )

    def test_no_over_charging_over_day(self, day):
        meter = day.system.hardware.meter
        for host in day.eandroid.accounting.hosts():
            for target, joules in day.eandroid.accounting.collateral_breakdown(
                host
            ).items():
                ground = (
                    meter.screen_energy_j()
                    if target == SCREEN_TARGET
                    else meter.energy_j(owner=target)
                )
                assert joules <= ground + 1e-6

    def test_maps_match_reachability_at_end(self, day):
        graph = day.eandroid.accounting.graph
        for host in graph.hosts():
            assert day.eandroid.accounting.map_for(
                host
            ).open_targets() == graph.reachable_from(host)

    def test_malware_visible_in_eandroid_not_batterystats(self, day):
        stock = BatteryStats(day.system).report()
        revised = day.eandroid.report()
        # The wakelock malware shows almost nothing to BatteryStats...
        assert stock.percent_of("Qrscanner") < 1.0
        # ...but carries heavy collateral in the revised view.
        entry = revised.entry_for("Qrscanner")
        assert entry is not None and sum(entry.collateral_j.values()) > 100.0

    def test_powertutor_conserves_over_day(self, day):
        report = PowerTutor(day.system).report()
        assert report.total_energy_j() == pytest.approx(
            day.system.hardware.meter.total_energy_j(), rel=1e-6
        )

    def test_attack_links_accumulated(self, day):
        assert len(day.eandroid.accounting.attack_log()) > 5

    def test_malware_day_drains_more(self):
        clean = run_day(seed=42, hours=4.0, with_malware=False)
        infected = run_day(seed=42, hours=4.0, with_malware=True)
        assert (
            infected.system.battery.energy_used_j()
            > clean.system.battery.energy_used_j() * 1.2
        )

"""Tests for the evaluation workloads: scenarios, microbench, AnTuTu."""

import pytest

from repro.workloads import (
    AnTuTuBenchmark,
    BoxplotStats,
    CONFIGURATIONS,
    MICRO_OPERATIONS,
    MicroBenchmark,
    build_configured_system,
    run_attack5,
    run_attack6,
    run_fig3_drains,
    run_scene1,
    run_scene2,
)


class TestScenes:
    def test_scene1_android_blames_camera(self):
        run = run_scene1()
        report = run.android_report()
        assert report.percent_of("Camera") > 10 * max(
            report.percent_of("Message"), 0.1
        )

    def test_scene1_eandroid_reveals_message(self):
        run = run_scene1()
        report = run.eandroid_report()
        message = report.entry_for("Message")
        camera = report.entry_for("Camera")
        assert message.collateral_j.get("Camera", 0.0) == pytest.approx(
            camera.energy_j, rel=0.01
        )

    def test_scene2_chain_charges_contacts(self):
        run = run_scene2()
        report = run.eandroid_report()
        contacts = report.entry_for("Contacts")
        assert "Camera" in contacts.collateral_j
        assert "Message" in contacts.collateral_j

    def test_scene_windows_cover_script(self):
        run = run_scene1()
        assert run.end - run.start == pytest.approx(61.0)


class TestAttackControls:
    def test_attack5_attack_beats_normal(self):
        attack = run_attack5(duration=60.0)
        normal = run_attack5(duration=60.0, attack=False)
        attack_screen = attack.system.hardware.meter.screen_energy_j(
            start=attack.start, end=attack.end
        )
        normal_screen = normal.system.hardware.meter.screen_energy_j(
            start=normal.start, end=normal.end
        )
        assert attack_screen > normal_screen * 1.3

    def test_attack6_attack_beats_normal(self):
        attack = run_attack6(duration=60.0)
        normal = run_attack6(duration=60.0, attack=False)
        attack_screen = attack.system.hardware.meter.screen_energy_j(
            start=attack.start, end=attack.end
        )
        normal_screen = normal.system.hardware.meter.screen_energy_j(
            start=normal.start, end=normal.end
        )
        # Normal: screen times out after 30 s; attack: pinned on for 60 s.
        assert attack_screen > normal_screen * 1.5


class TestFig3Drains:
    @pytest.fixture(scope="class")
    def drains(self):
        return {d.name: d for d in run_fig3_drains()}

    def test_five_series(self, drains):
        assert set(drains) == {
            "brightness_low",
            "brightness_10",
            "brightness_full",
            "bind_service",
            "interrupt_app",
        }

    def test_full_brightness_fastest(self, drains):
        fastest = min(drains.values(), key=lambda d: d.hours_to_dead)
        assert fastest.name == "brightness_full"

    def test_baseline_slowest(self, drains):
        slowest = max(drains.values(), key=lambda d: d.hours_to_dead)
        assert slowest.name == "brightness_low"

    def test_small_brightness_increase_costs_battery(self, drains):
        assert (
            drains["brightness_10"].hours_to_dead
            < drains["brightness_low"].hours_to_dead
        )

    def test_hours_in_plausible_range(self, drains):
        for drain in drains.values():
            assert 3.0 < drain.hours_to_dead < 30.0

    def test_curves_monotone(self, drains):
        for drain in drains.values():
            percents = [s.percent for s in drain.curve]
            assert all(a >= b for a, b in zip(percents, percents[1:]))
            assert percents[-1] == pytest.approx(0.0, abs=0.5)

    def test_percent_at_hours(self, drains):
        drain = drains["brightness_full"]
        assert drain.percent_at_hours(0.0) == pytest.approx(100.0)
        assert drain.percent_at_hours(drain.hours_to_dead) == pytest.approx(0.0)


class TestMicroBenchmark:
    def test_boxplot_outlier_policy(self):
        samples = [100.0, 90.0] + [1.0] * 46 + [0.001, 0.002]
        stats = BoxplotStats.from_samples("op", "android", samples)
        assert stats.samples == 46
        assert stats.maximum == 1.0
        assert stats.minimum == 1.0

    def test_boxplot_small_sample_kept(self):
        stats = BoxplotStats.from_samples("op", "android", [1.0, 2.0, 3.0])
        assert stats.samples == 3
        assert stats.median == 2.0

    def test_quartiles_ordered(self):
        stats = BoxplotStats.from_samples(
            "op", "android", [float(i) for i in range(50)]
        )
        assert stats.minimum <= stats.q1 <= stats.median <= stats.q3 <= stats.maximum

    @pytest.mark.parametrize("operation", MICRO_OPERATIONS)
    def test_each_operation_measurable(self, operation):
        bench = MicroBenchmark(iterations=6)
        stats = bench.measure(operation, "android")
        assert stats.median >= 0.0
        assert stats.samples > 0

    def test_all_configurations_build(self):
        for configuration in CONFIGURATIONS:
            system = build_configured_system(configuration)
            observer_count = len(system.observers)
            if configuration == "android":
                assert observer_count == 0
            else:
                assert observer_count == 1

    def test_unknown_configuration_rejected(self):
        with pytest.raises(ValueError):
            build_configured_system("ios")

    def test_unknown_operation_rejected(self):
        bench = MicroBenchmark(iterations=1)
        with pytest.raises(ValueError):
            bench.measure("frobnicate", "android")

    def test_render_text_grid(self):
        bench = MicroBenchmark(iterations=5)
        result = bench.run_all()
        text = result.render_text()
        for operation in MICRO_OPERATIONS:
            assert operation in text


class TestAnTuTu:
    def test_scores_positive(self):
        result = AnTuTuBenchmark(rounds=3, inner=200).run("android")
        assert result.total > 0
        assert all(score > 0 for score in result.scores.values())

    def test_compare_has_both(self):
        results = AnTuTuBenchmark(rounds=3, inner=200).compare()
        assert set(results) == {"android", "eandroid"}
        # Similar performance within a generous noise band at tiny sizes.
        ratio = results["eandroid"].total / results["android"].total
        assert 0.3 < ratio < 3.0

    def test_unknown_configuration_rejected(self):
        with pytest.raises(ValueError):
            AnTuTuBenchmark(rounds=1, inner=10).run("webos")


class TestProfileRobustness:
    """The Fig. 3 shape must hold on a different device profile."""

    def test_fig3_ordering_on_tablet(self):
        from repro.power import TABLET

        drains = {d.name: d for d in run_fig3_drains(profile=TABLET)}
        hours = {name: d.hours_to_dead for name, d in drains.items()}
        assert hours["brightness_full"] < hours["bind_service"] < hours["brightness_low"]
        assert hours["brightness_10"] < hours["brightness_low"]
        assert hours["interrupt_app"] < hours["brightness_low"]

    def test_tablet_battery_bigger_but_screen_hungrier(self):
        from repro.power import NEXUS4, TABLET

        assert TABLET.battery_capacity_j > NEXUS4.battery_capacity_j
        assert TABLET.screen.power_mw(255) > NEXUS4.screen.power_mw(255)


class TestMemoryOverhead:
    """§VI-B memory aspect: E-Android's state is event-bounded."""

    def test_reports_for_both_configurations(self):
        from repro.workloads import measure_memory_overhead

        reports = measure_memory_overhead()
        assert set(reports) == {"android", "eandroid"}
        assert reports["android"].heap_growth_kib > 0
        assert reports["eandroid"].journal_entries > 0
        assert "heap growth" in reports["eandroid"].render_text()

    def test_overhead_bounded(self):
        from repro.workloads import measure_memory_overhead

        reports = measure_memory_overhead()
        # The monitor's state for this workload is tens of KiB, not MiB.
        extra = (
            reports["eandroid"].heap_growth_kib
            - reports["android"].heap_growth_kib
        )
        assert extra < 512.0

    def test_state_scales_with_events_not_time(self):
        """Idle virtual hours add no monitor state."""
        from repro.android import AndroidSystem
        from repro.apps import build_victim_app
        from repro.core import attach_eandroid

        system = AndroidSystem()
        system.install(build_victim_app())
        system.boot()
        ea = attach_eandroid(system)
        baseline_journal = len(ea.monitor.log)
        system.run_for(24 * 3600.0)  # a silent day
        assert len(ea.monitor.log) <= baseline_journal + 2  # timeout events only
        assert ea.accounting.attack_log() == []

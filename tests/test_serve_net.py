"""Concurrency suite for the TCP serving front-end (`repro.serve.net`).

The contracts under test (see ``docs/SERVING.md``, "Network serving"):

* every complete request line produces exactly one response (one per
  matched session for the wildcard), malformed/oversized lines degrade
  to typed ``error`` responses, and nothing is ever silently dropped;
* the transport accounting closes: ``received == answered + errors +
  shed`` over admitted queries, and every response the server owes is
  written;
* one misbehaving connection — a mid-line disconnect, a slowloris
  writer — never wedges the others;
* deadlines surface as typed errors naming the query, never hangs;
* graceful shutdown flushes in-flight responses before closing;
* payloads served over TCP are byte-identical to the in-process path.

No pytest-asyncio in the environment: every test drives its own event
loop via ``asyncio.run``.
"""

import asyncio
import json

import pytest

from repro.faults import FaultPlan, FaultSpec, activate
from repro.faults.retry import RetryPolicy
from repro.faults.soak import canonical_report_bytes
from repro.offline import capture_trace
from repro.reports import ReportRequest
from repro.serve import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    AsyncServiceClient,
    NetConfig,
    NetServer,
    ProfilingService,
    QueryRequest,
    ServiceConfig,
)
from repro.telemetry import capture
from repro.workloads import run_scene1


@pytest.fixture(scope="module")
def scene_trace():
    run = run_scene1()
    return capture_trace(run.system, run.eandroid)


@pytest.fixture
def service(scene_trace):
    svc = ProfilingService(ServiceConfig(telemetry=False))
    svc.ingest_trace("scene", scene_trace, "test")
    return svc


def _query(qid: int, backend: str = "eandroid", session: str = "scene"):
    return QueryRequest(
        id=qid, session=session, report=ReportRequest(backend=backend)
    )


def _latency_plan(delay_ms: float, max_injections: int = 1) -> FaultPlan:
    return FaultPlan(
        specs=(
            FaultSpec(
                site="net.latency",
                kind="latency",
                probability=1.0,
                max_injections=max_injections,
                delay_ms=delay_ms,
            ),
        )
    )


def run_net(service, config, scenario):
    """Start a NetServer, run ``scenario(server, host, port)``, shut down."""

    async def main():
        server = NetServer(service, config)
        await server.start()
        try:
            host, port = server.address
            result = await scenario(server, host, port)
        finally:
            await server.shutdown()
        return server, result

    return asyncio.run(main())


async def _raw_roundtrip(host, port, lines, read_all=True):
    """Write raw bytes lines, half-close, read response lines to EOF."""
    reader, writer = await asyncio.open_connection(host, port)
    for line in lines:
        writer.write(line)
    await writer.drain()
    writer.write_eof()
    responses = []
    while read_all:
        line = await asyncio.wait_for(reader.readline(), timeout=10.0)
        if not line:
            break
        responses.append(json.loads(line))
    writer.close()
    return responses


# ----------------------------------------------------------------------
# satellite contract: N concurrent clients, exactly-once responses
# ----------------------------------------------------------------------
class TestConcurrentClients:
    CLIENTS = 8
    QUERIES = 12

    def test_every_query_answered_exactly_once(self, service):
        backends = ("energy", "eandroid", "collateral")

        async def scenario(server, host, port):
            async def drive(client_index):
                queries = [
                    _query(qid, backends[qid % len(backends)])
                    for qid in range(1, self.QUERIES + 1)
                ]
                async with AsyncServiceClient(host, port) as client:
                    return await client.submit_all(queries)

            return await asyncio.gather(
                *(drive(i) for i in range(self.CLIENTS))
            )

        server, results = run_net(service, NetConfig(), scenario)
        assert len(results) == self.CLIENTS
        for responses in results:
            # exactly one response per query, ids echoed in order
            assert [r.id for r in responses] == list(
                range(1, self.QUERIES + 1)
            )
            assert all(r.status == STATUS_OK for r in responses)
        stats = server.stats
        assert stats.received == self.CLIENTS * self.QUERIES
        assert stats.received == stats.answered + stats.errors + stats.shed
        assert stats.responses_written == stats.answered + stats.errors + stats.shed
        assert stats.connections_opened == stats.connections_closed == self.CLIENTS
        # The service-level invariant holds through the transport too.
        assert (
            service.stats.received
            == service.stats.answered + service.stats.errors + service.stats.shed
        )

    def test_tcp_payloads_byte_identical_to_in_process(self, service):
        queries = [
            _query(qid, backend)
            for qid, backend in enumerate(
                ("energy", "batterystats", "powertutor", "eandroid", "collateral"),
                start=1,
            )
        ]
        expected = {
            q.id: canonical_report_bytes(service.submit(q).report) for q in queries
        }

        async def scenario(server, host, port):
            async with AsyncServiceClient(host, port) as client:
                return await client.submit_all(queries)

        _, responses = run_net(service, NetConfig(), scenario)
        for response in responses:
            assert response.status == STATUS_OK
            assert canonical_report_bytes(response.report) == expected[response.id]


# ----------------------------------------------------------------------
# wire behaviour: wildcard, malformed, oversized
# ----------------------------------------------------------------------
class TestWireBehaviour:
    def test_wildcard_expands_server_side_preserving_id(self, service, scene_trace):
        service.ingest_trace("second", scene_trace, "test")

        async def scenario(server, host, port):
            return await _raw_roundtrip(
                host, port, [b'{"id": 7, "session": "*", "backend": "energy"}\n']
            )

        _, responses = run_net(service, NetConfig(), scenario)
        assert len(responses) == 2  # one per ingested session
        assert {r["id"] for r in responses} == {7}
        assert {r["session"] for r in responses} == {"scene", "second"}
        assert all(r["status"] == STATUS_OK for r in responses)

    def test_wildcard_with_no_sessions_is_a_typed_error(self):
        empty = ProfilingService(ServiceConfig(telemetry=False))

        async def scenario(server, host, port):
            return await _raw_roundtrip(
                host, port, [b'{"id": 3, "session": "*", "backend": "energy"}\n']
            )

        _, responses = run_net(empty, NetConfig(), scenario)
        (response,) = responses
        assert response["id"] == 3
        assert response["status"] == STATUS_ERROR
        assert "no sessions" in response["error"]

    def test_malformed_lines_degrade_to_typed_errors(self, service):
        lines = [
            b"this is not json\n",
            b"[1, 2, 3]\n",
            b'{"id": 4, "session": "scene", "backend": "bogus"}\n',
            b'{"id": 5, "session": "scene", "backend": "energy"}\n',
        ]

        async def scenario(server, host, port):
            return await _raw_roundtrip(host, port, lines)

        server, responses = run_net(service, NetConfig(), scenario)
        assert len(responses) == len(lines)  # nothing silently dropped
        by_id = {r["id"]: r for r in responses}
        assert by_id[1]["status"] == STATUS_ERROR  # line seq as fallback id
        assert "not valid JSON" in by_id[1]["error"]
        assert by_id[2]["status"] == STATUS_ERROR
        assert "JSON object" in by_id[2]["error"]
        assert by_id[4]["status"] == STATUS_ERROR
        assert "bogus" in by_id[4]["error"]
        # The connection survived all three: the valid query answered.
        assert by_id[5]["status"] == STATUS_OK
        assert server.stats.parse_errors == 3

    def test_oversized_line_is_refused_and_connection_survives(self, service):
        config = NetConfig(max_line_bytes=1024)
        lines = [
            b'{"pad": "' + b"x" * 4096 + b'"}\n',
            b'{"id": 2, "session": "scene", "backend": "energy"}\n',
        ]

        async def scenario(server, host, port):
            return await _raw_roundtrip(host, port, lines)

        server, responses = run_net(service, config, scenario)
        assert len(responses) == 2
        assert responses[0]["status"] == STATUS_ERROR
        assert "maximum line size" in responses[0]["error"]
        assert responses[1]["status"] == STATUS_OK
        assert server.stats.oversized == 1

    def test_aggregate_requests_are_served_over_tcp(self, service):
        async def scenario(server, host, port):
            return await _raw_roundtrip(
                host, port, [b'{"id": 9, "op": "sum", "backend": "energy"}\n']
            )

        _, responses = run_net(service, NetConfig(), scenario)
        (response,) = responses
        assert response["id"] == 9
        assert response["status"] == STATUS_OK
        assert "aggregate" in response


# ----------------------------------------------------------------------
# isolation: one bad client never wedges the others
# ----------------------------------------------------------------------
class TestConnectionIsolation:
    def test_midline_disconnect_never_wedges_others(self, service):
        async def scenario(server, host, port):
            # Client A dies mid-line (no newline, hard abort).
            reader_a, writer_a = await asyncio.open_connection(host, port)
            writer_a.write(b'{"id": 1, "session": "scene", "ba')
            await writer_a.drain()
            writer_a.transport.abort()
            # Client B is unaffected.
            async with AsyncServiceClient(host, port) as client:
                payload = await asyncio.wait_for(
                    client.query("scene", "eandroid"), timeout=10.0
                )
            return payload

        server, payload = run_net(service, NetConfig(), scenario)
        assert payload["backend"] == "eandroid"
        # The half line died with its connection: no query, no response.
        assert server.stats.received == 1
        assert server.stats.connections_closed == 2

    def test_slowloris_never_wedges_others(self, service):
        line = b'{"id": 1, "session": "scene", "backend": "energy"}\n'

        async def scenario(server, host, port):
            async def slow_client():
                reader, writer = await asyncio.open_connection(host, port)
                for i in range(len(line)):
                    writer.write(line[i : i + 1])
                    await writer.drain()
                    await asyncio.sleep(0.004)
                response = json.loads(
                    await asyncio.wait_for(reader.readline(), timeout=10.0)
                )
                writer.close()
                return response

            async def fast_client():
                async with AsyncServiceClient(host, port) as client:
                    queries = [_query(qid) for qid in range(1, 21)]
                    return await client.submit_all(queries)

            return await asyncio.gather(slow_client(), fast_client())

        _, (slow_response, fast_responses) = run_net(
            service, NetConfig(), scenario
        )
        # The fast client's 20 queries all completed while the slowloris
        # dribbled — and the slow client still got its answer.
        assert all(r.status == STATUS_OK for r in fast_responses)
        assert slow_response["status"] == STATUS_OK

    def test_max_connections_refuses_loudly(self, service):
        config = NetConfig(max_connections=1)

        async def scenario(server, host, port):
            async with AsyncServiceClient(host, port) as client:
                await client.query("scene", "energy")  # A is admitted
                reader_b, writer_b = await asyncio.open_connection(host, port)
                refusal = json.loads(
                    await asyncio.wait_for(reader_b.readline(), timeout=10.0)
                )
                eof = await asyncio.wait_for(reader_b.read(), timeout=10.0)
                writer_b.close()
            return refusal, eof

        server, (refusal, eof) = run_net(service, config, scenario)
        assert refusal["status"] == STATUS_ERROR
        assert "connection limit" in refusal["error"]
        assert eof == b""  # the refused connection is closed, not hung
        assert server.stats.connections_refused == 1


# ----------------------------------------------------------------------
# deadlines and shedding
# ----------------------------------------------------------------------
class TestDeadlinesAndShedding:
    def test_deadline_returns_typed_error_naming_the_query(self, service):
        config = NetConfig(deadline_s=0.2, pool_workers=1)

        async def scenario(server, host, port):
            async with AsyncServiceClient(host, port) as client:
                return await client.submit(_query(5))

        with activate(_latency_plan(1500.0), seed=0):
            server, response = run_net(service, config, scenario)
        assert response.status == STATUS_ERROR
        assert "deadline exceeded" in response.error
        assert "query 5" in response.error
        assert "'scene'" in response.error
        assert server.stats.deadline_exceeded == 1
        assert server.stats.received == (
            server.stats.answered + server.stats.errors + server.stats.shed
        )

    def test_shed_resubmit_recovers_through_the_retry_policy(self, service):
        config = NetConfig(max_pending=1, pool_workers=1)
        slow_line = b'{"id": 1, "session": "scene", "backend": "energy"}\n'
        policy = RetryPolicy(base_delay_s=0.4, multiplier=1.0, max_delay_s=1.0)

        async def scenario(server, host, port):
            # Occupy the single admission slot with a latency-injected
            # query, then submit through the retrying client: the first
            # attempt is shed, the resubmit (after ~0.4s) is answered.
            _, slow_writer = await asyncio.open_connection(host, port)
            slow_writer.write(slow_line)
            await slow_writer.drain()
            await asyncio.sleep(0.05)  # let the slow query be admitted
            client = AsyncServiceClient(host, port, policy=policy)
            await client.connect()
            try:
                response = await client.submit(_query(2, backend="eandroid"))
            finally:
                await client.close()
                slow_writer.close()
            return response

        with activate(_latency_plan(200.0), seed=0):
            server, response = run_net(service, config, scenario)
        assert response.status == STATUS_OK
        assert server.stats.shed >= 1

    def test_still_shed_after_bounded_resubmits_is_typed(self, service):
        config = NetConfig(max_pending=1, pool_workers=1)
        slow_line = b'{"id": 1, "session": "scene", "backend": "energy"}\n'

        async def scenario(server, host, port):
            _, slow_writer = await asyncio.open_connection(host, port)
            slow_writer.write(slow_line)
            await slow_writer.drain()
            await asyncio.sleep(0.05)
            # Default policy backs off ~35ms total: the slot is still
            # occupied (2s of injected latency) when resubmits run out.
            client = AsyncServiceClient(host, port, max_resubmits=2)
            await client.connect()
            try:
                response = await client.submit(_query(2, backend="eandroid"))
            finally:
                await client.close()
                slow_writer.close()
            return response

        with activate(_latency_plan(2000.0), seed=0):
            server, response = run_net(service, config, scenario)
        assert response.status == STATUS_SHED
        assert "still shed after 2 resubmit(s)" in response.error

    def test_async_client_refuses_the_wildcard(self, service):
        async def scenario(server, host, port):
            async with AsyncServiceClient(host, port) as client:
                with pytest.raises(ValueError, match="wildcard"):
                    await client.submit(_query(1, session="*"))
            return True

        run_net(service, NetConfig(), scenario)


# ----------------------------------------------------------------------
# graceful shutdown
# ----------------------------------------------------------------------
class TestGracefulShutdown:
    def test_shutdown_flushes_in_flight_responses(self, service):
        async def scenario():
            server = NetServer(service, NetConfig(pool_workers=1))
            await server.start()
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            with activate(_latency_plan(300.0), seed=0):
                writer.write(
                    b'{"id": 11, "session": "scene", "backend": "energy"}\n'
                )
                await writer.drain()
                await asyncio.sleep(0.1)  # the query is now in flight
                shutdown = asyncio.ensure_future(server.shutdown())
                line = await asyncio.wait_for(reader.readline(), timeout=10.0)
                tail = await asyncio.wait_for(reader.read(), timeout=10.0)
                await shutdown
            writer.close()
            return server, json.loads(line), tail

        server, response, tail = asyncio.run(scenario())
        # The in-flight query's answer was flushed before the close.
        assert response["id"] == 11
        assert response["status"] == STATUS_OK
        assert tail == b""
        assert server.stats.connections_closed == 1
        assert not server._connections

    def test_connections_after_shutdown_are_refused(self, service):
        async def scenario():
            server = NetServer(service, NetConfig())
            await server.start()
            host, port = server.address
            await server.shutdown()
            with pytest.raises((ConnectionError, OSError)):
                await asyncio.open_connection(host, port)
            return True

        assert asyncio.run(scenario())


# ----------------------------------------------------------------------
# telemetry
# ----------------------------------------------------------------------
class TestNetTelemetry:
    def test_connection_and_deadline_events_are_published(self, service):
        config = NetConfig(deadline_s=0.2, pool_workers=1)

        async def scenario(server, host, port):
            async with AsyncServiceClient(host, port) as client:
                return await client.submit(_query(5))

        with capture() as recorder:
            with activate(_latency_plan(1500.0), seed=0):
                run_net(service, config, scenario)
        names = [type(event).__name__ for event in recorder.events]
        assert "ConnectionOpenedEvent" in names
        assert "ConnectionClosedEvent" in names
        assert "QueryDeadlineExceededEvent" in names
        deadline_event = next(
            e
            for e in recorder.events
            if type(e).__name__ == "QueryDeadlineExceededEvent"
        )
        assert deadline_event.session == "scene"
        assert deadline_event.deadline_s == 0.2

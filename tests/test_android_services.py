"""Tests for the service lifecycle — including attack #3's liveness rule."""

import pytest

from repro.android import BadStateError, ServiceState, explicit

from helpers import booted_system, make_app


@pytest.fixture
def system():
    return booted_system(make_app("com.alpha"), make_app("com.victim"))


def svc_intent(package="com.victim"):
    return explicit(package, "PlainService")


class TestStartStop:
    def test_start_creates_and_flags(self, system):
        uid = system.uid_of("com.alpha")
        record = system.am.start_service(uid, svc_intent())
        assert record.started
        assert record.state == ServiceState.RUNNING
        assert record.instance.events == ["create", "start_command"]

    def test_start_twice_single_instance(self, system):
        uid = system.uid_of("com.alpha")
        first = system.am.start_service(uid, svc_intent())
        second = system.am.start_service(uid, svc_intent())
        assert first is second
        assert second.instance.events.count("create") == 1
        assert second.instance.events.count("start_command") == 2

    def test_stop_destroys_unbound(self, system):
        uid = system.uid_of("com.alpha")
        record = system.am.start_service(uid, svc_intent())
        assert system.am.stop_service(uid, svc_intent()) is True
        assert record.state == ServiceState.DESTROYED
        assert record.instance.events[-1] == "destroy"
        assert system.am.service_record("com.victim", "PlainService") is None

    def test_stop_unstarted_returns_false(self, system):
        uid = system.uid_of("com.alpha")
        assert system.am.stop_service(uid, svc_intent()) is False

    def test_stop_self(self, system):
        uid = system.uid_of("com.victim")
        record = system.am.start_service(uid, svc_intent())
        record.instance.stop_self()
        assert record.state == ServiceState.DESTROYED

    def test_stop_self_after_destroy_rejected(self, system):
        uid = system.uid_of("com.victim")
        record = system.am.start_service(uid, svc_intent())
        record.instance.stop_self()
        with pytest.raises(BadStateError):
            system.am.stop_self(record)


class TestBindUnbind:
    def test_bind_creates_service(self, system):
        uid = system.uid_of("com.alpha")
        connection = system.am.bind_service(uid, svc_intent())
        record = connection.record
        assert record.state == ServiceState.RUNNING
        assert not record.started
        assert record.bound_by(uid)
        assert record.instance.events == ["create", "bind"]

    def test_unbind_destroys_unstarted(self, system):
        uid = system.uid_of("com.alpha")
        connection = system.am.bind_service(uid, svc_intent())
        system.am.unbind_service(connection)
        assert connection.record.state == ServiceState.DESTROYED
        assert connection.record.instance.events[-2:] == ["unbind", "destroy"]

    def test_double_unbind_rejected(self, system):
        uid = system.uid_of("com.alpha")
        connection = system.am.bind_service(uid, svc_intent())
        system.am.unbind_service(connection)
        with pytest.raises(BadStateError):
            system.am.unbind_service(connection)

    def test_attack3_liveness_rule(self, system):
        """stopService() does NOT kill a service while a binding remains."""
        victim_uid = system.uid_of("com.victim")
        malware_uid = system.uid_of("com.alpha")
        record = system.am.start_service(victim_uid, svc_intent())
        connection = system.am.bind_service(malware_uid, svc_intent())
        # Victim tries to stop its own service — malware's bind keeps it.
        system.am.stop_service(victim_uid, svc_intent())
        assert record.state == ServiceState.RUNNING
        assert not record.started
        # Only after the malware unbinds does the service die.
        system.am.unbind_service(connection)
        assert record.state == ServiceState.DESTROYED

    def test_multiple_bindings_all_must_unbind(self, system):
        uid_a = system.uid_of("com.alpha")
        uid_v = system.uid_of("com.victim")
        conn_a = system.am.bind_service(uid_a, svc_intent())
        conn_v = system.am.bind_service(uid_v, svc_intent())
        record = conn_a.record
        system.am.unbind_service(conn_a)
        assert record.state == ServiceState.RUNNING
        system.am.unbind_service(conn_v)
        assert record.state == ServiceState.DESTROYED

    def test_on_unbind_fires_only_on_last(self, system):
        uid_a = system.uid_of("com.alpha")
        uid_v = system.uid_of("com.victim")
        conn_a = system.am.bind_service(uid_a, svc_intent())
        conn_v = system.am.bind_service(uid_v, svc_intent())
        system.am.unbind_service(conn_a)
        assert "unbind" not in conn_a.record.instance.events
        system.am.unbind_service(conn_v)
        assert "unbind" in conn_v.record.instance.events

    def test_client_death_unbinds(self, system):
        malware_uid = system.uid_of("com.alpha")
        system.launch_app("com.alpha")  # give malware a process
        connection = system.am.bind_service(malware_uid, svc_intent())
        record = connection.record
        system.am.force_stop("com.alpha")
        assert not connection.bound
        assert record.state == ServiceState.DESTROYED

    def test_running_services_query(self, system):
        uid = system.uid_of("com.alpha")
        system.am.start_service(uid, svc_intent())
        assert len(system.am.running_services()) == 1
        assert len(system.am.running_services(system.uid_of("com.victim"))) == 1
        assert system.am.running_services(uid) == []


class TestForceStop:
    def test_force_stop_kills_everything(self, system):
        system.launch_app("com.victim")
        uid = system.uid_of("com.victim")
        system.am.start_service(uid, svc_intent())
        system.am.force_stop("com.victim")
        app = system.package_manager.app_for_package("com.victim")
        assert app.process is None
        assert system.am.running_services(uid) == []
        assert system.am.supervisor.records_of_uid(uid) == []

    def test_force_stop_foreground_promotes_next(self, system):
        system.launch_app("com.alpha")
        system.launch_app("com.victim")
        system.am.force_stop("com.victim")
        assert system.foreground_package() == "com.alpha"

    def test_force_stop_drops_incoming_bindings(self, system):
        malware_uid = system.uid_of("com.alpha")
        connection = system.am.bind_service(malware_uid, svc_intent())
        system.am.force_stop("com.victim")
        assert not connection.bound

"""The legacy FrameworkObserver compatibility shim over the event bus.

Regression coverage for the old ``ObserverRegistry.notify`` fragility:
an observer that raised used to abort fan-out mid-delivery, silently
starving every observer registered after it.
"""

import warnings

import pytest

from repro.android import AndroidSystem
from repro.android.observers import FrameworkObserver, ObserverRegistry
from repro.telemetry import TelemetryBus, TelemetrySubscriberWarning, WakelockAcquireEvent


class _Recorder(FrameworkObserver):
    def __init__(self):
        self.calls = []

    def on_wakelock_acquire(self, time, uid, lock_type, tag):
        self.calls.append(("acquire", time, uid, lock_type, tag))

    def on_screen_state(self, time, is_on):
        self.calls.append(("screen", time, is_on))


class _Grenade(FrameworkObserver):
    def on_wakelock_acquire(self, time, uid, lock_type, tag):
        raise RuntimeError("observer exploded")


class TestNotifyIsolation:
    def test_raising_observer_between_two_recorders(self):
        """The offender is sandwiched; both neighbours must still hear."""
        registry = ObserverRegistry()
        before, after = _Recorder(), _Recorder()
        registry.register(before)
        registry.register(_Grenade())
        registry.register(after)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            registry.notify("on_wakelock_acquire", 1.0, 7, "FULL_WAKE_LOCK", "t")
        assert before.calls == [("acquire", 1.0, 7, "FULL_WAKE_LOCK", "t")]
        assert after.calls == [("acquire", 1.0, 7, "FULL_WAKE_LOCK", "t")]
        ours = [w for w in caught if issubclass(w.category, TelemetrySubscriberWarning)]
        assert len(ours) == 1
        assert "_Grenade.on_wakelock_acquire" in str(ours[0].message)

    def test_bus_attached_registry_records_error_on_bus(self):
        bus = TelemetryBus()
        registry = ObserverRegistry(bus)
        survivor = _Recorder()
        registry.register(_Grenade())
        registry.register(survivor)
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            bus.publish(
                WakelockAcquireEvent(time=2.0, uid=9, lock_type="FULL_WAKE_LOCK", tag="g")
            )
        assert survivor.calls == [("acquire", 2.0, 9, "FULL_WAKE_LOCK", "g")]
        assert len(bus.errors) == 1
        assert "_Grenade" in bus.errors[0].subscriber


class TestBridge:
    def test_registry_bridges_typed_events_to_legacy_hooks(self):
        bus = TelemetryBus()
        registry = ObserverRegistry(bus)
        recorder = _Recorder()
        registry.register(recorder)
        bus.publish(
            WakelockAcquireEvent(time=3.0, uid=5, lock_type="PARTIAL_WAKE_LOCK", tag="p")
        )
        assert recorder.calls == [("acquire", 3.0, 5, "PARTIAL_WAKE_LOCK", "p")]

    def test_bridge_unsubscribes_with_last_observer(self):
        bus = TelemetryBus()
        registry = ObserverRegistry(bus)
        recorder = _Recorder()
        registry.register(recorder)
        assert registry.unregister(recorder) is True
        bus.publish(
            WakelockAcquireEvent(time=4.0, uid=5, lock_type="PARTIAL_WAKE_LOCK", tag="p")
        )
        assert recorder.calls == []
        assert bus.subscriber_count() == 0

    def test_unregister_unknown_observer_returns_false(self):
        registry = ObserverRegistry()
        assert registry.unregister(_Recorder()) is False

    def test_system_register_observer_still_works_end_to_end(self):
        system = AndroidSystem()
        recorder = _Recorder()
        system.register_observer(recorder)
        system.power_manager.acquire(
            system.package_manager.system_uid, "FULL_WAKE_LOCK", "shim"
        )
        assert any(call[0] == "acquire" for call in recorder.calls)

"""Tests for the package manager: uids, permissions, resolution."""

import pytest

from repro.android import (
    ACTION_VIDEO_CAPTURE,
    CAMERA,
    ComponentKind,
    ComponentName,
    FIRST_APPLICATION_UID,
    NotExportedError,
    ComponentNotFoundError,
    PackageNotFoundError,
    WAKE_LOCK,
    AndroidManifest,
    App,
    AndroidSystem,
    ComponentDecl,
    IntentFilterDecl,
    implicit,
)

from helpers import make_app


@pytest.fixture
def system():
    return AndroidSystem()


class TestInstall:
    def test_app_uids_start_at_10000(self, system):
        app = system.install(make_app("com.a"))
        assert app.uid >= FIRST_APPLICATION_UID

    def test_system_apps_have_low_uids(self, system):
        assert system.launcher.uid < FIRST_APPLICATION_UID

    def test_unique_uids(self, system):
        a = system.install(make_app("com.a"))
        b = system.install(make_app("com.b"))
        assert a.uid != b.uid

    def test_duplicate_package_rejected(self, system):
        system.install(make_app("com.a"))
        with pytest.raises(ValueError):
            system.install(make_app("com.a"))

    def test_uninstall(self, system):
        app = system.install(make_app("com.a"))
        system.package_manager.uninstall("com.a")
        assert not system.package_manager.is_installed("com.a")
        with pytest.raises(PackageNotFoundError):
            system.package_manager.app_for_uid(app.uid)

    def test_lookup_by_uid_and_package(self, system):
        app = system.install(make_app("com.a"))
        pm = system.package_manager
        assert pm.app_for_uid(app.uid) is app
        assert pm.app_for_package("com.a") is app

    def test_label(self, system):
        app = system.install(make_app("com.example.message"))
        assert system.package_manager.label_for_uid(app.uid) == "Message"
        assert system.package_manager.label_for_uid(424242) == "uid:424242"


class TestPermissions:
    def test_manifest_permission_honoured(self, system):
        app = system.install(make_app("com.a", permissions=(WAKE_LOCK,)))
        pm = system.package_manager
        assert pm.check_permission(app.uid, WAKE_LOCK)
        assert not pm.check_permission(app.uid, CAMERA)

    def test_system_uid_holds_everything(self, system):
        pm = system.package_manager
        assert pm.check_permission(pm.system_uid, CAMERA)

    def test_is_system_uid(self, system):
        pm = system.package_manager
        app = system.install(make_app("com.a"))
        assert pm.is_system_uid(system.launcher.uid)
        assert not pm.is_system_uid(app.uid)


class TestResolution:
    def test_explicit_resolution(self, system):
        app = system.install(make_app("com.a"))
        resolved, decl = system.package_manager.resolve_component(
            app.uid, ComponentName("com.a", "PlainActivity"), ComponentKind.ACTIVITY
        )
        assert resolved is app
        assert decl.name == "PlainActivity"

    def test_non_exported_denied_cross_app(self, system):
        system.install(make_app("com.a"))
        other = system.install(make_app("com.b"))
        with pytest.raises(NotExportedError):
            system.package_manager.resolve_component(
                other.uid,
                ComponentName("com.a", "PrivateActivity"),
                ComponentKind.ACTIVITY,
            )

    def test_non_exported_allowed_same_app(self, system):
        app = system.install(make_app("com.a"))
        resolved, _ = system.package_manager.resolve_component(
            app.uid, ComponentName("com.a", "PrivateActivity"), ComponentKind.ACTIVITY
        )
        assert resolved is app

    def test_non_exported_allowed_for_system(self, system):
        system.install(make_app("com.a"))
        resolved, _ = system.package_manager.resolve_component(
            system.package_manager.system_uid,
            ComponentName("com.a", "PrivateActivity"),
            ComponentKind.ACTIVITY,
        )
        assert resolved.package == "com.a"

    def test_wrong_kind_rejected(self, system):
        app = system.install(make_app("com.a"))
        with pytest.raises(ComponentNotFoundError):
            system.package_manager.resolve_component(
                app.uid, ComponentName("com.a", "PlainService"), ComponentKind.ACTIVITY
            )

    def test_unknown_package(self, system):
        with pytest.raises(PackageNotFoundError):
            system.package_manager.resolve_component(
                1000, ComponentName("com.none", "X"), ComponentKind.ACTIVITY
            )

    def test_implicit_query_finds_exported_handlers(self, system):
        camera_manifest = AndroidManifest(
            package="com.cam",
            components=(
                ComponentDecl(
                    name="Rec",
                    kind=ComponentKind.ACTIVITY,
                    exported=True,
                    intent_filters=(
                        IntentFilterDecl(actions=frozenset({ACTION_VIDEO_CAPTURE})),
                    ),
                ),
            ),
        )
        from helpers import PlainActivity

        system.install(App(camera_manifest, {"Rec": PlainActivity}))
        handlers = system.package_manager.query_intent_handlers(
            implicit(ACTION_VIDEO_CAPTURE), ComponentKind.ACTIVITY
        )
        assert len(handlers) == 1
        assert handlers[0][1].name == "Rec"

    def test_implicit_query_skips_non_exported(self, system):
        manifest = AndroidManifest(
            package="com.cam",
            components=(
                ComponentDecl(
                    name="Rec",
                    kind=ComponentKind.ACTIVITY,
                    exported=False,
                    intent_filters=(
                        IntentFilterDecl(actions=frozenset({ACTION_VIDEO_CAPTURE})),
                    ),
                ),
            ),
        )
        from helpers import PlainActivity

        system.install(App(manifest, {"Rec": PlainActivity}))
        handlers = system.package_manager.query_intent_handlers(
            implicit(ACTION_VIDEO_CAPTURE), ComponentKind.ACTIVITY
        )
        assert handlers == []

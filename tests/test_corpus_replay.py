"""Replay the checked-in failure corpus as regression tests.

Every ``corpus/*.json`` document is a shrunk scenario script that once
tripped a conformance oracle on a real (since fixed) bug.  Replaying
them green pins the fixes; a reintroduced bug turns its entry red with
the recorded oracle name pointing at the invariant that broke.  See
``docs/TESTING.md`` for the triage workflow and ``corpus/README.md``
for what each entry caught.
"""

from pathlib import Path

import pytest

from repro.check import load_corpus_entry, run_scenario
from repro.check.scenario import Scenario

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"
ENTRIES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_populated():
    # The harness has caught real bugs; their entries must stay checked in.
    assert len(ENTRIES) >= 3


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_replays_green(path):
    document = load_corpus_entry(path)
    scenario = Scenario.from_dict(document["scenario"])
    assert len(scenario.ops) == document["shrunk_ops"]
    report = run_scenario(scenario, metamorphic=True)
    assert report.passed, (
        f"regression: {path.name} (oracles {document['oracles']}) "
        f"fails again:\n" + "\n".join(str(v) for v in report.violations)
    )


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_is_well_formed(path):
    document = load_corpus_entry(path)
    assert document["oracles"], "entry must name the oracle it caught"
    assert document["original_ops"] >= document["shrunk_ops"]
    assert document["violations"], "entry must record the original failure"

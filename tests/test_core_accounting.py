"""Tests for E-Android accounting: Algorithm 1, Figs. 6-8, invariants."""

import pytest

from repro.accounting import BatteryStats, PowerTutor
from repro.android import SCREEN_BRIGHTNESS, explicit
from repro.core import (
    AttackKind,
    SCREEN_TARGET,
    attach_eandroid,
    attach_eandroid_powertutor,
)

from helpers import booted_system, make_app


@pytest.fixture
def rig():
    system = booted_system(
        make_app("com.appa"), make_app("com.appb"), make_app("com.appc")
    )
    # The paper's experimental setup: "For all experiments, we set the
    # wakelock so that the screen will be forced on" (§III-B) — held by
    # the system so no attack link is attributed to it.
    from repro.android import SCREEN_BRIGHT_WAKE_LOCK

    system.power_manager.acquire(
        system.package_manager.system_uid, SCREEN_BRIGHT_WAKE_LOCK, "test-rig"
    )
    return system, attach_eandroid(system)


class TestWindowedEnergy:
    def test_only_window_energy_charged(self, rig):
        """§IV-B: energy outside the attack lifecycle is never charged."""
        system, ea = rig
        a = system.uid_of("com.appa")
        b = system.uid_of("com.appb")
        svc = explicit("com.appb", "PlainService")
        # B burns CPU for 100 s before any attack.
        system.hardware.cpu.set_utilization(b, 0.5)
        system.run_for(100.0)
        conn = system.am.bind_service(a, svc)
        system.run_for(50.0)
        system.am.unbind_service(conn)
        system.run_for(100.0)
        b_in_window = system.hardware.meter.energy_j(owner=b, start=100.0, end=150.0)
        charged = ea.accounting.collateral_breakdown(a)[b]
        assert charged == pytest.approx(b_in_window)
        b_total = system.hardware.meter.energy_j(owner=b)
        assert charged < b_total / 3

    def test_no_double_charge_multi_collateral(self, rig):
        """Fig. 6: bind + start + interrupt on the same victim charge
        the union of windows, not the sum."""
        system, ea = rig
        a = system.uid_of("com.appa")
        b = system.uid_of("com.appb")
        system.hardware.cpu.set_utilization(b, 0.5)
        svc = explicit("com.appb", "PlainService")
        conn = system.am.bind_service(a, svc)
        system.am.start_activity(a, explicit("com.appb", "PlainActivity"))
        system.am.start_service(a, svc)
        system.run_for(60.0)
        charged = ea.accounting.collateral_breakdown(a)[b]
        b_energy = system.hardware.meter.energy_j(owner=b, start=0.0, end=60.0)
        # Three overlapping links, exactly one window's worth of charge.
        assert charged == pytest.approx(b_energy)
        assert len(ea.accounting.live_attacks()) >= 3

    def test_connection_revoked_only_after_all_attacks_end(self, rig):
        system, ea = rig
        a = system.uid_of("com.appa")
        b = system.uid_of("com.appb")
        system.hardware.cpu.set_utilization(b, 0.5)
        svc = explicit("com.appb", "PlainService")
        conn = system.am.bind_service(a, svc)
        system.am.start_service(a, svc)
        system.run_for(10.0)
        system.am.stop_service(a, svc)  # start-link ends, bind remains
        system.run_for(10.0)
        element = ea.accounting.map_for(a).element(b)
        assert element.is_open
        system.am.unbind_service(conn)
        assert not element.is_open
        # One contiguous 20 s window.
        assert element.closed == [(0.0, 20.0)]

    def test_collateral_never_exceeds_target_ground_truth(self, rig):
        system, ea = rig
        a = system.uid_of("com.appa")
        b = system.uid_of("com.appb")
        system.hardware.cpu.set_utilization(b, 0.7)
        conn = system.am.bind_service(a, explicit("com.appb", "PlainService"))
        system.run_for(500.0)
        charged = ea.accounting.collateral_breakdown(a)[b]
        assert charged <= system.hardware.meter.energy_j(owner=b) + 1e-9


class TestHybridChain:
    """Fig. 7: A binds B's service; B starts C; C changes brightness."""

    def run_chain(self, system, ea):
        a = system.uid_of("com.appa")
        b = system.uid_of("com.appb")
        c = system.uid_of("com.appc")
        system.hardware.cpu.set_utilization(b, 0.2)
        system.hardware.cpu.set_utilization(c, 0.3)
        conn = system.am.bind_service(a, explicit("com.appb", "PlainService"))
        system.am.start_activity(b, explicit("com.appc", "PlainActivity"))
        system.settings.put(c, SCREEN_BRIGHTNESS, 255)
        return a, b, c, conn

    def test_chain_charges_root(self, rig):
        system, ea = rig
        a, b, c, conn = self.run_chain(system, ea)
        system.run_for(30.0)
        breakdown = ea.accounting.collateral_breakdown(a)
        assert set(breakdown) == {b, c, SCREEN_TARGET}
        assert breakdown[c] > 0
        assert breakdown[SCREEN_TARGET] > 0

    def test_middle_app_charged_for_its_own_chain(self, rig):
        system, ea = rig
        a, b, c, conn = self.run_chain(system, ea)
        system.run_for(30.0)
        breakdown_b = ea.accounting.collateral_breakdown(b)
        assert set(breakdown_b) == {c, SCREEN_TARGET}

    def test_user_brightness_ends_screen_element_everywhere(self, rig):
        """Fig. 7: 'User sets brightness -> Screen attack End'."""
        system, ea = rig
        a, b, c, conn = self.run_chain(system, ea)
        system.run_for(30.0)
        system.systemui.user_set_brightness(100)
        assert not ea.accounting.map_for(a).element(SCREEN_TARGET).is_open
        assert not ea.accounting.map_for(b).element(SCREEN_TARGET).is_open
        # Apps B and C are still charged to A — their links live on.
        assert ea.accounting.map_for(a).element(b).is_open
        assert ea.accounting.map_for(a).element(c).is_open

    def test_user_start_ends_chain_elements(self, rig):
        """Fig. 7: 'User starts B, C -> Collateral Attack End (B, C)'."""
        system, ea = rig
        a, b, c, conn = self.run_chain(system, ea)
        system.run_for(30.0)
        system.am.unbind_service(conn)
        system.launch_app("com.appc")
        map_a = ea.accounting.map_for(a)
        assert map_a.open_targets() == set()

    def test_service_backpropagation(self, rig):
        """Algorithm 1 lines 11-15: binding an app that already drives
        others adopts its existing victims."""
        system, ea = rig
        b = system.uid_of("com.appb")
        c = system.uid_of("com.appc")
        a = system.uid_of("com.appa")
        # B already binds C's service...
        system.am.bind_service(b, explicit("com.appc", "PlainService"))
        system.run_for(10.0)
        # ...then A binds B: A's map must contain both B and C.
        system.am.bind_service(a, explicit("com.appb", "PlainService"))
        assert ea.accounting.map_for(a).open_targets() == {b, c}
        # But C's charge to A starts at the moment of A's bind, not B's.
        element = ea.accounting.map_for(a).element(c)
        assert element.open_since == pytest.approx(10.0)


class TestInterface:
    def test_report_superimposes_collateral(self, rig):
        system, ea = rig
        a = system.uid_of("com.appa")
        b = system.uid_of("com.appb")
        system.hardware.cpu.set_utilization(b, 0.8)
        system.am.bind_service(a, explicit("com.appb", "PlainService"))
        system.run_for(60.0)
        report = ea.report()
        entry_a = report.entry_for_uid(a)
        entry_b = report.entry_for_uid(b)
        assert entry_a is not None and entry_b is not None
        assert entry_a.collateral_j  # breakdown present
        assert entry_a.energy_j == pytest.approx(entry_b.energy_j)
        assert entry_a.own_energy_j == pytest.approx(0.0)

    def test_collateral_breakdown_labels(self, rig):
        system, ea = rig
        a = system.uid_of("com.appa")
        system.settings.put(a, SCREEN_BRIGHTNESS, 255)
        system.power_manager.user_activity()  # screen on
        system.run_for(20.0)
        entry = ea.interface.detailed_inventory(a)
        assert "Screen" in entry.collateral_j

    def test_no_collateral_matches_baseline(self, rig):
        """Invariant 6: without collateral events, E-Android == baseline."""
        system, ea = rig
        b = system.uid_of("com.appb")
        system.launch_app("com.appb")
        system.hardware.cpu.set_utilization(b, 0.4)
        system.run_for(60.0)
        baseline = BatteryStats(system).report()
        revised = ea.report()
        for entry in baseline.entries:
            matching = revised.entry_for(entry.label)
            assert matching is not None
            assert matching.energy_j == pytest.approx(entry.energy_j)
            assert not matching.collateral_j

    def test_powertutor_variant(self, rig):
        system, _ = rig
        ea_pt = attach_eandroid_powertutor(system)
        a = system.uid_of("com.appa")
        b = system.uid_of("com.appb")
        system.hardware.cpu.set_utilization(b, 0.5)
        system.am.bind_service(a, explicit("com.appb", "PlainService"))
        system.run_for(30.0)
        report = ea_pt.report()
        assert "PowerTutor" in report.profiler
        assert report.entry_for_uid(a).collateral_j

    def test_render_text_contains_collateral_lines(self, rig):
        system, ea = rig
        a = system.uid_of("com.appa")
        b = system.uid_of("com.appb")
        system.hardware.cpu.set_utilization(b, 0.5)
        system.am.bind_service(a, explicit("com.appb", "PlainService"))
        system.run_for(30.0)
        text = ea.report().render_text()
        assert "(collateral)" in text
        assert "Appa" in text

    def test_detached_monitor_records_nothing(self, rig):
        system, ea = rig
        ea.detach()
        a = system.uid_of("com.appa")
        system.am.bind_service(a, explicit("com.appb", "PlainService"))
        system.run_for(30.0)
        assert ea.accounting.attack_log() == []


class TestComponentInventory:
    def test_component_split(self, rig):
        system, ea = rig
        a = system.uid_of("com.appa")
        system.hardware.cpu.set_utilization(a, 0.5)
        system.hardware.gps.start(a)
        system.run_for(20.0)
        inventory = ea.interface.component_inventory(a)
        assert set(inventory) == {"cpu", "gps"}
        assert inventory["gps"] > inventory["cpu"]

    def test_render_app_detail(self, rig):
        system, ea = rig
        a = system.uid_of("com.appa")
        b = system.uid_of("com.appb")
        system.hardware.cpu.set_utilization(a, 0.2)
        system.hardware.cpu.set_utilization(b, 0.4)
        system.am.bind_service(a, explicit("com.appb", "PlainService"))
        system.run_for(30.0)
        text = ea.interface.render_app_detail(a)
        assert "own energy by component" in text
        assert "collateral energy by source" in text
        assert "Appb" in text

    def test_render_detail_empty_app(self, rig):
        system, ea = rig
        a = system.uid_of("com.appa")
        text = ea.interface.render_app_detail(a)
        assert "none recorded" in text

"""Property-based fuzzing of the whole stack.

A hypothesis rule-based state machine drives random framework operations
(launches, IPC, wakelocks, brightness, kills, time) against a device
with E-Android attached.  The invariants are **not** defined here: the
machine is a thin adapter over :mod:`repro.check.oracles`, the shared
oracle library the fuzz campaign (``python -m repro check``) drives over
generated scenario scripts.  After every step it asserts the six
DESIGN.md §5 step oracles, and at teardown the end-of-run differential
reconciliation:

1. energy conservation (per-owner sums == device total == battery drain);
2. map/link consistency (open elements == live-link reachability);
3. element-window well-formedness (ordered, non-overlapping);
4. no over-charging (collateral per (host, target) <= target ground truth);
5. profiler conservation (PowerTutor redistributes, never invents);
6. tracker/framework agreement (screen-wakelock counts, foreground uid);
7. (end) differential reconciliation of BatteryStats / PowerTutor /
   E-Android against the meter and the raw charge windows.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.android import (
    ActivityNotFoundError,
    SCREEN_BRIGHTNESS,
    SCREEN_BRIGHTNESS_MODE,
    SCREEN_BRIGHT_WAKE_LOCK,
    PARTIAL_WAKE_LOCK,
    explicit,
)
from repro.check import check_end, check_step
from repro.core import attach_eandroid

from helpers import make_app

PACKAGES = ("com.fuzz.alpha", "com.fuzz.beta", "com.fuzz.gamma")

package_st = st.sampled_from(PACKAGES)
pair_st = st.tuples(package_st, package_st)


class EAndroidFuzz(RuleBasedStateMachine):
    """Random-operation driver asserting the shared conformance oracles."""

    @initialize()
    def build_device(self):
        from repro.android import AndroidSystem

        self.system = AndroidSystem()
        for package in PACKAGES:
            self.system.install(make_app(package))
        self.system.boot()
        self.ea = attach_eandroid(self.system)
        self.connections = []
        self.locks = []

    # -- operations -----------------------------------------------------
    @rule(package=package_st)
    def user_launches(self, package):
        self.system.launch_app(package)

    @rule(pair=pair_st)
    def app_starts_activity(self, pair):
        caller, target = pair
        self.system.am.start_activity(
            self.system.uid_of(caller), explicit(target, "PlainActivity")
        )

    @rule(pair=pair_st)
    def app_starts_service(self, pair):
        caller, target = pair
        self.system.am.start_service(
            self.system.uid_of(caller), explicit(target, "PlainService")
        )

    @rule(pair=pair_st)
    def app_stops_service(self, pair):
        caller, target = pair
        self.system.am.stop_service(
            self.system.uid_of(caller), explicit(target, "PlainService")
        )

    @rule(pair=pair_st)
    def app_binds_service(self, pair):
        caller, target = pair
        connection = self.system.am.bind_service(
            self.system.uid_of(caller), explicit(target, "PlainService")
        )
        self.connections.append(connection)

    @rule(index=st.integers(min_value=0, max_value=30))
    def app_unbinds_service(self, index):
        live = [c for c in self.connections if c.bound]
        if live:
            self.system.am.unbind_service(live[index % len(live)])

    @rule(package=package_st, screen=st.booleans())
    def app_acquires_wakelock(self, package, screen):
        lock_type = SCREEN_BRIGHT_WAKE_LOCK if screen else PARTIAL_WAKE_LOCK
        lock = self.system.power_manager.acquire(
            self.system.uid_of(package), lock_type, "fuzz"
        )
        self.locks.append(lock)

    @rule(index=st.integers(min_value=0, max_value=30))
    def app_releases_wakelock(self, index):
        held = [lock for lock in self.locks if lock.held]
        if held:
            held[index % len(held)].release()

    @rule(package=package_st, level=st.integers(min_value=0, max_value=255))
    def app_sets_brightness(self, package, level):
        self.system.settings.put(
            self.system.uid_of(package), SCREEN_BRIGHTNESS, level
        )

    @rule(package=package_st, mode=st.integers(min_value=0, max_value=1))
    def app_toggles_mode(self, package, mode):
        self.system.settings.put(
            self.system.uid_of(package), SCREEN_BRIGHTNESS_MODE, mode
        )

    @rule(level=st.integers(min_value=0, max_value=255))
    def user_sets_brightness(self, level):
        self.system.systemui.user_set_brightness(level)

    @rule()
    def user_presses_home(self):
        self.system.press_home()

    @rule()
    def user_presses_back(self):
        self.system.press_back()

    @rule(package=package_st)
    def force_stop(self, package):
        self.system.am.force_stop(package)
        self.connections = [c for c in self.connections if c.bound]
        self.locks = [lock for lock in self.locks if lock.held]

    @rule(seconds=st.floats(min_value=0.1, max_value=120.0))
    def time_passes(self, seconds):
        self.system.run_for(seconds)

    @rule(package=package_st, load=st.floats(min_value=0.0, max_value=1.0))
    def app_burns_cpu(self, package, load):
        self.system.hardware.cpu.set_utilization(
            self.system.uid_of(package), load
        )

    @rule(ring=st.floats(min_value=1.0, max_value=30.0))
    def incoming_call(self, ring):
        self.system.incoming_call(ring_seconds=ring)

    @rule()
    def user_taps_dialog(self):
        self.system.tap_dialog_ok()

    @rule(pair=pair_st)
    def app_moves_task_to_front(self, pair):
        caller, target = pair
        try:
            self.system.am.move_task_to_front(
                self.system.uid_of(caller), target
            )
        except ActivityNotFoundError:
            pass  # target never launched: legal no-op

    @rule(package=package_st, level=st.integers(min_value=0, max_value=255))
    def app_sets_window_brightness(self, package, level):
        self.system.display.set_window_brightness(
            self.system.uid_of(package), level
        )

    # -- invariants: the shared oracle library --------------------------
    @invariant()
    def step_oracles_hold(self):
        violations = check_step(self.system, self.ea)
        assert not violations, "\n".join(str(v) for v in violations)

    def teardown(self):
        violations = check_end(self.system, self.ea)
        assert not violations, "\n".join(str(v) for v in violations)


EAndroidFuzzTest = EAndroidFuzz.TestCase
EAndroidFuzzTest.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)

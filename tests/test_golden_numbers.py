"""Golden-number regression tests.

EXPERIMENTS.md publishes concrete measured values; these tests pin the
deterministic ones so an accidental power-model or scenario change can't
silently invalidate the document.  If a change here is *intentional*,
update EXPERIMENTS.md in the same commit.
"""

import pytest

from repro.apps import generate_corpus, run_census
from repro.workloads import run_fig3_drains, run_scene1, run_scene2


class TestScene1Golden:
    @pytest.fixture(scope="class")
    def run(self):
        return run_scene1()

    def test_camera_energy(self, run):
        assert run.android_report().energy_of("Camera") == pytest.approx(
            54.22, abs=0.5
        )

    def test_message_direct_energy(self, run):
        assert run.android_report().energy_of("Message") == pytest.approx(
            1.02, abs=0.2
        )

    def test_message_percent_tiny_camera_dominant(self, run):
        report = run.android_report()
        assert report.percent_of("Message") == pytest.approx(1.0, abs=0.5)
        assert report.percent_of("Camera") == pytest.approx(55.4, abs=2.0)


class TestScene2Golden:
    def test_contacts_total(self):
        run = run_scene2(baseline="powertutor")
        entry = run.eandroid_report().entry_for("Contacts")
        assert entry.energy_j == pytest.approx(58.85, abs=1.0)
        assert entry.collateral_j["Camera"] == pytest.approx(54.22, abs=0.5)


class TestFig3Golden:
    @pytest.fixture(scope="class")
    def hours(self):
        return {d.name: d.hours_to_dead for d in run_fig3_drains()}

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("brightness_low", 16.98),
            ("brightness_10", 16.20),
            ("brightness_full", 7.65),
            ("bind_service", 12.57),
            ("interrupt_app", 15.52),
        ],
    )
    def test_hours_to_dead(self, hours, name, expected):
        assert hours[name] == pytest.approx(expected, abs=0.15)


class TestFig2Golden:
    def test_default_seed_census(self):
        census = run_census(generate_corpus())
        assert census.overall.exported_pct == pytest.approx(71.4, abs=0.1)
        assert census.overall.wake_lock_pct == pytest.approx(80.2, abs=0.1)
        assert census.overall.write_settings_pct == pytest.approx(21.8, abs=0.1)

"""Unit and property tests for piecewise-constant power traces."""

import pytest
from hypothesis import given, strategies as st

from repro.power import PowerTrace


class TestPowerTrace:
    def test_empty_trace(self):
        trace = PowerTrace()
        assert trace.power_at(5.0) == 0.0
        assert trace.energy_j(0.0, 10.0) == 0.0
        assert trace.last_power == 0.0
        assert trace.last_time is None

    def test_single_segment_energy(self):
        trace = PowerTrace()
        trace.append(0.0, 1000.0)  # 1 W
        assert trace.energy_j(0.0, 10.0) == pytest.approx(10.0)

    def test_energy_before_first_breakpoint_is_zero(self):
        trace = PowerTrace()
        trace.append(5.0, 1000.0)
        assert trace.energy_j(0.0, 5.0) == 0.0
        assert trace.energy_j(0.0, 7.0) == pytest.approx(2.0)

    def test_multi_segment_energy(self):
        trace = PowerTrace()
        trace.append(0.0, 500.0)
        trace.append(10.0, 1500.0)
        trace.append(20.0, 0.0)
        # 0-10s at 0.5W, 10-20 at 1.5W, then nothing.
        assert trace.energy_j(0.0, 30.0) == pytest.approx(5.0 + 15.0)

    def test_partial_window(self):
        trace = PowerTrace()
        trace.append(0.0, 1000.0)
        trace.append(10.0, 2000.0)
        assert trace.energy_j(5.0, 15.0) == pytest.approx(5.0 + 10.0)

    def test_zero_width_window(self):
        trace = PowerTrace()
        trace.append(0.0, 1000.0)
        assert trace.energy_j(4.0, 4.0) == 0.0

    def test_reverse_window_rejected(self):
        trace = PowerTrace()
        trace.append(0.0, 100.0)
        with pytest.raises(ValueError):
            trace.energy_j(5.0, 1.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            PowerTrace().append(0.0, -1.0)

    def test_out_of_order_append_rejected(self):
        trace = PowerTrace()
        trace.append(5.0, 10.0)
        with pytest.raises(ValueError):
            trace.append(4.0, 10.0)

    def test_same_time_append_overwrites(self):
        trace = PowerTrace()
        trace.append(1.0, 10.0)
        trace.append(1.0, 30.0)
        assert trace.last_power == 30.0
        assert len(trace) == 1

    def test_redundant_append_compacted(self):
        trace = PowerTrace()
        trace.append(0.0, 10.0)
        trace.append(5.0, 10.0)
        assert len(trace) == 1

    def test_power_at(self):
        trace = PowerTrace()
        trace.append(1.0, 100.0)
        trace.append(3.0, 50.0)
        assert trace.power_at(0.5) == 0.0
        assert trace.power_at(1.0) == 100.0
        assert trace.power_at(2.9) == 100.0
        assert trace.power_at(3.0) == 50.0
        assert trace.power_at(99.0) == 50.0

    def test_final_power_extends_beyond_last_breakpoint(self):
        trace = PowerTrace()
        trace.append(0.0, 1000.0)
        assert trace.energy_j(100.0, 200.0) == pytest.approx(100.0)

    def test_breakpoints_copy(self):
        trace = PowerTrace()
        trace.append(0.0, 1.0)
        points = trace.breakpoints()
        points.append((9.9, 9.9))
        assert len(trace.breakpoints()) == 1


@st.composite
def trace_segments(draw):
    """Random ordered breakpoints with non-negative powers."""
    count = draw(st.integers(min_value=1, max_value=12))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
    )
    powers = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=5000.0, allow_nan=False),
            min_size=count,
            max_size=count,
        )
    )
    return list(zip(times, powers))


class TestPowerTraceProperties:
    @given(trace_segments(), st.floats(min_value=0.0, max_value=500.0),
           st.floats(min_value=0.0, max_value=500.0))
    def test_energy_additive_over_split_windows(self, segments, a, b):
        """E[s, m) + E[m, e) == E[s, e) for any split point."""
        trace = PowerTrace()
        for t, p in segments:
            trace.append(t, p)
        start, end = min(a, b), max(a, b)
        mid = (start + end) / 2.0
        whole = trace.energy_j(start, end)
        parts = trace.energy_j(start, mid) + trace.energy_j(mid, end)
        assert whole == pytest.approx(parts, rel=1e-9, abs=1e-9)

    @given(trace_segments(), st.floats(min_value=0.0, max_value=500.0),
           st.floats(min_value=0.0, max_value=500.0))
    def test_energy_nonnegative_and_bounded(self, segments, a, b):
        """Energy is non-negative and bounded by max power * window."""
        trace = PowerTrace()
        for t, p in segments:
            trace.append(t, p)
        start, end = min(a, b), max(a, b)
        energy = trace.energy_j(start, end)
        assert energy >= 0.0
        max_power = max(p for _, p in segments)
        assert energy <= max_power * (end - start) / 1000.0 + 1e-9

    @given(trace_segments())
    def test_energy_matches_manual_integration(self, segments):
        """Closed-form integral agrees with fine Riemann sampling."""
        trace = PowerTrace()
        for t, p in segments:
            trace.append(t, p)
        start, end = 0.0, 1000.0
        steps = 2000
        dt = (end - start) / steps
        riemann = sum(
            trace.power_at(start + (i + 0.5) * dt) * dt for i in range(steps)
        ) / 1000.0
        exact = trace.energy_j(start, end)
        # Each power discontinuity can be misplaced by at most one sample
        # width, so the sampling error is bounded by sum(|jump|) * dt.
        points = trace.breakpoints()
        powers = [0.0] + [p for _, p in points]
        slack = sum(
            abs(b - a) for a, b in zip(powers, powers[1:])
        ) * dt / 1000.0
        assert exact == pytest.approx(riemann, abs=slack + 1e-9)

"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_experiments_single(self, capsys):
        assert main(["experiments", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out
        assert "Camera" in out

    def test_experiments_unknown(self, capsys):
        assert main(["experiments", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_attack(self, capsys):
        assert main(["attack", "attack3", "--duration", "30"]) == 0
        out = capsys.readouterr().out
        assert "stock Android view" in out
        assert "E-Android view" in out
        assert "Cleaner" in out

    def test_attack_unknown(self, capsys):
        assert main(["attack", "attack99"]) == 2
        assert "unknown attack" in capsys.readouterr().err

    def test_census(self, capsys):
        assert main(["census", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "1124" in out

    def test_drain(self, capsys):
        assert main(["drain"]) == 0
        assert "brightness_full" in capsys.readouterr().out

    def test_dumpsys(self, capsys):
        assert main(["dumpsys"]) == 0
        out = capsys.readouterr().out
        assert "ACTIVITY MANAGER" in out
        assert "BATTERY" in out

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_hybrid_attack_via_cli(self, capsys):
        assert main(["attack", "hybrid", "--duration", "20"]) == 0
        assert "detector" in capsys.readouterr().out


class TestCliTraceAndChains:
    def test_trace_command(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "attack3", "--duration", "20", "--out", str(out)]) == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "offline E-Android reconstruction" in text
        assert "Cleaner" in text

    def test_trace_without_out(self, capsys):
        assert main(["trace", "attack6", "--duration", "20"]) == 0
        assert "offline" in capsys.readouterr().out

    def test_trace_unknown(self, capsys):
        assert main(["trace", "nope"]) == 2

    def test_chains_command(self, capsys):
        assert main(["chains", "hybrid", "--duration", "20"]) == 0
        out = capsys.readouterr().out
        assert "longest chain" in out
        assert "Weatherpro" in out

    def test_chains_unknown(self, capsys):
        assert main(["chains", "nope"]) == 2

"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_experiments_single(self, capsys):
        assert main(["experiments", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out
        assert "Camera" in out

    def test_experiments_unknown(self, capsys):
        assert main(["experiments", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "available:" in err

    def test_experiments_only_selection(self, capsys, tmp_path):
        assert (
            main(
                [
                    "experiments",
                    "--only",
                    "fig6,fig1",
                    "--cache-dir",
                    str(tmp_path / "cache"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.index("=== fig6 ===") < out.index("=== fig1 ===")
        assert "2/2 claims hold" in out

    def test_experiments_alias(self, capsys, tmp_path):
        assert (
            main(
                [
                    "experiments",
                    "fig10_table1",
                    "--no-cache",
                ]
            )
            == 0
        )
        assert "=== fig10 ===" in capsys.readouterr().out

    def test_experiments_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "efficiency" in out

    def test_experiments_save_writes_manifest(self, capsys, tmp_path):
        import json

        save_dir = tmp_path / "artifacts"
        assert (
            main(
                [
                    "experiments",
                    "fig1",
                    "--cache-dir",
                    str(tmp_path / "cache"),
                    "--save",
                    str(save_dir),
                ]
            )
            == 0
        )
        assert (save_dir / "fig1.txt").exists()
        manifest = json.loads((save_dir / "manifest.json").read_text())
        assert manifest["experiments"][0]["name"] == "fig1"
        assert manifest["cache"]["misses"] == 1

    def test_experiments_warm_cache_replays(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["experiments", "fig1", "--cache-dir", cache]) == 0
        first = capsys.readouterr().out
        assert main(["experiments", "fig1", "--cache-dir", cache]) == 0
        second = capsys.readouterr().out
        assert "cache: 1 hit(s)" in second
        # identical rendered figure either way (strip the stats footer)
        assert first.split("\n\n1/1")[0] == second.split("\n\n1/1")[0]

    def test_experiments_parallel_flag(self, capsys, tmp_path):
        assert (
            main(
                [
                    "experiments",
                    "--only",
                    "fig1,fig6",
                    "--parallel",
                    "2",
                    "--no-cache",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "=== fig1 ===" in out and "=== fig6 ===" in out

    def test_attack(self, capsys):
        assert main(["attack", "attack3", "--duration", "30"]) == 0
        out = capsys.readouterr().out
        assert "stock Android view" in out
        assert "E-Android view" in out
        assert "Cleaner" in out

    def test_attack_unknown(self, capsys):
        assert main(["attack", "attack99"]) == 2
        assert "unknown attack" in capsys.readouterr().err

    def test_census(self, capsys):
        assert main(["census", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "1124" in out

    def test_drain(self, capsys):
        assert main(["drain"]) == 0
        assert "brightness_full" in capsys.readouterr().out

    def test_dumpsys(self, capsys):
        assert main(["dumpsys"]) == 0
        out = capsys.readouterr().out
        assert "ACTIVITY MANAGER" in out
        assert "BATTERY" in out

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_hybrid_attack_via_cli(self, capsys):
        assert main(["attack", "hybrid", "--duration", "20"]) == 0
        assert "detector" in capsys.readouterr().out


class TestCliTraceAndChains:
    def test_trace_command(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "attack3", "--duration", "20", "--out", str(out)]) == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "offline E-Android reconstruction" in text
        assert "Cleaner" in text

    def test_trace_without_out(self, capsys):
        assert main(["trace", "attack6", "--duration", "20"]) == 0
        assert "offline" in capsys.readouterr().out

    def test_trace_unknown(self, capsys):
        assert main(["trace", "nope"]) == 2

    def test_chains_command(self, capsys):
        assert main(["chains", "hybrid", "--duration", "20"]) == 0
        out = capsys.readouterr().out
        assert "longest chain" in out
        assert "Weatherpro" in out

    def test_chains_unknown(self, capsys):
        assert main(["chains", "nope"]) == 2


class TestCliServe:
    def _queries_file(self, tmp_path, rows):
        import json

        path = tmp_path / "queries.jsonl"
        path.write_text(
            "\n".join(json.dumps(row) for row in rows) + "\n", encoding="utf-8"
        )
        return path

    def test_serve_batch(self, capsys, tmp_path):
        queries = self._queries_file(
            tmp_path,
            [
                {"session": "*", "backend": "eandroid"},
                {"session": "*", "backend": "batterystats"},
                {"session": "*", "backend": "eandroid"},
            ],
        )
        save = tmp_path / "out"
        assert (
            main(
                [
                    "serve",
                    "--batch",
                    "corpus",
                    "--queries",
                    str(queries),
                    "--save",
                    str(save),
                    "--fail-on-shed",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ingested" in out and "0 shed" in out
        import json

        manifest = json.loads((save / "manifest.json").read_text())
        assert manifest["stats"]["shed"] == 0
        assert manifest["cache"]["hits"] > 0  # repeated eandroid sweep
        assert (save / "responses.jsonl").exists()

    def test_serve_bad_batch_path(self, capsys):
        assert main(["serve", "--batch", "no-such-dir"]) == 2
        assert "cannot ingest" in capsys.readouterr().err

    def test_serve_fail_on_shed_trips(self, capsys, tmp_path):
        queries = self._queries_file(
            tmp_path,
            [
                {"session": "*", "backend": "energy", "start": float(i)}
                for i in range(4)
            ],
        )
        assert (
            main(
                [
                    "serve",
                    "--batch",
                    "corpus",
                    "--queries",
                    str(queries),
                    "--queue",
                    "2",
                    "--burst",
                    "12",
                    "--fail-on-shed",
                ]
            )
            == 1
        )
        assert "--fail-on-shed" in capsys.readouterr().err

    def test_serve_telemetry_flag(self, capsys, tmp_path):
        queries = self._queries_file(
            tmp_path, [{"session": "*", "backend": "powertutor"}]
        )
        assert (
            main(
                ["serve", "--batch", "corpus", "--queries", str(queries),
                 "--telemetry"]
            )
            == 0
        )
        assert "serve" in capsys.readouterr().out  # bus stats name the category


class TestObservabilityFlagAliases:
    """`--bus-stats` / `--chrome-trace` stay accepted as hidden aliases."""

    def test_bus_stats_alias(self, capsys):
        assert main(["attack", "attack3", "--duration", "20", "--bus-stats"]) == 0
        assert "wakelock" in capsys.readouterr().out

    def test_chrome_trace_alias(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert (
            main(
                ["attack", "attack3", "--duration", "20",
                 "--chrome-trace", str(out)]
            )
            == 0
        )
        assert out.exists()

    def test_aliases_hidden_from_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--help"])
        help_text = capsys.readouterr().out
        assert "--telemetry" in help_text and "--trace-out" in help_text
        assert "--bus-stats" not in help_text
        assert "--chrome-trace" not in help_text

"""Tests for the demo apps, the synthetic corpus, and the APKTool census."""

import pytest

from repro.android import (
    ACTION_VIDEO_CAPTURE,
    AndroidSystem,
    ComponentKind,
    implicit,
)
from repro.apps import (
    ApkTool,
    CAMERA_PACKAGE,
    CATEGORY_PROFILES,
    CONTACTS_PACKAGE,
    MESSAGE_PACKAGE,
    MUSIC_PACKAGE,
    PAPER_CATEGORY_COUNT,
    PAPER_CORPUS_SIZE,
    VICTIM_PACKAGE,
    build_camera_app,
    build_contacts_app,
    build_message_app,
    build_music_app,
    build_victim_app,
    generate_corpus,
    has_attackable_export,
    run_census,
)
from repro.apps.corpus import SyntheticApk


def booted(*builders):
    system = AndroidSystem()
    for build in builders:
        system.install(build())
    system.boot()
    return system


class TestDemoApps:
    def test_camera_records_for_requested_duration(self):
        system = booted(build_camera_app)
        uid = system.uid_of(CAMERA_PACKAGE)
        intent = implicit(ACTION_VIDEO_CAPTURE)
        intent.extras["duration_s"] = 10.0
        system.am.start_activity(
            system.package_manager.system_uid, intent, user_initiated=True
        )
        assert system.hardware.camera.session_uid == uid
        system.run_for(5.0)
        assert system.hardware.camera.session_uid == uid
        system.run_for(6.0)
        # Finished itself and released the camera.
        assert system.hardware.camera.session_uid is None

    def test_message_films_via_implicit_intent(self):
        system = booted(build_message_app, build_camera_app)
        record = system.launch_app(MESSAGE_PACKAGE)
        record.instance.record_video(5.0)
        assert system.foreground_package() == CAMERA_PACKAGE
        system.run_for(6.0)
        assert system.foreground_package() == MESSAGE_PACKAGE

    def test_contacts_opens_message(self):
        system = booted(build_contacts_app, build_message_app)
        record = system.launch_app(CONTACTS_PACKAGE)
        record.instance.open_message()
        assert system.foreground_package() == MESSAGE_PACKAGE

    def test_victim_wakelock_bug(self):
        """The victim releases its wakelock only in onDestroy."""
        system = booted(build_victim_app)
        system.launch_app(VICTIM_PACKAGE)
        uid = system.uid_of(VICTIM_PACKAGE)
        assert system.power_manager.holds_screen_lock(uid)
        system.press_home()  # stop, not destroy
        assert system.power_manager.holds_screen_lock(uid)
        # Real quit through the exit dialog destroys and releases.
        system.am.move_task_to_front(
            system.package_manager.system_uid, VICTIM_PACKAGE, user_initiated=True
        )
        system.press_back()
        system.tap_dialog_ok()
        assert not system.power_manager.holds_screen_lock(uid)

    def test_victim_background_load(self):
        system = booted(build_victim_app)
        system.launch_app(VICTIM_PACKAGE)
        uid = system.uid_of(VICTIM_PACKAGE)
        fg_load = system.hardware.cpu.utilization_of(uid)
        system.press_home()
        bg_load = system.hardware.cpu.utilization_of(uid)
        assert 0 < bg_load < fg_load

    def test_music_service_plays_audio(self):
        system = booted(build_music_app)
        system.launch_app(MUSIC_PACKAGE)
        uid = system.uid_of(MUSIC_PACKAGE)
        assert system.hardware.audio.is_playing(uid)


class TestCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus()

    def test_size_and_categories(self, corpus):
        assert len(corpus) == PAPER_CORPUS_SIZE
        assert len({apk.category for apk in corpus}) == PAPER_CATEGORY_COUNT

    def test_deterministic(self):
        first = generate_corpus(seed=123)
        second = generate_corpus(seed=123)
        assert [a.manifest_xml for a in first] == [a.manifest_xml for a in second]

    def test_different_seeds_differ(self):
        assert generate_corpus(seed=1) != generate_corpus(seed=2)

    def test_unique_packages(self, corpus):
        assert len({apk.package for apk in corpus}) == len(corpus)

    def test_manifests_parse(self, corpus):
        for apk in corpus[:50]:
            manifest = ApkTool.extract_manifest(apk)
            assert manifest.package == apk.package
            assert manifest.launcher_activity() is not None


class TestCensus:
    @pytest.fixture(scope="class")
    def census(self):
        return run_census(generate_corpus())

    def test_overall_matches_paper(self, census):
        assert census.overall.total == PAPER_CORPUS_SIZE
        assert abs(census.overall.exported_pct - 72.0) < 3.0
        assert abs(census.overall.wake_lock_pct - 81.0) < 3.0
        assert abs(census.overall.write_settings_pct - 21.0) < 3.0

    def test_per_category_rows_sum(self, census):
        assert sum(r.total for r in census.by_category.values()) == PAPER_CORPUS_SIZE

    def test_render(self, census):
        text = census.render_text()
        assert "1124" in text
        assert "WAKE_LOCK" in text

    def test_has_attackable_export_ignores_launcher(self):
        from repro.apps import build_contacts_app

        manifest = build_contacts_app().manifest
        # Contacts exports only its launcher activity.
        assert not has_attackable_export(manifest)

    def test_census_row_pct_empty(self):
        from repro.apps.apktool import CensusRow

        assert CensusRow("x").exported_pct == 0.0

    def test_apktool_rejects_mismatched_package(self):
        apk = SyntheticApk(
            package="com.claimed",
            category="tools",
            manifest_xml='<manifest package="com.actual"><application/></manifest>',
        )
        with pytest.raises(ValueError):
            ApkTool.extract_manifest(apk)


class TestExtraApps:
    def test_maps_holds_gps_while_foreground(self):
        from repro.apps import MAPS_PACKAGE, build_maps_app

        system = booted(build_maps_app)
        system.launch_app(MAPS_PACKAGE)
        assert system.hardware.gps.is_on()
        system.press_home()
        assert not system.hardware.gps.is_on()

    def test_navigation_service_hoggable_by_other_apps(self):
        """The exported navigation service is an attack-#3-grade hog."""
        from repro.apps import MAPS_PACKAGE, build_maps_app
        from repro.android import AndroidSystem, explicit
        from helpers import make_app

        system = AndroidSystem()
        system.install(build_maps_app())
        system.install(make_app("com.mal"))
        system.boot()
        mal = system.uid_of("com.mal")
        system.am.bind_service(mal, explicit(MAPS_PACKAGE, "NavigationService"))
        assert system.hardware.gps.is_on()
        maps_uid = system.uid_of(MAPS_PACKAGE)
        system.run_for(60.0)
        # GPS energy lands on the Maps app — the paper's mis-attribution.
        assert system.hardware.meter.energy_j(owner=maps_uid) > 20.0

    def test_browser_radio_burst_and_tail(self):
        from repro.apps import BROWSER_PACKAGE, build_browser_app
        from repro.power import NEXUS4

        system = booted(build_browser_app)
        system.launch_app(BROWSER_PACKAGE)
        uid = system.uid_of(BROWSER_PACKAGE)
        high = system.hardware.meter.current_power_mw(uid)
        assert high > NEXUS4.radio.high_mw / 2  # loading burst
        system.run_for(4.0)  # load done -> tail
        tail = system.hardware.meter.current_power_mw(uid)
        assert 0 < tail < high
        system.run_for(NEXUS4.radio.tail_seconds + 1.0)
        settled = system.hardware.meter.current_power_mw(uid)
        assert settled < tail

    def test_browser_handles_view_intents(self):
        from repro.apps import BROWSER_PACKAGE, build_browser_app
        from repro.android import ACTION_VIEW, AndroidSystem, implicit
        from helpers import make_app

        system = AndroidSystem()
        system.install(build_browser_app())
        system.install(make_app("com.caller"))
        system.boot()
        caller = system.uid_of("com.caller")
        record = system.am.start_activity(caller, implicit(ACTION_VIEW))
        assert record.package == BROWSER_PACKAGE


class TestCensusSeedRobustness:
    """The Fig. 2 aggregates are a property of the category profiles,
    not of one lucky seed."""

    @pytest.mark.parametrize("seed", [1, 7, 42, 613, 2017])
    def test_aggregates_stable_across_seeds(self, seed):
        census = run_census(generate_corpus(seed=seed))
        assert abs(census.overall.exported_pct - 72.0) < 4.0
        assert abs(census.overall.wake_lock_pct - 81.0) < 4.0
        assert abs(census.overall.write_settings_pct - 21.0) < 4.0

"""Tests for the JSON/CSV export helpers."""

import csv
import io
import json

import pytest

from repro.android import explicit
from repro.core import attach_eandroid
from repro.export import (
    attack_log_to_dicts,
    attack_log_to_json,
    battery_curve_to_csv,
    report_to_csv,
    report_to_dict,
    report_to_json,
    save_report,
    save_text,
)

from helpers import booted_system, make_app


@pytest.fixture
def rig():
    system = booted_system(make_app("com.mal"), make_app("com.vic"))
    ea = attach_eandroid(system)
    mal = system.uid_of("com.mal")
    system.hardware.cpu.set_utilization(system.uid_of("com.vic"), 0.4)
    system.am.bind_service(mal, explicit("com.vic", "PlainService"))
    system.run_for(20.0)
    return system, ea


class TestReportExport:
    def test_dict_shape(self, rig):
        system, ea = rig
        data = report_to_dict(ea.report())
        assert data["profiler"].startswith("E-Android")
        assert data["window"]["end_s"] == system.now
        labels = {entry["label"] for entry in data["entries"]}
        assert {"Mal", "Vic"} <= labels
        mal_entry = next(e for e in data["entries"] if e["label"] == "Mal")
        assert mal_entry["collateral_j"]["Vic"] > 0

    def test_json_parses(self, rig):
        _, ea = rig
        parsed = json.loads(report_to_json(ea.report()))
        assert parsed["entries"]

    def test_csv_parses(self, rig):
        _, ea = rig
        rows = list(csv.DictReader(io.StringIO(report_to_csv(ea.report()))))
        assert rows
        mal = next(r for r in rows if r["label"] == "Mal")
        assert float(mal["collateral_j"]) > 0

    def test_save_report(self, rig, tmp_path):
        _, ea = rig
        paths = save_report(ea.report(), tmp_path, stem="attack")
        assert paths["json"].exists()
        assert paths["csv"].exists()
        assert json.loads(paths["json"].read_text())["entries"]

    def test_save_text_creates_directories(self, tmp_path):
        target = save_text(tmp_path / "deep" / "dir" / "x.txt", "hello")
        assert target.read_text() == "hello"


class TestBatteryCurveExport:
    def test_csv_columns(self, rig):
        system, _ = rig
        csv_text = battery_curve_to_csv(
            system.battery.discharge_curve(step_s=5.0, until=system.now)
        )
        rows = list(csv.DictReader(io.StringIO(csv_text)))
        assert rows
        assert set(rows[0]) == {"hours", "percent"}
        assert float(rows[0]["percent"]) <= 100.0


class TestAttackLogExport:
    def test_dict_rows(self, rig):
        system, ea = rig
        rows = attack_log_to_dicts(ea.accounting)
        assert len(rows) == 1
        assert rows[0]["kind"] == "service_bind"
        assert rows[0]["alive"] is True

    def test_labelled_rows(self, rig):
        system, ea = rig
        rows = attack_log_to_dicts(
            ea.accounting, label_for_uid=system.package_manager.label_for_uid
        )
        assert rows[0]["driving"] == "Mal"
        assert rows[0]["target"] == "Vic"

    def test_screen_target_labelled(self, rig):
        system, ea = rig
        from repro.android import SCREEN_BRIGHTNESS

        mal = system.uid_of("com.mal")
        system.settings.put(mal, SCREEN_BRIGHTNESS, 255)
        rows = attack_log_to_dicts(ea.accounting)
        assert any(row["target"] == "screen" for row in rows)

    def test_json_parses(self, rig):
        _, ea = rig
        assert json.loads(attack_log_to_json(ea.accounting))

"""Tests for activity lifecycle, task stacks, and foreground tracking."""

import pytest

from repro.android import (
    ActivityNotFoundError,
    ActivityState,
    BadStateError,
    LAUNCHER_PACKAGE,
    NotExportedError,
    explicit,
)

from helpers import booted_system, make_app


@pytest.fixture
def system():
    return booted_system(make_app("com.alpha"), make_app("com.beta"))


def front(system):
    return system.am.foreground_record()


class TestActivityStart:
    def test_launch_brings_to_foreground(self, system):
        record = system.launch_app("com.alpha")
        assert record.is_foreground
        assert system.foreground_package() == "com.alpha"
        assert record.instance.events == ["create", "start", "resume"]

    def test_launcher_stopped_when_covered(self, system):
        launcher_record = front(system)
        system.launch_app("com.alpha")
        assert launcher_record.state == ActivityState.STOPPED

    def test_transparent_cover_only_pauses(self, system):
        alpha = system.launch_app("com.alpha")
        uid = system.uid_of("com.beta")
        cover = system.am.start_activity(
            uid, explicit("com.beta", "TransparentActivity")
        )
        assert cover.is_foreground
        assert alpha.state == ActivityState.PAUSED
        assert "pause" in alpha.instance.events
        assert "stop" not in alpha.instance.events

    def test_opaque_cover_stops(self, system):
        alpha = system.launch_app("com.alpha")
        system.launch_app("com.beta")
        assert alpha.state == ActivityState.STOPPED
        assert alpha.instance.events[-2:] == ["pause", "stop"]

    def test_cross_app_start_records_caller(self, system):
        system.launch_app("com.alpha")
        uid_alpha = system.uid_of("com.alpha")
        record = system.am.start_activity(
            uid_alpha, explicit("com.beta", "PlainActivity")
        )
        assert record.launched_by_uid == uid_alpha
        assert record.uid == system.uid_of("com.beta")

    def test_non_exported_cross_app_denied(self, system):
        uid_beta = system.uid_of("com.beta")
        with pytest.raises(NotExportedError):
            system.am.start_activity(
                uid_beta, explicit("com.alpha", "PrivateActivity")
            )

    def test_process_spawned_on_first_start(self, system):
        app = system.package_manager.app_for_package("com.alpha")
        assert app.process is None
        system.launch_app("com.alpha")
        assert app.process is not None and app.process.alive

    def test_start_reuses_process(self, system):
        system.launch_app("com.alpha")
        app = system.package_manager.app_for_package("com.alpha")
        pid = app.process.pid
        uid = system.uid_of("com.alpha")
        system.am.start_activity(uid, explicit("com.alpha", "TransparentActivity"))
        assert app.process.pid == pid


class TestHomeAndBack:
    def test_home_stops_foreground_app(self, system):
        alpha = system.launch_app("com.alpha")
        system.press_home()
        assert system.foreground_package() == LAUNCHER_PACKAGE
        assert alpha.state == ActivityState.STOPPED

    def test_home_then_relaunch_restarts(self, system):
        alpha = system.launch_app("com.alpha")
        system.press_home()
        system.am.move_task_to_front(
            system.package_manager.system_uid, "com.alpha", user_initiated=True
        )
        assert alpha.state == ActivityState.RESUMED
        assert "restart" in alpha.instance.events

    def test_back_finishes_top_activity(self, system):
        alpha = system.launch_app("com.alpha")
        system.press_back()
        assert alpha.state == ActivityState.DESTROYED
        assert alpha.instance.events[-1] == "destroy"
        assert system.foreground_package() == LAUNCHER_PACKAGE

    def test_back_uncovers_paused_activity(self, system):
        alpha = system.launch_app("com.alpha")
        uid = system.uid_of("com.beta")
        system.am.start_activity(uid, explicit("com.beta", "TransparentActivity"))
        system.press_back()
        assert alpha.is_foreground

    def test_move_unknown_task_rejected(self, system):
        with pytest.raises(ActivityNotFoundError):
            system.am.move_task_to_front(1000, "com.never.started")


class TestFinish:
    def test_finish_from_activity_code(self, system):
        record = system.launch_app("com.alpha")
        record.instance.finish()
        assert record.state == ActivityState.DESTROYED

    def test_double_finish_rejected(self, system):
        record = system.launch_app("com.alpha")
        system.am.finish_activity(record)
        with pytest.raises(BadStateError):
            system.am.finish_activity(record)

    def test_finish_background_activity(self, system):
        alpha = system.launch_app("com.alpha")
        system.launch_app("com.beta")
        system.am.finish_activity(alpha)
        assert alpha.state == ActivityState.DESTROYED
        assert system.foreground_package() == "com.beta"

    def test_task_removed_when_empty(self, system):
        system.launch_app("com.alpha")
        record = front(system)
        system.am.finish_activity(record)
        assert system.am.supervisor.task_for("com.alpha") is None


class TestTaskStacks:
    def test_same_app_activities_share_task(self, system):
        system.launch_app("com.alpha")
        uid = system.uid_of("com.alpha")
        system.am.start_activity(uid, explicit("com.alpha", "TransparentActivity"))
        task = system.am.supervisor.task_for("com.alpha")
        assert len(task.activities) == 2

    def test_visible_records_through_transparency(self, system):
        system.launch_app("com.alpha")
        uid = system.uid_of("com.alpha")
        system.am.start_activity(uid, explicit("com.alpha", "TransparentActivity"))
        task = system.am.supervisor.task_for("com.alpha")
        visible = task.visible_records()
        assert len(visible) == 2

    def test_records_of_uid(self, system):
        system.launch_app("com.alpha")
        uid = system.uid_of("com.alpha")
        assert len(system.am.supervisor.records_of_uid(uid)) == 1


class TestForegroundTimeline:
    def test_timeline_tracks_changes(self, system):
        system.run_for(5.0)
        system.launch_app("com.alpha")
        system.run_for(5.0)
        system.launch_app("com.beta")
        timeline = system.am.timeline
        assert timeline.current_uid == system.uid_of("com.beta")
        assert timeline.uid_at(6.0) == system.uid_of("com.alpha")

    def test_intervals(self, system):
        system.run_for(10.0)
        system.launch_app("com.alpha")
        system.run_for(10.0)
        system.press_home()
        system.run_for(10.0)
        uid = system.uid_of("com.alpha")
        intervals = system.am.timeline.intervals(uid, 0.0, 30.0)
        assert intervals == [(10.0, 20.0)]

    def test_foreground_observer_cause(self, system):
        from repro.android import FrameworkObserver

        causes = []

        class Recorder(FrameworkObserver):
            def on_foreground_changed(self, time, prev, new, cause, initiator):
                causes.append((cause, initiator))

        system.register_observer(Recorder())
        system.launch_app("com.alpha")
        uid_alpha = system.uid_of("com.alpha")
        system.am.start_activity(uid_alpha, explicit("com.beta", "PlainActivity"))
        assert causes[0] == ("start", None)  # user launch
        assert causes[1] == ("start", uid_alpha)  # malware-style launch

"""Fleet aggregation: requests, partials, scatter-gather, memoization."""

import json

import pytest

from repro.aggregate import (
    AGGREGATE_SCHEMA,
    PARTIAL_SCHEMA,
    AggregateRequest,
    AggregateRequestError,
    GroupedPartial,
    HistogramPartial,
    PartialFormatError,
    PartialMergeError,
    category_of,
    empty_partial,
    is_aggregate_document,
    merge_partials,
    partial_from_dict,
    run_aggregate,
    session_values,
)
from repro.offline import capture_trace
from repro.offline.analyzer import OfflineAnalyzer
from repro.reports import ReportRequest, UnknownBackendError
from repro.serve import ProfilingService, ServiceConfig
from repro.workloads import run_attack3, run_scene1


@pytest.fixture(scope="module")
def scene_trace():
    run = run_scene1()
    return capture_trace(run.system, run.eandroid)


@pytest.fixture(scope="module")
def attack_trace():
    run = run_attack3()
    return capture_trace(run.system, run.eandroid)


@pytest.fixture()
def fleet(scene_trace, attack_trace):
    svc = ProfilingService(ServiceConfig(telemetry=False))
    svc.ingest_trace("fleet-a", scene_trace, "test")
    svc.ingest_trace("fleet-b", attack_trace, "test")
    svc.ingest_trace("other-c", attack_trace, "test")
    return svc


class TestRequest:
    def test_defaults_and_roundtrip(self):
        request = AggregateRequest(backend="eandroid")
        assert request.op == "sum" and request.group_by == "owner"
        assert request.sessions == ("*",)
        rebuilt = AggregateRequest.from_dict(request.to_dict())
        assert rebuilt == request

    def test_sessions_string_accepted(self):
        request = AggregateRequest.from_dict(
            {"backend": "energy", "op": "sum", "sessions": "fleet-*"}
        )
        assert request.sessions == ("fleet-*",)

    def test_selector_is_a_set(self):
        a = AggregateRequest(backend="energy", sessions=("b", "a", "b"))
        b = AggregateRequest(backend="energy", sessions=("a", "b"))
        assert a.sessions == ("a", "b")
        assert a.key() == b.key()

    @pytest.mark.parametrize(
        "kwargs, error",
        [
            ({"backend": "nope"}, UnknownBackendError),
            ({"backend": "energy", "op": "max"}, AggregateRequestError),
            ({"backend": "energy", "group_by": "uid"}, AggregateRequestError),
            ({"backend": "energy", "sessions": ()}, AggregateRequestError),
            ({"backend": "energy", "start": -1.0}, AggregateRequestError),
            ({"backend": "energy", "start": 5.0, "end": 1.0}, AggregateRequestError),
            ({"backend": "energy", "op": "topk", "k": 0}, AggregateRequestError),
            ({"backend": "energy", "op": "histogram", "bins": 0}, AggregateRequestError),
            (
                {"backend": "energy", "op": "histogram", "bin_width": 0.0},
                AggregateRequestError,
            ),
        ],
    )
    def test_validation(self, kwargs, error):
        with pytest.raises(error):
            AggregateRequest(**kwargs)

    def test_missing_backend(self):
        with pytest.raises(AggregateRequestError):
            AggregateRequest.from_dict({"op": "sum"})

    def test_selector_matching(self):
        request = AggregateRequest(backend="energy", sessions=("fleet-*",))
        names = ["fleet-a", "fleet-b", "other-c"]
        assert request.select(names) == ["fleet-a", "fleet-b"]
        assert not request.matches("other-c")

    def test_cache_token_ignores_selector_and_k(self):
        base = AggregateRequest(backend="energy", op="topk", k=10)
        narrowed = AggregateRequest(
            backend="energy", op="topk", k=3, sessions=("fleet-*",)
        )
        assert base.cache_token() == narrowed.cache_token()

    def test_cache_token_tracks_window_and_backend(self):
        base = AggregateRequest(backend="energy")
        assert base.cache_token() != AggregateRequest(backend="eandroid").cache_token()
        assert (
            base.cache_token()
            != AggregateRequest(backend="energy", start=1.0).cache_token()
        )

    def test_sum_and_mean_share_partials(self):
        total = AggregateRequest(backend="energy", op="sum")
        mean = AggregateRequest(backend="energy", op="mean")
        histogram = AggregateRequest(backend="energy", op="histogram")
        assert total.cache_token() == mean.cache_token()
        assert total.cache_token() != histogram.cache_token()

    def test_is_aggregate_document(self):
        assert is_aggregate_document({"backend": "energy", "op": "sum"})
        assert not is_aggregate_document({"session": "a", "backend": "energy"})
        assert not is_aggregate_document([1, 2])


class TestCategoryOf:
    def test_corpus_package_ids_carry_their_category(self):
        assert category_of("com.play.game.app0001") == "game"

    def test_framework_labels(self):
        assert category_of("Screen") == "system_screen"
        assert category_of("Screen (no foreground)") == "system_screen"
        assert category_of("Android OS") == "system_os"

    def test_hash_fallback_is_deterministic(self):
        from repro.apps import CATEGORY_PROFILES

        names = {profile[0] for profile in CATEGORY_PROFILES}
        assert category_of("Victim") == category_of("Victim")
        assert category_of("Victim") in names


class TestGroupedPartial:
    def test_merge_is_disjoint_union(self):
        a = GroupedPartial.for_session("s1", {"g1": 1.0, "g2": 2.0})
        b = GroupedPartial.for_session("s2", {"g2": 3.0})
        merged = a.merge(b)
        assert merged.sessions == frozenset({"s1", "s2"})
        assert merged.totals() == {"g1": 1.0, "g2": 5.0}
        # purity: the inputs are untouched
        assert a.totals() == {"g1": 1.0, "g2": 2.0}

    def test_merge_rejects_session_overlap(self):
        a = GroupedPartial.for_session("s1", {"g": 1.0})
        with pytest.raises(PartialMergeError, match="s1"):
            a.merge(GroupedPartial.for_session("s1", {"g": 2.0}))

    def test_merge_rejects_kind_mismatch(self):
        a = GroupedPartial.for_session("s1", {"g": 1.0})
        b = HistogramPartial.for_session("s2", {"g": 1.0}, bins=4, bin_width=1.0)
        with pytest.raises(PartialMergeError):
            a.merge(b)

    def test_empty_is_identity(self):
        request = AggregateRequest(backend="energy")
        a = GroupedPartial.for_session("s1", {"g": 1.5})
        assert empty_partial(request).merge(a).to_dict() == a.to_dict()
        assert a.merge(GroupedPartial()).to_dict() == a.to_dict()

    def test_finalize_sum_and_mean(self):
        request = AggregateRequest(backend="energy", op="mean")
        merged = merge_partials(
            [
                GroupedPartial.for_session("s1", {"g": 1.0}),
                GroupedPartial.for_session("s2", {"g": 3.0}),
            ],
            request,
        )
        result = merged.finalize(request)
        assert result["groups"]["g"] == {"mean": 2.0, "count": 2, "total": 4.0}
        total = merged.finalize(AggregateRequest(backend="energy", op="sum"))
        assert total == {"groups": {"g": 4.0}, "group_count": 1}

    def test_finalize_topk_breaks_ties_on_label(self):
        request = AggregateRequest(backend="energy", op="topk", k=2)
        merged = GroupedPartial.for_session("s1", {"b": 5.0, "a": 5.0, "c": 1.0})
        result = merged.finalize(request)
        assert [row["group"] for row in result["top"]] == ["a", "b"]
        assert result["group_count"] == 3

    def test_roundtrip(self):
        a = GroupedPartial.for_session("s1", {"g1": 1.25, "g2": 0.5})
        rebuilt = partial_from_dict(a.to_dict())
        assert rebuilt.to_dict() == a.to_dict()
        assert rebuilt.to_dict()["schema"] == PARTIAL_SCHEMA


class TestHistogramPartial:
    def test_binning_clamps_both_ends(self):
        partial = HistogramPartial.for_session(
            "s1", {"low": -2.0, "mid": 1.5, "high": 99.0}, bins=4, bin_width=1.0
        )
        assert partial.counts == (1, 1, 0, 1)
        assert partial.samples == 3

    def test_merge_adds_counts(self):
        a = HistogramPartial.for_session("s1", {"g": 0.5}, bins=3, bin_width=1.0)
        b = HistogramPartial.for_session("s2", {"g": 0.6}, bins=3, bin_width=1.0)
        assert a.merge(b).counts == (2, 0, 0)

    def test_merge_rejects_shape_mismatch(self):
        a = HistogramPartial.for_session("s1", {"g": 0.5}, bins=3, bin_width=1.0)
        b = HistogramPartial.for_session("s2", {"g": 0.5}, bins=4, bin_width=1.0)
        with pytest.raises(PartialMergeError, match="shapes differ"):
            a.merge(b)

    def test_roundtrip(self):
        a = HistogramPartial.for_session("s1", {"g": 2.5}, bins=4, bin_width=2.0)
        assert partial_from_dict(a.to_dict()).to_dict() == a.to_dict()


class TestPartialFromDict:
    @pytest.mark.parametrize(
        "data",
        [
            "not a mapping",
            {"schema": "other/1", "kind": "grouped"},
            {"schema": PARTIAL_SCHEMA, "kind": "mystery"},
            {"schema": PARTIAL_SCHEMA, "kind": "grouped"},  # missing fields
            {"schema": PARTIAL_SCHEMA, "kind": "histogram", "counts": "x"},
        ],
    )
    def test_malformed(self, data):
        with pytest.raises(PartialFormatError):
            partial_from_dict(data)


class TestAggregateEngine:
    def test_sum_matches_report_rows(self, fleet, scene_trace, attack_trace):
        request = AggregateRequest(backend="eandroid", op="sum", group_by="owner")
        payload = fleet.aggregate(request).payload
        assert payload["schema"] == AGGREGATE_SCHEMA
        assert payload["partial"] is False and not payload["missing_sessions"]
        expected = {}
        for trace in (scene_trace, attack_trace, attack_trace):
            view = OfflineAnalyzer(trace).describe(ReportRequest(backend="eandroid"))
            for entry in view.rows():
                expected[entry.label] = expected.get(entry.label, 0.0) + entry.energy_j
        groups = payload["result"]["groups"]
        assert set(groups) == set(expected)
        for label, total in expected.items():
            assert groups[label] == pytest.approx(total)

    def test_selector_narrows_the_fleet(self, fleet):
        request = AggregateRequest(
            backend="energy", sessions=("fleet-*",), op="sum"
        )
        payload = fleet.aggregate(request).payload
        assert payload["sessions"] == ["fleet-a", "fleet-b"]

    def test_no_matching_sessions(self, fleet):
        request = AggregateRequest(backend="energy", sessions=("nothing-*",))
        payload = fleet.aggregate(request).payload
        assert payload["sessions"] == [] and payload["partial"] is False
        assert payload["result"] == {"groups": {}, "group_count": 0}

    def test_mechanism_group_by_reads_the_link_log(self, fleet, attack_trace):
        request = AggregateRequest(backend="energy", group_by="mechanism")
        payload = fleet.aggregate(request).payload
        kinds = {link.kind for link in attack_trace.links}
        assert kinds and set(payload["result"]["groups"]) <= kinds | {
            link.kind for link in fleet.sessions["fleet-a"].trace.links
        }
        values = session_values(OfflineAnalyzer(attack_trace), request)
        assert all(v > 0 for v in values.values())

    def test_histogram_counts_all_groups(self, fleet):
        request = AggregateRequest(
            backend="energy", op="histogram", bins=8, bin_width=20.0
        )
        payload = fleet.aggregate(request).payload
        result = payload["result"]
        assert len(result["bins"]) == 8
        assert sum(result["bins"]) == result["samples"] > 0

    def test_workers_match_serial(self, fleet, scene_trace, attack_trace):
        sharded = ProfilingService(ServiceConfig(telemetry=False, workers=2))
        sharded.ingest_trace("fleet-a", scene_trace, "test")
        sharded.ingest_trace("fleet-b", attack_trace, "test")
        sharded.ingest_trace("other-c", attack_trace, "test")
        for op in ("sum", "topk"):
            request = AggregateRequest(backend="eandroid", op=op, group_by="owner")
            serial = fleet.aggregate(request)
            parallel = sharded.aggregate(request)
            assert parallel.shards >= 1
            assert json.dumps(serial.payload, sort_keys=True) == json.dumps(
                parallel.payload, sort_keys=True
            )

    def test_stats_count_aggregates(self, fleet):
        fleet.aggregate(AggregateRequest(backend="energy"))
        assert fleet.stats.aggregates == 1
        assert fleet.stats.as_dict()["aggregates"] == 1

    def test_response_to_dict_shape(self, fleet):
        response = fleet.aggregate(AggregateRequest(backend="energy"))
        data = response.to_dict()
        assert data["status"] == "ok"
        assert data["aggregate"]["schema"] == AGGREGATE_SCHEMA
        assert data["computed"] == 3 and data["memoized"] == 0


class TestMemoization:
    def _service(self, tmp_path, scene_trace, attack_trace):
        svc = ProfilingService(
            ServiceConfig(telemetry=False, store_dir=str(tmp_path / "store"))
        )
        svc.ingest_trace("m-a", scene_trace, "test", digest="a" * 64)
        svc.ingest_trace("m-b", attack_trace, "test", digest="b" * 64)
        return svc

    def test_second_run_is_all_memo_hits(self, tmp_path, scene_trace, attack_trace):
        svc = self._service(tmp_path, scene_trace, attack_trace)
        request = AggregateRequest(backend="eandroid")
        live = svc.aggregate(request)
        warm = svc.aggregate(request)
        assert (live.computed, live.memoized) == (2, 0)
        assert (warm.computed, warm.memoized) == (0, 2)
        assert json.dumps(live.payload, sort_keys=True) == json.dumps(
            warm.payload, sort_keys=True
        )

    def test_partials_shared_across_selectors_and_ops(
        self, tmp_path, scene_trace, attack_trace
    ):
        svc = self._service(tmp_path, scene_trace, attack_trace)
        svc.aggregate(AggregateRequest(backend="eandroid", op="sum"))
        narrowed = svc.aggregate(
            AggregateRequest(backend="eandroid", op="mean", sessions=("m-a",))
        )
        assert (narrowed.computed, narrowed.memoized) == (0, 1)

    def test_corrupt_memo_degrades_to_recompute(
        self, tmp_path, scene_trace, attack_trace
    ):
        from repro.aggregate.engine import _memo_ref
        from repro.aggregate import AGGREGATE_REF_NAMESPACE

        svc = self._service(tmp_path, scene_trace, attack_trace)
        request = AggregateRequest(backend="eandroid")
        live = svc.aggregate(request)
        # Point one memo ref at garbage bytes.
        info = svc.store.put_bytes(b"garbage", kind="junk", codec="json", version=1)
        svc.store.set_ref(
            AGGREGATE_REF_NAMESPACE, _memo_ref("a" * 64, request), info.digest
        )
        healed = svc.aggregate(request)
        assert (healed.computed, healed.memoized) == (1, 1)
        assert json.dumps(healed.payload, sort_keys=True) == json.dumps(
            live.payload, sort_keys=True
        )

    def test_unkeyed_sessions_always_recompute(self, tmp_path, scene_trace):
        svc = ProfilingService(
            ServiceConfig(telemetry=False, store_dir=str(tmp_path / "store"))
        )
        svc.ingest_trace("plain", scene_trace, "test")  # no digest
        request = AggregateRequest(backend="energy")
        assert svc.aggregate(request).computed == 1
        assert svc.aggregate(request).computed == 1

    def test_ingest_wires_content_digests(self, tmp_path, scene_trace):
        path = tmp_path / "device.json"
        path.write_text(scene_trace.to_json(), encoding="utf-8")
        svc = ProfilingService(
            ServiceConfig(telemetry=False, store_dir=str(tmp_path / "store"))
        )
        (name,) = svc.ingest(path)
        assert svc.sessions[name].content_digest
        request = AggregateRequest(backend="energy")
        assert svc.aggregate(request).computed == 1
        assert svc.aggregate(request).memoized == 1


class TestTelemetry:
    def test_aggregate_events_published(self, scene_trace):
        from repro.telemetry import Category
        from repro.telemetry.bus import TelemetryRecorder

        svc = ProfilingService(ServiceConfig(telemetry=True))
        svc.ingest_trace("t-a", scene_trace, "test")
        recorder = TelemetryRecorder()
        recorder.attach(svc.bus, categories=[Category.AGGREGATE])
        svc.aggregate(AggregateRequest(backend="energy"))
        names = [event.name for event in recorder.events]
        assert names == ["aggregate_issued", "aggregate_partial", "aggregate_merged"]
        merged = recorder.events[-1]
        assert merged.partial is False and merged.merged == 1


class TestCli:
    def test_aggregate_command(self, tmp_path, scene_trace, capsys):
        from repro.cli import main

        trace_path = tmp_path / "device.json"
        trace_path.write_text(scene_trace.to_json(), encoding="utf-8")
        out = tmp_path / "agg.json"
        code = main(
            [
                "aggregate",
                "--batch",
                str(trace_path),
                "--backend",
                "eandroid",
                "--op",
                "topk",
                "--k",
                "3",
                "--out",
                str(out),
                "--fail-on-partial",
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["schema"] == AGGREGATE_SCHEMA
        assert payload["partial"] is False
        assert len(payload["result"]["top"]) <= 3

    def test_bad_request_exits_2(self, tmp_path, scene_trace, capsys):
        from repro.cli import main

        trace_path = tmp_path / "device.json"
        trace_path.write_text(scene_trace.to_json(), encoding="utf-8")
        code = main(
            ["aggregate", "--batch", str(trace_path), "--backend", "bogus"]
        )
        assert code == 2

"""Property tests: merge() is associative/commutative; payloads are
order-independent; chaos-armed aggregates degrade by *naming* sessions.

These pin the ISSUE acceptance criteria: shuffled shard orders yield
byte-identical ``repro.aggregate/1`` payloads, and a killed shard
produces ``partial=True`` with the exact missing-session list — never
a silently wrong total.
"""

import functools
import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregate import (
    AggregateRequest,
    GroupedPartial,
    HistogramPartial,
    empty_partial,
    merge_partials,
)
from repro.faults import FaultPlan, FaultSpec, activate
from repro.offline import capture_trace
from repro.serve import ProfilingService, ServiceConfig
from repro.workloads import ALL_ATTACKS, run_scene1

GROUPS = ("alpha", "beta", "gamma", "delta")


@st.composite
def grouped_partials(draw, max_sessions=6):
    """A list of disjoint-session GroupedPartials."""
    count = draw(st.integers(min_value=1, max_value=max_sessions))
    values = st.floats(
        min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
    )
    partials = []
    for index in range(count):
        groups = draw(
            st.dictionaries(st.sampled_from(GROUPS), values, max_size=len(GROUPS))
        )
        partials.append(GroupedPartial.for_session(f"s{index:02d}", groups))
    return partials


@st.composite
def histogram_partials(draw, bins=8, max_sessions=5):
    count = draw(st.integers(min_value=1, max_value=max_sessions))
    values = st.floats(
        min_value=-10.0, max_value=100.0, allow_nan=False, allow_infinity=False
    )
    partials = []
    for index in range(count):
        groups = draw(
            st.dictionaries(st.sampled_from(GROUPS), values, max_size=len(GROUPS))
        )
        partials.append(
            HistogramPartial.for_session(
                f"s{index:02d}", groups, bins=bins, bin_width=1.0
            )
        )
    return partials


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(grouped_partials(max_sessions=3), st.randoms(use_true_random=False))
    def test_grouped_merge_commutes(self, partials, rng):
        shuffled = list(partials)
        rng.shuffle(shuffled)
        request = AggregateRequest(backend="energy")
        forward = merge_partials(partials, request)
        backward = merge_partials(shuffled, request)
        assert forward.to_dict() == backward.to_dict()

    @settings(max_examples=60, deadline=None)
    @given(grouped_partials(max_sessions=3))
    def test_grouped_merge_is_associative(self, partials):
        while len(partials) < 3:
            partials = partials + [
                GroupedPartial.for_session(f"pad{len(partials)}", {"alpha": 1.0})
            ]
        a, b, c = partials[0], partials[1], partials[2]
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.to_dict() == right.to_dict()

    @settings(max_examples=60, deadline=None)
    @given(grouped_partials(), st.randoms(use_true_random=False))
    def test_shuffled_orders_finalize_byte_identical(self, partials, rng):
        """The headline guarantee: ANY merge order -> identical bytes."""
        request = AggregateRequest(backend="energy", op="mean")
        reference = json.dumps(
            merge_partials(partials, request).finalize(request), sort_keys=True
        )
        for _ in range(4):
            shuffled = list(partials)
            rng.shuffle(shuffled)
            merged = functools.reduce(
                lambda x, y: x.merge(y), shuffled, empty_partial(request)
            )
            assert json.dumps(merged.finalize(request), sort_keys=True) == reference

    @settings(max_examples=60, deadline=None)
    @given(histogram_partials(), st.randoms(use_true_random=False))
    def test_histogram_orders_byte_identical(self, partials, rng):
        request = AggregateRequest(backend="energy", op="histogram", bins=8)
        reference = json.dumps(
            merge_partials(partials, request).finalize(request), sort_keys=True
        )
        shuffled = list(partials)
        rng.shuffle(shuffled)
        merged = merge_partials(shuffled, request)
        assert json.dumps(merged.finalize(request), sort_keys=True) == reference

    @settings(max_examples=40, deadline=None)
    @given(grouped_partials(max_sessions=4))
    def test_empty_partial_is_left_and_right_identity(self, partials):
        request = AggregateRequest(backend="energy")
        merged = merge_partials(partials, request)
        identity = empty_partial(request)
        assert identity.merge(merged).to_dict() == merged.to_dict()
        assert merged.merge(identity).to_dict() == merged.to_dict()


@pytest.fixture(scope="module")
def chaos_fleet():
    """>= 8 sessions, attack workloads round-robin plus one scene."""
    svc = ProfilingService(ServiceConfig(telemetry=False))
    attacks = list(ALL_ATTACKS.values())
    runs = [run_scene1()] + [
        attacks[i % len(attacks)](duration=30.0) for i in range(7)
    ]
    for index, run in enumerate(runs):
        svc.ingest_trace(
            f"fleet-{index:02d}", capture_trace(run.system, run.eandroid), "test"
        )
    assert len(svc.sessions) >= 8
    return svc


class TestChaosDegradation:
    def test_killed_shard_names_exactly_the_missing_sessions(self, chaos_fleet):
        """ISSUE acceptance: one killed shard -> partial=True + names."""
        request = AggregateRequest(backend="eandroid", op="sum")
        baseline = chaos_fleet.aggregate(request).payload
        # max_injections=3 exhausts the 3-attempt retry budget on the
        # first dispatched session (sorted order), then runs dry.
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    site="aggregate.dispatch",
                    kind="io-error",
                    probability=1.0,
                    max_injections=3,
                )
            ]
        )
        with activate(plan, seed=7):
            degraded = chaos_fleet.aggregate(request)
        payload = degraded.payload
        assert payload["partial"] is True
        assert payload["missing_sessions"] == ["fleet-00"]
        assert payload["sessions"] == [f"fleet-{i:02d}" for i in range(1, 8)]
        assert "fleet-00" in payload["errors"]
        # Never a silently wrong total: the degraded groups are the
        # baseline minus exactly the named session's contribution.
        full = baseline["result"]["groups"]
        partial_groups = payload["result"]["groups"]
        assert all(partial_groups[g] <= full[g] + 1e-9 for g in partial_groups)
        assert sum(partial_groups.values()) < sum(full.values())

    def test_retryable_faults_recover_byte_identical(self, chaos_fleet):
        """Faults within the retry budget leave no trace in the bytes."""
        request = AggregateRequest(backend="eandroid", op="topk", k=5)
        clean = json.dumps(chaos_fleet.aggregate(request).payload, sort_keys=True)
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    site="aggregate.dispatch",
                    kind="io-error",
                    probability=1.0,
                    max_injections=2,
                ),
                FaultSpec(
                    site="aggregate.merge",
                    kind="io-error",
                    probability=0.5,
                    max_injections=2,
                ),
            ]
        )
        with activate(plan, seed=7):
            armed = chaos_fleet.aggregate(request)
        assert armed.ok and not armed.partial
        assert json.dumps(armed.payload, sort_keys=True) == clean

    def test_merge_fault_drops_one_named_partial(self, chaos_fleet):
        request = AggregateRequest(backend="eandroid", op="sum")
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    site="aggregate.merge",
                    kind="io-error",
                    probability=1.0,
                    max_injections=3,
                )
            ]
        )
        with activate(plan, seed=11):
            degraded = chaos_fleet.aggregate(request)
        payload = degraded.payload
        assert payload["partial"] is True
        assert len(payload["missing_sessions"]) == 1
        assert set(payload["missing_sessions"]) | set(payload["sessions"]) == {
            f"fleet-{i:02d}" for i in range(8)
        }

    def test_shard_order_independence_end_to_end(self, chaos_fleet):
        """Worker counts change shard composition; bytes must not move."""
        request = AggregateRequest(backend="eandroid", op="sum", group_by="category")
        reference = json.dumps(chaos_fleet.aggregate(request).payload, sort_keys=True)
        for workers in (2, 3):
            svc = ProfilingService(ServiceConfig(telemetry=False, workers=workers))
            names = list(chaos_fleet.sessions)
            random.Random(workers).shuffle(names)
            for name in names:  # ingest order also shuffled
                svc.ingest_trace(name, chaos_fleet.sessions[name].trace, "test")
            assert (
                json.dumps(svc.aggregate(request).payload, sort_keys=True) == reference
            )

"""Tests for the experiment registry and the uniform result protocol."""

import pytest

from repro.experiments import (
    REGISTRY,
    ExperimentOutcome,
    ExperimentSpec,
    RestoredResult,
    UnknownExperimentError,
    available_names,
    get_spec,
    ordered_specs,
    resolve_selection,
    run_fig1,
)
from repro.experiments.registry import outcome_from_result

PAPER_ORDER = [
    "fig1",
    "fig2",
    "fig3",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "efficiency",
]

# Auxiliary specs ride on the engine (cache, fan-out) but are not part
# of the paper's evaluation; default selections skip them.
AUXILIARY = ["fuzz", "bench", "serve", "aggregate"]


class TestRegistryContents:
    def test_all_experiments_registered(self):
        assert set(REGISTRY) == set(PAPER_ORDER) | set(AUXILIARY)

    def test_paper_order(self):
        assert available_names() == PAPER_ORDER + AUXILIARY
        assert [s.name for s in ordered_specs()] == PAPER_ORDER + AUXILIARY

    def test_auxiliary_flagged(self):
        assert REGISTRY["fuzz"].auxiliary is True
        assert all(not REGISTRY[name].auxiliary for name in PAPER_ORDER)

    def test_aliases_resolve(self):
        assert get_spec("fig10_table1").name == "fig10"
        assert get_spec("table1").name == "fig10"

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownExperimentError):
            get_spec("fig99")

    def test_default_params_recorded(self):
        assert REGISTRY["fig10"].default_params == {"iterations": 50}
        assert REGISTRY["fig11"].default_params == {"rounds": 40, "inner": 4000}


class TestSelection:
    def test_empty_selection_is_every_paper_experiment(self):
        assert [s.name for s in resolve_selection(None)] == PAPER_ORDER
        assert [s.name for s in resolve_selection([])] == PAPER_ORDER

    def test_auxiliary_selectable_by_name(self):
        assert [s.name for s in resolve_selection(["fuzz"])] == ["fuzz"]

    def test_selection_keeps_user_order_and_dedups(self):
        specs = resolve_selection(["fig9", "fig1", "fig9"])
        assert [s.name for s in specs] == ["fig9", "fig1"]

    def test_selection_accepts_aliases(self):
        specs = resolve_selection(["fig10_table1"])
        assert [s.name for s in specs] == ["fig10"]

    def test_selection_reports_every_unknown(self):
        with pytest.raises(UnknownExperimentError) as excinfo:
            resolve_selection(["fig1", "bogus", "nope"])
        assert excinfo.value.unknown == ["bogus", "nope"]


class TestResultProtocol:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig1()

    def test_uniform_fields(self, result):
        assert result.name == "fig1"
        assert result.params == {}
        assert result.claim_holds is True
        assert "Camera" in result.render_text()
        assert isinstance(result.metrics(), dict)

    def test_to_dict_is_json_ready(self, result):
        import json

        data = result.to_dict()
        json.dumps(data)  # must not raise
        assert data["name"] == "fig1"
        assert data["claim_holds"] is True
        assert data["text"] == result.render_text()

    def test_round_trip(self, result):
        data = result.to_dict()
        restored = type(result).from_dict(data)
        assert isinstance(restored, RestoredResult)
        assert restored.name == result.name
        assert restored.claim_holds == result.claim_holds
        assert restored.render_text() == result.render_text()
        assert restored.to_dict() == data
        # restored results round-trip again
        assert RestoredResult.from_dict(restored.to_dict()).to_dict() == data

    def test_spec_run_merges_params(self):
        spec = REGISTRY["fig10"]
        result = spec.run(iterations=3)
        assert result.params == {"iterations": 3}
        data = result.to_dict()
        assert data["params"] == {"iterations": 3}

    def test_spec_outcome_flattens(self, result):
        outcome = REGISTRY["fig1"].outcome(result)
        assert isinstance(outcome, ExperimentOutcome)
        assert outcome.name == "fig1"
        assert outcome.claim_holds is True
        assert outcome.text == result.render_text()
        assert outcome.status == "REPRODUCED"


class TestExperimentOutcome:
    def test_positional_compat(self):
        outcome = ExperimentOutcome("x", False, "body")
        assert outcome.name == "x"
        assert outcome.status == "DEVIATION"
        assert outcome.render_text() == "body"

    def test_round_trip(self):
        outcome = ExperimentOutcome(
            "x", True, "body", params={"a": 1}, metrics={"m": 2.0}, wall_time_s=0.5
        )
        again = ExperimentOutcome.from_dict(outcome.to_dict())
        assert again == outcome

    def test_outcome_from_result_uses_protocol(self):
        spec_result = run_fig1()
        outcome = outcome_from_result(spec_result)
        assert outcome.metrics == spec_result.metrics()


class TestRegisterReplaces:
    def test_reregistration_is_idempotent(self):
        from repro.experiments.registry import register

        original = REGISTRY["fig1"]
        try:
            replacement = ExperimentSpec(
                name="fig1", runner=run_fig1, description="replaced", order=1
            )
            register(replacement)
            assert REGISTRY["fig1"].description == "replaced"
            assert len([n for n in REGISTRY if n == "fig1"]) == 1
        finally:
            register(original)

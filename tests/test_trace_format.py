"""TraceFormatError: every malformed-trace path raises the typed error."""

import json

import pytest

from repro.offline import DeviceTrace, TraceFormatError, capture_trace
from repro.offline.trace import TRACE_FORMAT_VERSION
from repro.workloads import run_scene1


@pytest.fixture(scope="module")
def trace_doc():
    run = run_scene1()
    trace = capture_trace(run.system, run.eandroid)
    return json.loads(trace.to_json())


def test_is_value_error():
    assert issubclass(TraceFormatError, ValueError)


def test_invalid_json():
    with pytest.raises(TraceFormatError, match="not valid JSON"):
        DeviceTrace.from_json("{broken")


def test_non_object_document():
    with pytest.raises(TraceFormatError, match="JSON object"):
        DeviceTrace.from_json("[1, 2, 3]")


def test_wrong_version(trace_doc):
    doc = dict(trace_doc)
    doc["format_version"] = TRACE_FORMAT_VERSION + 1
    with pytest.raises(TraceFormatError, match="format version"):
        DeviceTrace.from_json(json.dumps(doc))


def test_missing_version():
    with pytest.raises(TraceFormatError, match="format version"):
        DeviceTrace.from_json("{}")


def test_missing_field(trace_doc):
    doc = dict(trace_doc)
    del doc["captured_at"]
    with pytest.raises(TraceFormatError, match="truncated or malformed"):
        DeviceTrace.from_json(json.dumps(doc))


def test_mistyped_channel(trace_doc):
    doc = json.loads(json.dumps(trace_doc))
    doc["channels"] = [{"owner": "not-a-number-at-all"}]
    with pytest.raises(TraceFormatError, match="truncated or malformed"):
        DeviceTrace.from_json(json.dumps(doc))


def test_round_trip_still_works(trace_doc):
    restored = DeviceTrace.from_json(json.dumps(trace_doc))
    assert json.loads(restored.to_json()) == trace_doc

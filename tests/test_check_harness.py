"""The conformance harness itself: scenarios, generator, oracles,
shrinker, campaign driver, and the mutation self-check.

The self-check is the harness's own acceptance test: seed a
mis-attribution bug of exactly the kind the paper ascribes to the
baseline profilers (collateral joules inflated behind the reporting
API), and demonstrate the differential oracle catches it, the shrinker
reduces the failing scenario to a handful of ops, and the corpus entry
it writes replays.
"""

import json

import pytest

from repro.check import (
    CampaignConfig,
    METAMORPHIC_ORACLES,
    OP_KINDS,
    Op,
    Scenario,
    fuzz_packages,
    generate_scenario,
    load_corpus_entry,
    oracle_predicate,
    run_campaign,
    run_scenario,
    scenario_seeds,
    shrink,
    write_corpus_entry,
)
from repro.check.campaign import _batches
from repro.core.accounting import EAndroidAccounting


# ----------------------------------------------------------------------
# scenario scripts
# ----------------------------------------------------------------------
class TestScenarioScripts:
    def test_json_round_trip(self):
        scenario = generate_scenario(7, ops=25)
        again = Scenario.from_json(scenario.to_json())
        assert again == scenario
        assert again.script_hash() == scenario.script_hash()

    def test_script_hash_is_canonical(self):
        scenario = generate_scenario(7, ops=25)
        # Hash covers the ops, not incidental dict ordering.
        reparsed = Scenario.from_dict(
            json.loads(json.dumps(scenario.to_dict(), sort_keys=False))
        )
        assert reparsed.script_hash() == scenario.script_hash()

    def test_script_hash_changes_with_ops(self):
        a = generate_scenario(7, ops=25)
        b = a.without_ops(2, 3)
        assert a.script_hash() != b.script_hash()

    def test_unknown_op_kind_rejected(self):
        with pytest.raises(ValueError):
            Op(kind="reboot", args={})

    def test_generator_is_deterministic(self):
        a = generate_scenario(1234, ops=40)
        b = generate_scenario(1234, ops=40)
        assert a == b
        assert generate_scenario(1235, ops=40) != a

    def test_generated_ops_are_valid_kinds(self):
        scenario = generate_scenario(99, ops=40)
        assert all(op.kind in OP_KINDS for op in scenario.ops)

    def test_blocks_partition_the_script(self):
        scenario = generate_scenario(7, ops=40)
        blocks = scenario.blocks()
        flattened = list(scenario.ops[: scenario.preamble_len])
        for block in blocks:
            flattened.extend(block)
        assert flattened == list(scenario.ops)
        # Every block ends in the quiesce that makes permutation sound.
        assert all(block[-1].kind == "quiesce" for block in blocks)

    def test_permuted_reorders_blocks(self):
        scenario = generate_scenario(7, ops=40)
        order = list(range(len(scenario.block_lens)))[::-1]
        permuted = scenario.permuted(order)
        assert sorted(permuted.block_lens) == sorted(scenario.block_lens)
        assert len(permuted.ops) == len(scenario.ops)
        assert permuted.blocks() == [scenario.blocks()[i] for i in order]

    def test_dilated_scales_time_args_only(self):
        from repro.check.scenario import _TIME_ARGS

        scenario = generate_scenario(7, ops=40)
        dilated = scenario.dilated(2.0)
        for before, after in zip(scenario.ops, dilated.ops):
            assert before.kind == after.kind
            for key, value in before.args.items():
                if key == _TIME_ARGS.get(before.kind):
                    assert after.args[key] == pytest.approx(2.0 * value)
                else:
                    assert after.args[key] == value

    def test_fuzz_packages(self):
        assert list(fuzz_packages(2)) == ["com.fuzz.app0", "com.fuzz.app1"]


# ----------------------------------------------------------------------
# runner + oracles on healthy code
# ----------------------------------------------------------------------
class TestHealthyScenarios:
    @pytest.mark.parametrize("seed", [7, 11, 42])
    def test_all_oracles_pass(self, seed):
        report = run_scenario(
            generate_scenario(seed, ops=40), metamorphic=True
        )
        assert report.passed, "\n".join(str(v) for v in report.violations)

    def test_verdict_shape(self):
        scenario = generate_scenario(7, ops=40)
        verdict = run_scenario(scenario, metamorphic=False).to_verdict()
        assert verdict["seed"] == 7
        assert verdict["script_hash"] == scenario.script_hash()
        assert verdict["ok"] is True
        assert verdict["violations"] == []
        json.dumps(verdict)  # must be JSON-ready


# ----------------------------------------------------------------------
# campaign driver
# ----------------------------------------------------------------------
class TestCampaign:
    def test_scenario_seeds_are_stable(self):
        assert scenario_seeds(7, 3) == scenario_seeds(7, 5)[:3]
        assert len(set(scenario_seeds(7, 100))) == 100

    def test_batches_cover_all_seeds(self):
        seeds = scenario_seeds(7, 120)
        batches = _batches(seeds, jobs=4)
        assert [s for batch in batches for s in batch] == seeds
        assert len(batches) >= 4

    def test_small_campaign_passes_and_caches(self, tmp_path):
        config = CampaignConfig(
            fuzz=4,
            seed=7,
            jobs=1,
            ops=20,
            metamorphic=False,
            cache_dir=str(tmp_path / "cache"),
            save_dir=str(tmp_path / "out"),
        )
        report = run_campaign(config)
        assert report.passed
        assert len(report.verdicts) == 4
        bench = json.loads((tmp_path / "out" / "BENCH_fuzz.json").read_text())
        assert bench["scenarios"] == 4
        assert bench["failed"] == 0
        assert (tmp_path / "out" / "manifest.json").exists()
        # Second run replays entirely from the on-disk cache.
        again = run_campaign(config)
        assert again.verdicts == report.verdicts
        assert again.cache_stats.get("hits", 0) >= 1


# ----------------------------------------------------------------------
# mutation self-check
# ----------------------------------------------------------------------
@pytest.fixture()
def misattribution_mutant(monkeypatch):
    """Inflate every reported collateral charge by 50%.

    A mis-attribution bug behind the reporting API: the raw charge
    windows stay truthful, the reported breakdown lies — the exact shape
    the differential oracle's independent window recomputation exists to
    catch.
    """
    original = EAndroidAccounting.collateral_breakdown

    def mutant(self, host, *args, **kwargs):
        return {
            target: joules * 1.5
            for target, joules in original(self, host, *args, **kwargs).items()
        }

    monkeypatch.setattr(EAndroidAccounting, "collateral_breakdown", mutant)
    return original


class TestMutationSelfCheck:
    def test_differential_oracle_catches_and_shrinks(
        self, misattribution_mutant, tmp_path, monkeypatch
    ):
        scenario = generate_scenario(11, ops=40)
        report = run_scenario(scenario, metamorphic=False)
        assert "differential" in report.violated_oracles()

        minimal = shrink(
            scenario, oracle_predicate(["differential"]), max_probes=200
        )
        assert len(minimal.ops) <= 10
        final = run_scenario(minimal, metamorphic=False)
        assert "differential" in final.violated_oracles()

        entry = write_corpus_entry(
            tmp_path / "corpus",
            minimal,
            oracles=["differential"],
            violations=[v.to_dict() for v in final.violations],
            original_ops=len(scenario.ops),
        )
        document = load_corpus_entry(entry.path)
        replayed = Scenario.from_dict(document["scenario"])
        assert replayed == minimal
        # Replay under the mutant still fails ...
        assert not run_scenario(replayed, metamorphic=False).passed
        # ... and on healthy code the same script passes.
        monkeypatch.setattr(
            EAndroidAccounting, "collateral_breakdown", misattribution_mutant
        )
        assert run_scenario(replayed, metamorphic=False).passed

    def test_oracle_catalogue_names(self):
        # The docs/TESTING.md catalogue and the code must agree.
        from repro.check import END_ORACLES, STEP_ORACLES

        assert set(STEP_ORACLES) == {
            "energy_conservation",
            "map_link_consistency",
            "window_well_formedness",
            "no_over_charging",
            "profiler_conservation",
            "tracker_agreement",
        }
        assert set(END_ORACLES) == {"differential", "fastpath_equivalence"}
        assert set(METAMORPHIC_ORACLES) == {
            "observer_purity",
            "time_dilation",
            "window_permutation",
        }

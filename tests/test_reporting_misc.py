"""Coverage for report structures, context misc, and app plumbing."""

import pytest

from repro.accounting.base import AppEnergyEntry, EnergyProfiler, ProfilerReport
from repro.android import App, AndroidManifest, Context, explicit

from helpers import booted_system, make_app


class TestProfilerReport:
    def _report(self):
        report = ProfilerReport(profiler="test", start=0.0, end=10.0)
        report.entries.append(AppEnergyEntry(uid=1, label="A", energy_j=30.0))
        report.entries.append(AppEnergyEntry(uid=2, label="B", energy_j=70.0))
        return report.finalize()

    def test_finalize_sorts_and_percents(self):
        report = self._report()
        assert [e.label for e in report.entries] == ["B", "A"]
        assert report.entry_for("B").percent == pytest.approx(70.0)
        assert sum(e.percent for e in report.entries) == pytest.approx(100.0)

    def test_lookup_helpers(self):
        report = self._report()
        assert report.entry_for("nope") is None
        assert report.entry_for_uid(1).label == "A"
        assert report.entry_for_uid(99) is None
        assert report.energy_of("A") == 30.0
        assert report.energy_of("nope") == 0.0
        assert report.percent_of("nope") == 0.0
        assert report.total_energy_j() == 100.0

    def test_finalize_empty_report(self):
        report = ProfilerReport(profiler="t", start=0.0, end=1.0).finalize()
        assert report.entries == []
        assert report.total_energy_j() == 0.0

    def test_own_energy_subtracts_collateral(self):
        entry = AppEnergyEntry(
            uid=1, label="A", energy_j=10.0, collateral_j={"B": 4.0, "C": 1.0}
        )
        assert entry.own_energy_j == pytest.approx(5.0)

    def test_render_text_top_limits_rows(self):
        report = ProfilerReport(profiler="t", start=0.0, end=1.0)
        for i in range(20):
            report.entries.append(
                AppEnergyEntry(uid=i, label=f"App{i}", energy_j=float(i + 1))
            )
        report.finalize()
        text = report.render_text(top=3)
        assert text.count("App") == 3

    def test_abstract_profiler_rejects_report(self):
        with pytest.raises(NotImplementedError):
            EnergyProfiler().report()


class TestContextMisc:
    @pytest.fixture
    def system(self):
        return booted_system(make_app("com.app"), make_app("com.other"))

    def test_identity_properties(self, system):
        app = system.package_manager.app_for_package("com.app")
        context = Context(system, app)
        assert context.uid == app.uid
        assert context.package == "com.app"
        assert context.app is app
        assert context.system is system
        assert context.now == system.now

    def test_schedule_runs_app_code(self, system):
        app = system.package_manager.app_for_package("com.app")
        context = Context(system, app)
        fired = []
        context.schedule(5.0, lambda: fired.append(context.now))
        system.run_for(6.0)
        assert fired == [5.0]

    def test_settings_round_trip(self, system):
        app = system.package_manager.app_for_package("com.app")
        context = Context(system, app)
        context.put_setting("custom_key", 17)
        assert context.get_setting("custom_key") == 17
        assert context.get_setting("missing", "fallback") == "fallback"

    def test_stop_service_via_context(self, system):
        app = system.package_manager.app_for_package("com.app")
        context = Context(system, app)
        context.start_service(explicit("com.other", "PlainService"))
        assert context.stop_service(explicit("com.other", "PlainService")) is True
        assert context.stop_service(explicit("com.other", "PlainService")) is False


class TestAppPlumbing:
    def test_register_component(self):
        from helpers import PlainActivity

        app = App(AndroidManifest(package="com.x"))
        returned = app.register_component(PlainActivity)
        assert returned is PlainActivity
        assert app.component_class("PlainActivity") is PlainActivity

    def test_component_class_missing(self):
        from repro.android import ComponentNotFoundError

        app = App(AndroidManifest(package="com.x"))
        with pytest.raises(ComponentNotFoundError):
            app.component_class("Nope")

    def test_label_derivation(self):
        assert App(AndroidManifest(package="com.vendor.supertool")).label == "Supertool"
        assert App(AndroidManifest(package="solo")).label == "Solo"

    def test_repr_mentions_package(self):
        app = App(AndroidManifest(package="com.x"))
        assert "com.x" in repr(app)


class TestMalwareFlags:
    def test_malware_manifest_shape(self):
        """Every attack app ships launcher + payload + autostart receiver."""
        from repro.android import ComponentKind
        from repro.attacks import (
            build_background_malware,
            build_bind_malware,
            build_brightness_malware,
            build_gps_hog_malware,
            build_hijack_malware,
            build_interrupt_malware,
            build_wakelock_malware,
        )

        for builder in (
            build_hijack_malware,
            build_background_malware,
            build_bind_malware,
            build_interrupt_malware,
            build_brightness_malware,
            build_wakelock_malware,
            build_gps_hog_malware,
        ):
            manifest = builder().manifest
            assert manifest.category == "tools"  # camouflage
            kinds = {c.kind for c in manifest.components}
            assert ComponentKind.RECEIVER in kinds  # auto-start
            assert manifest.launcher_activity() is not None

    def test_payload_runs_once_by_default(self):
        from repro.attacks.base import MalwareService

        class Counting(MalwareService):
            count = 0

            def run_payload(self, intent):
                Counting.count += 1

        service = Counting()
        service.on_start_command(None)
        service.on_start_command(None)
        assert Counting.count == 1

"""Test helpers — re-exported from the public test kit."""

from repro.apps.testkit import (  # noqa: F401
    PlainActivity,
    PlainService,
    TransparentActivity,
    booted_system,
    make_app,
)

"""Exporter tests: Chrome trace-event JSON, JSONL, metrics summary."""

import json

import pytest

from repro.telemetry import (
    AttackWindowBeginEvent,
    AttackWindowEndEvent,
    Category,
    PhaseBeginEvent,
    PhaseEndEvent,
    TelemetryBus,
    WakelockAcquireEvent,
    capture,
    chrome_trace_json,
    events_to_jsonl,
    metrics_summary,
    render_metrics_text,
    to_chrome_trace,
    write_chrome_trace,
)


def _attack_pair(begin=1.0, end=5.0, link_id=1, kind="activity", uid=10001):
    return [
        AttackWindowBeginEvent(
            time=begin, kind=kind, attacker_uid=uid, target=10002, link_id=link_id
        ),
        AttackWindowEndEvent(
            time=end,
            kind=kind,
            attacker_uid=uid,
            target=10002,
            link_id=link_id,
            duration_s=end - begin,
        ),
    ]


class TestChromeTraceSchema:
    def test_required_fields_on_every_event(self):
        events = _attack_pair() + [
            WakelockAcquireEvent(time=2.0, uid=10001, lock_type="FULL_WAKE_LOCK", tag="t"),
            PhaseBeginEvent(time=0.0, phase="run"),
            PhaseEndEvent(time=6.0, phase="run"),
        ]
        doc = to_chrome_trace(events)
        assert isinstance(doc["traceEvents"], list)
        for entry in doc["traceEvents"]:
            assert "ph" in entry
            assert "pid" in entry
            if entry["ph"] != "M":  # metadata records carry no timestamp
                assert "ts" in entry
                assert isinstance(entry["ts"], int)
            assert "name" in entry

    def test_instant_events_carry_scope(self):
        doc = to_chrome_trace(
            [WakelockAcquireEvent(time=1.0, uid=1, lock_type="FULL_WAKE_LOCK", tag="t")]
        )
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instants and all(e["s"] == "t" for e in instants)

    def test_attack_window_becomes_complete_event(self):
        doc = to_chrome_trace(_attack_pair(begin=1.0, end=5.0))
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 1
        span = spans[0]
        assert span["ts"] == 1_000_000
        assert span["dur"] == 4_000_000
        assert span["name"] == "attack:activity"
        assert span["args"]["link_id"] == 1

    def test_unclosed_attack_clamps_to_end_time(self):
        begin = _attack_pair()[0]
        doc = to_chrome_trace([begin], end_time=30.0)
        (span,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert span["ts"] + span["dur"] == 30_000_000

    def test_phase_begin_end_nest_monotonically(self):
        events = [
            PhaseBeginEvent(time=0.0, phase="outer"),
            PhaseBeginEvent(time=1.0, phase="inner"),
            PhaseEndEvent(time=2.0, phase="inner"),
            PhaseEndEvent(time=3.0, phase="outer"),
        ]
        doc = to_chrome_trace(events)
        stack = []
        for entry in doc["traceEvents"]:
            if entry["ph"] == "B":
                stack.append((entry["name"], entry["ts"]))
            elif entry["ph"] == "E":
                name, begin_ts = stack.pop()
                assert name == entry["name"]
                assert entry["ts"] >= begin_ts
        assert stack == []

    def test_timestamps_sorted(self):
        events = _attack_pair() + [
            WakelockAcquireEvent(time=0.5, uid=1, lock_type="FULL_WAKE_LOCK", tag="t")
        ]
        doc = to_chrome_trace(events)
        stamps = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
        assert stamps == sorted(stamps)

    def test_per_uid_tracks_and_labels(self):
        events = [
            WakelockAcquireEvent(time=1.0, uid=7, lock_type="FULL_WAKE_LOCK", tag="t"),
            WakelockAcquireEvent(time=2.0, uid=8, lock_type="FULL_WAKE_LOCK", tag="t"),
        ]
        doc = to_chrome_trace(events, labels={7: "Malware"})
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instants[0]["tid"] != instants[1]["tid"]
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "Malware" in names and "uid 8" in names

    def test_json_round_trip(self):
        text = chrome_trace_json(_attack_pair(), indent=2)
        doc = json.loads(text)
        assert doc["otherData"]["event_count"] == 2

    def test_write_chrome_trace(self, tmp_path):
        path = write_chrome_trace(tmp_path / "sub" / "trace.json", _attack_pair())
        doc = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])


class TestFig9AttackScenario:
    def test_every_attack_yields_a_collateral_window_span(self):
        from repro.workloads import ALL_ATTACKS

        for name, runner in sorted(ALL_ATTACKS.items()):
            with capture() as recorder:
                run = runner(20.0)
            doc = to_chrome_trace(recorder.events, end_time=run.system.now)
            spans = [
                e
                for e in doc["traceEvents"]
                if e["ph"] == "X" and e["cat"] == "attack"
            ]
            assert spans, f"{name} produced no attack-window duration events"
            json.loads(json.dumps(doc))  # the whole document stays serialisable


class TestJsonl:
    def test_one_object_per_line(self):
        events = _attack_pair()
        lines = events_to_jsonl(events).splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["name"] == "attack_window_begin"
        assert first["t"] == 1.0


class TestMetrics:
    def test_summary_from_bus_and_recorder(self):
        bus = TelemetryBus()
        bus.publish(
            WakelockAcquireEvent(time=1.0, uid=1, lock_type="FULL_WAKE_LOCK", tag="t")
        )
        summary = metrics_summary(bus)
        assert summary["total_events"] == 1
        text = render_metrics_text(summary)
        assert "wakelock" in text and "1 event(s)" in text

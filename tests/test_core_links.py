"""Tests for attack links, the link graph, and element windows."""

import pytest

from repro.core import AttackKind, LinkGraph, SCREEN_TARGET
from repro.core.energy_map import CollateralMapSet, ElementWindow


class TestLinkGraph:
    def test_begin_end_lifecycle(self):
        graph = LinkGraph()
        link = graph.begin(AttackKind.ACTIVITY, 1, 2, time=5.0)
        assert link.alive
        assert graph.live_links() == [link]
        graph.end(link, time=9.0)
        assert not link.alive
        assert link.end_time == 9.0
        assert graph.live_links() == []
        assert graph.all_links() == [link]

    def test_end_idempotent(self):
        graph = LinkGraph()
        link = graph.begin(AttackKind.SCREEN, 1, SCREEN_TARGET, time=0.0)
        graph.end(link, time=1.0)
        graph.end(link, time=5.0)
        assert link.end_time == 1.0

    def test_duration(self):
        graph = LinkGraph()
        link = graph.begin(AttackKind.ACTIVITY, 1, 2, time=5.0)
        assert link.duration(now=15.0) == 10.0
        graph.end(link, time=8.0)
        assert link.duration(now=100.0) == 3.0

    def test_live_from_and_targeting(self):
        graph = LinkGraph()
        a = graph.begin(AttackKind.ACTIVITY, 1, 2, time=0.0)
        b = graph.begin(AttackKind.SERVICE_BIND, 1, 3, time=0.0)
        graph.begin(AttackKind.ACTIVITY, 9, 2, time=0.0)
        assert set(l.link_id for l in graph.live_from(1)) == {a.link_id, b.link_id}
        assert len(graph.live_targeting(2)) == 2

    def test_hosts(self):
        graph = LinkGraph()
        link = graph.begin(AttackKind.ACTIVITY, 1, 2, time=0.0)
        graph.end(link, time=1.0)
        assert graph.hosts() == {1}


class TestReachability:
    def test_direct(self):
        graph = LinkGraph()
        graph.begin(AttackKind.ACTIVITY, 1, 2, time=0.0)
        assert graph.reachable_from(1) == {2}
        assert graph.reachable_from(2) == set()

    def test_chain(self):
        """Fig. 7: A binds B, B starts C, C attacks screen."""
        graph = LinkGraph()
        graph.begin(AttackKind.SERVICE_BIND, 1, 2, time=0.0)
        graph.begin(AttackKind.ACTIVITY, 2, 3, time=0.0)
        graph.begin(AttackKind.SCREEN, 3, SCREEN_TARGET, time=0.0)
        assert graph.reachable_from(1) == {2, 3, SCREEN_TARGET}
        assert graph.reachable_from(2) == {3, SCREEN_TARGET}
        assert graph.reachable_from(3) == {SCREEN_TARGET}

    def test_chain_breaks_when_middle_link_ends(self):
        graph = LinkGraph()
        ab = graph.begin(AttackKind.SERVICE_BIND, 1, 2, time=0.0)
        graph.begin(AttackKind.ACTIVITY, 2, 3, time=0.0)
        graph.end(ab, time=5.0)
        assert graph.reachable_from(1) == set()
        assert graph.reachable_from(2) == {3}

    def test_cycle_does_not_self_charge(self):
        graph = LinkGraph()
        graph.begin(AttackKind.ACTIVITY, 1, 2, time=0.0)
        graph.begin(AttackKind.ACTIVITY, 2, 1, time=0.0)
        assert graph.reachable_from(1) == {2}
        assert graph.reachable_from(2) == {1}

    def test_screen_is_terminal(self):
        graph = LinkGraph()
        graph.begin(AttackKind.WAKELOCK, 1, SCREEN_TARGET, time=0.0)
        graph.begin(AttackKind.ACTIVITY, 2, 1, time=0.0)
        # 2 -> 1 -> screen: screen reachable from 2 through 1.
        assert graph.reachable_from(2) == {1, SCREEN_TARGET}

    def test_diamond(self):
        graph = LinkGraph()
        graph.begin(AttackKind.ACTIVITY, 1, 2, time=0.0)
        graph.begin(AttackKind.ACTIVITY, 1, 3, time=0.0)
        graph.begin(AttackKind.SERVICE_BIND, 2, 4, time=0.0)
        graph.begin(AttackKind.SERVICE_BIND, 3, 4, time=0.0)
        assert graph.reachable_from(1) == {2, 3, 4}


class TestElementWindow:
    def test_open_close_cycle(self):
        window = ElementWindow(target=7)
        window.open(1.0)
        assert window.is_open
        window.close(4.0)
        assert not window.is_open
        assert window.closed == [(1.0, 4.0)]

    def test_double_open_noop(self):
        window = ElementWindow(target=7)
        window.open(1.0)
        window.open(2.0)
        window.close(3.0)
        assert window.closed == [(1.0, 3.0)]

    def test_close_when_closed_noop(self):
        window = ElementWindow(target=7)
        window.close(3.0)
        assert window.closed == []

    def test_zero_width_window_dropped(self):
        window = ElementWindow(target=7)
        window.open(3.0)
        window.close(3.0)
        assert window.closed == []
        assert not window.is_open

    def test_intervals_include_open_tail(self):
        window = ElementWindow(target=7)
        window.open(0.0)
        window.close(2.0)
        window.open(5.0)
        assert window.intervals(until=8.0) == [(0.0, 2.0), (5.0, 8.0)]

    def test_total_duration(self):
        window = ElementWindow(target=7)
        window.open(0.0)
        window.close(2.0)
        window.open(5.0)
        assert window.total_duration(until=8.0) == 5.0

    def test_clipped_intervals(self):
        window = ElementWindow(target=7)
        window.open(0.0)
        window.close(10.0)
        window.open(20.0)
        window.close(30.0)
        assert window.clipped_intervals(5.0, 25.0) == [(5.0, 10.0), (20.0, 25.0)]

    def test_clip_excludes_outside(self):
        window = ElementWindow(target=7)
        window.open(0.0)
        window.close(10.0)
        assert window.clipped_intervals(10.0, 20.0) == []


class TestCollateralMapSet:
    def test_sync_opens_reachable(self):
        graph = LinkGraph()
        maps = CollateralMapSet()
        graph.begin(AttackKind.ACTIVITY, 1, 2, time=3.0)
        maps.sync(3.0, graph)
        assert maps.map_for(1).open_targets() == {2}

    def test_sync_closes_unreachable(self):
        graph = LinkGraph()
        maps = CollateralMapSet()
        link = graph.begin(AttackKind.ACTIVITY, 1, 2, time=3.0)
        maps.sync(3.0, graph)
        graph.end(link, time=9.0)
        maps.sync(9.0, graph)
        element = maps.map_for(1).element(2)
        assert not element.is_open
        assert element.closed == [(3.0, 9.0)]

    def test_chain_propagation_on_sync(self):
        """A's map picks up C when B (already attacking C) gets bound."""
        graph = LinkGraph()
        maps = CollateralMapSet()
        graph.begin(AttackKind.SERVICE_BIND, 2, 3, time=0.0)
        maps.sync(0.0, graph)
        graph.begin(AttackKind.SERVICE_BIND, 1, 2, time=5.0)
        maps.sync(5.0, graph)
        assert maps.map_for(1).open_targets() == {2, 3}
        # C charged to A only from t=5, when the chain formed.
        assert maps.map_for(1).element(3).intervals(until=10.0) == [(5.0, 10.0)]

    def test_maps_containing(self):
        graph = LinkGraph()
        maps = CollateralMapSet()
        graph.begin(AttackKind.ACTIVITY, 1, 2, time=0.0)
        graph.begin(AttackKind.ACTIVITY, 9, 2, time=0.0)
        maps.sync(0.0, graph)
        assert len(maps.maps_containing(2)) == 2
        assert maps.maps_containing(42) == []

    def test_hosts_excludes_empty_maps(self):
        maps = CollateralMapSet()
        maps.map_for(5)  # created but never populated
        assert maps.hosts() == set()

"""Edge cases of :class:`repro.core.energy_map.ElementWindow`.

The charge-window arithmetic underlies every collateral joule E-Android
reports (and the conformance harness's independent recomputation), so
the degenerate shapes — zero-length windows, closing at the opening
instant, clipping through an open window — are pinned here.
"""

import pytest

from repro.core.energy_map import ElementWindow


@pytest.fixture()
def window():
    return ElementWindow(target=10001)


class TestOpenClose:
    def test_close_at_open_time_records_nothing(self, window):
        window.open(5.0)
        window.close(5.0)
        assert window.closed == []
        assert not window.is_open

    def test_close_before_open_time_records_nothing(self, window):
        window.open(5.0)
        window.close(4.0)
        assert window.closed == []
        assert not window.is_open

    def test_reopen_while_open_is_noop(self, window):
        window.open(1.0)
        window.open(9.0)
        assert window.open_since == 1.0

    def test_close_when_never_opened_is_noop(self, window):
        window.close(3.0)
        assert window.closed == []

    def test_normal_cycle(self, window):
        window.open(1.0)
        window.close(4.0)
        window.open(6.0)
        window.close(9.0)
        assert window.closed == [(1.0, 4.0), (6.0, 9.0)]


class TestIntervals:
    def test_open_window_truncated_at_until(self, window):
        window.open(2.0)
        assert window.intervals(until=5.0) == [(2.0, 5.0)]

    def test_until_at_open_instant_excludes_open_window(self, window):
        window.open(2.0)
        assert window.intervals(until=2.0) == []
        assert window.total_duration(until=2.0) == 0.0

    def test_until_before_open_instant_excludes_open_window(self, window):
        window.close(1.0)  # no-op
        window.open(8.0)
        assert window.intervals(until=3.0) == []

    def test_until_inside_open_window(self, window):
        window.open(1.0)
        window.close(4.0)
        window.open(6.0)
        assert window.intervals(until=7.5) == [(1.0, 4.0), (6.0, 7.5)]
        assert window.total_duration(until=7.5) == pytest.approx(4.5)

    def test_closed_windows_past_until_are_not_truncated(self, window):
        # intervals() truncates only the open window; callers that need
        # range clipping use clipped_intervals().
        window.open(1.0)
        window.close(4.0)
        assert window.intervals(until=2.0) == [(1.0, 4.0)]


class TestClippedIntervals:
    def test_clip_spanning_open_window(self, window):
        window.open(1.0)
        window.close(4.0)
        window.open(6.0)
        assert window.clipped_intervals(2.0, 8.0) == [(2.0, 4.0), (6.0, 8.0)]

    def test_clip_to_empty_range(self, window):
        window.open(1.0)
        window.close(4.0)
        assert window.clipped_intervals(4.0, 4.0) == []
        assert window.clipped_intervals(9.0, 12.0) == []

    def test_clip_excludes_zero_length_overlap(self, window):
        window.open(1.0)
        window.close(4.0)
        # [4, 8) touches the window only at the boundary point.
        assert window.clipped_intervals(4.0, 8.0) == []

    def test_clip_interior(self, window):
        window.open(0.0)
        window.close(10.0)
        assert window.clipped_intervals(2.5, 7.5) == [(2.5, 7.5)]

    def test_total_duration_matches_clip_over_full_range(self, window):
        window.open(1.0)
        window.close(4.0)
        window.open(6.0)
        until = 9.0
        clipped = window.clipped_intervals(0.0, until)
        assert sum(b - a for a, b in clipped) == pytest.approx(
            window.total_duration(until)
        )

"""Unit tests for the hardware energy meter and battery model."""

import pytest

from repro.power import (
    Battery,
    EnergyMeter,
    SCREEN_OWNER,
    SYSTEM_OWNER,
)
from repro.sim import Kernel


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def meter(kernel):
    return EnergyMeter(kernel)


class TestEnergyMeter:
    def test_energy_single_channel(self, kernel, meter):
        meter.set_draw(10001, "cpu", 1000.0)
        kernel.run_for(10.0)
        assert meter.energy_j(owner=10001) == pytest.approx(10.0)

    def test_zero_draw_channels_not_materialised(self, meter):
        meter.set_draw(10001, "cpu", 0.0)
        assert meter.channels() == []

    def test_energy_filters(self, kernel, meter):
        meter.set_draw(1, "cpu", 1000.0)
        meter.set_draw(1, "radio", 500.0)
        meter.set_draw(2, "cpu", 2000.0)
        kernel.run_for(10.0)
        assert meter.energy_j(owner=1) == pytest.approx(15.0)
        assert meter.energy_j(component="cpu") == pytest.approx(30.0)
        assert meter.energy_j(owner=1, component="cpu") == pytest.approx(10.0)
        assert meter.energy_j() == pytest.approx(35.0)

    def test_energy_by_owner(self, kernel, meter):
        meter.set_draw(1, "cpu", 1000.0)
        meter.set_draw(2, "cpu", 3000.0)
        kernel.run_for(5.0)
        by_owner = meter.energy_by_owner()
        assert by_owner[1] == pytest.approx(5.0)
        assert by_owner[2] == pytest.approx(15.0)

    def test_energy_by_component(self, kernel, meter):
        meter.set_draw(1, "cpu", 1000.0)
        meter.set_draw(1, "gps", 500.0)
        kernel.run_for(4.0)
        breakdown = meter.energy_by_component(1)
        assert breakdown["cpu"] == pytest.approx(4.0)
        assert breakdown["gps"] == pytest.approx(2.0)

    def test_windowed_energy(self, kernel, meter):
        meter.set_draw(1, "cpu", 1000.0)
        kernel.run_for(10.0)
        meter.set_draw(1, "cpu", 0.0)
        kernel.run_for(10.0)
        assert meter.energy_j(owner=1, start=5.0, end=15.0) == pytest.approx(5.0)

    def test_current_power(self, kernel, meter):
        meter.set_draw(1, "cpu", 700.0)
        meter.set_draw(SCREEN_OWNER, "screen", 300.0)
        assert meter.current_power_mw() == pytest.approx(1000.0)
        assert meter.current_power_mw(owner=1) == pytest.approx(700.0)

    def test_listener_notified(self, kernel, meter):
        seen = []
        meter.add_listener(lambda t, owner, comp, mw: seen.append((t, owner, comp, mw)))
        kernel.run_for(2.0)
        meter.set_draw(5, "cpu", 123.0)
        assert seen == [(2.0, 5, "cpu", 123.0)]

    def test_screen_and_app_helpers(self, kernel, meter):
        meter.set_draw(SCREEN_OWNER, "screen", 400.0)
        meter.set_draw(42, "cpu", 100.0)
        kernel.run_for(10.0)
        assert meter.screen_energy_j() == pytest.approx(4.0)
        assert meter.app_energy_j(42) == pytest.approx(1.0)
        assert meter.total_energy_j() == pytest.approx(5.0)

    def test_total_power_breakpoints(self, kernel, meter):
        meter.set_draw(1, "cpu", 100.0)
        kernel.run_for(10.0)
        meter.set_draw(2, "gps", 200.0)
        curve = meter.total_power_breakpoints()
        assert curve == [(0.0, 100.0), (10.0, 300.0)]

    def test_owners(self, kernel, meter):
        meter.set_draw(1, "cpu", 1.0)
        meter.set_draw(SYSTEM_OWNER, "base", 1.0)
        assert set(meter.owners()) == {1, SYSTEM_OWNER}


class TestBattery:
    def test_percent_full_at_start(self, kernel, meter):
        battery = Battery(kernel, meter, capacity_j=100.0)
        assert battery.percent() == 100.0

    def test_invalid_capacity(self, kernel, meter):
        with pytest.raises(ValueError):
            Battery(kernel, meter, capacity_j=0.0)

    def test_linear_discharge(self, kernel, meter):
        battery = Battery(kernel, meter, capacity_j=100.0)
        meter.set_draw(1, "cpu", 1000.0)  # 1 W -> 100 J in 100 s
        kernel.run_for(50.0)
        assert battery.percent() == pytest.approx(50.0)
        assert battery.energy_used_j() == pytest.approx(50.0)

    def test_percent_clamps_at_zero(self, kernel, meter):
        battery = Battery(kernel, meter, capacity_j=10.0)
        meter.set_draw(1, "cpu", 1000.0)
        kernel.run_for(100.0)
        assert battery.percent() == 0.0
        assert battery.is_dead()

    def test_time_until_dead(self, kernel, meter):
        battery = Battery(kernel, meter, capacity_j=100.0)
        meter.set_draw(1, "cpu", 1000.0)
        kernel.run_for(1.0)  # materialise the breakpoint
        assert battery.time_until_dead() == pytest.approx(100.0)

    def test_time_of_percent_piecewise(self, kernel, meter):
        battery = Battery(kernel, meter, capacity_j=100.0)
        meter.set_draw(1, "cpu", 1000.0)  # 1 W for 10 s -> 10 J
        kernel.run_for(10.0)
        meter.set_draw(1, "cpu", 2000.0)  # then 2 W
        kernel.run_for(1.0)
        # 50% = 50 J: 10 J in first 10 s, then 40 J at 2 W = 20 s more.
        assert battery.time_of_percent(50.0) == pytest.approx(30.0)

    def test_time_of_percent_never_reached(self, kernel, meter):
        battery = Battery(kernel, meter, capacity_j=1e9)
        meter.set_draw(1, "cpu", 0.0)
        assert battery.time_until_dead() is None

    def test_invalid_percent(self, kernel, meter):
        battery = Battery(kernel, meter, capacity_j=10.0)
        with pytest.raises(ValueError):
            battery.time_of_percent(150.0)

    def test_discharge_curve_monotone(self, kernel, meter):
        battery = Battery(kernel, meter, capacity_j=100.0)
        meter.set_draw(1, "cpu", 1000.0)
        kernel.run_for(100.0)
        curve = battery.discharge_curve(step_s=10.0)
        percents = [sample.percent for sample in curve]
        assert percents[0] == pytest.approx(100.0)
        assert percents[-1] == pytest.approx(0.0)
        assert all(a >= b for a, b in zip(percents, percents[1:]))

    def test_discharge_curve_invalid_step(self, kernel, meter):
        battery = Battery(kernel, meter, capacity_j=100.0)
        with pytest.raises(ValueError):
            battery.discharge_curve(step_s=0.0)

    def test_per_percent_times(self, kernel, meter):
        battery = Battery(kernel, meter, capacity_j=100.0)
        meter.set_draw(1, "cpu", 1000.0)
        kernel.run_for(1.0)
        levels = battery.per_percent_times()
        assert levels[0][0] == 99
        assert levels[0][1] == pytest.approx(1.0)
        assert levels[-1][0] == 0
        assert levels[-1][1] == pytest.approx(100.0)

    def test_battery_epoch_after_kernel_start(self, kernel, meter):
        meter.set_draw(1, "cpu", 1000.0)
        kernel.run_for(10.0)
        battery = Battery(kernel, meter, capacity_j=100.0)
        kernel.run_for(10.0)
        # Only energy after the epoch counts.
        assert battery.energy_used_j() == pytest.approx(10.0)
        assert battery.percent() == pytest.approx(90.0)


class TestBatteryInverseProperty:
    """time_of_percent is the inverse of percent(t)."""

    def test_inverse_roundtrip(self, kernel, meter):
        from hypothesis import given, strategies as st

        battery = Battery(kernel, meter, capacity_j=1000.0)
        meter.set_draw(1, "cpu", 800.0)
        kernel.run_for(100.0)
        meter.set_draw(1, "cpu", 2400.0)
        kernel.run_for(100.0)
        meter.set_draw(1, "cpu", 500.0)
        kernel.run_for(10.0)
        for target in (95.0, 80.0, 60.0, 40.0, 10.0, 0.0):
            t = battery.time_of_percent(target)
            assert t is not None
            assert battery.percent(t) == pytest.approx(target, abs=1e-6)

    def test_monotone_targets_monotone_times(self, kernel, meter):
        battery = Battery(kernel, meter, capacity_j=500.0)
        meter.set_draw(1, "cpu", 1000.0)
        kernel.run_for(1.0)
        times = [battery.time_of_percent(p) for p in (90.0, 70.0, 50.0, 30.0, 0.0)]
        assert all(t is not None for t in times)
        assert times == sorted(times)

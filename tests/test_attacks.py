"""Integration tests for the six collateral energy attacks (+ variants).

Each test checks both halves of the paper's claim:
(1) the attack drains real energy while the malware's *direct* ledger
    stays near zero (stealth against Android/BatteryStats);
(2) E-Android's collateral accounting exposes the malware.
"""

import pytest

from repro.accounting import BatteryStats
from repro.android import AndroidSystem, ServiceState, explicit
from repro.apps import (
    CAMERA_PACKAGE,
    VICTIM_PACKAGE,
    build_camera_app,
    build_victim_app,
)
from repro.attacks import (
    BACKGROUND_PACKAGE,
    BIND_PACKAGE,
    BRIGHTNESS_PACKAGE,
    HIJACK_PACKAGE,
    HYBRID_PACKAGE,
    INTERRUPT_PACKAGE,
    MULTI_PACKAGE,
    RELAY_B_PACKAGE,
    RELAY_C_PACKAGE,
    WAKELOCK_PACKAGE,
    build_background_malware,
    build_bind_malware,
    build_brightness_malware,
    build_hijack_malware,
    build_hybrid_malware,
    build_interrupt_malware,
    build_multi_malware,
    build_relay_b,
    build_relay_c,
    build_wakelock_malware,
)
from repro.core import SCREEN_TARGET, attach_eandroid


def rig(*apps):
    system = AndroidSystem()
    for app in apps:
        system.install(app)
    system.boot()
    return system, attach_eandroid(system)


class TestAttack1Hijack:
    def test_camera_hijack_charges_malware(self):
        system, ea = rig(build_camera_app(), build_hijack_malware())
        system.launch_app(HIJACK_PACKAGE)
        system.run_for(60.0)
        malware = system.uid_of(HIJACK_PACKAGE)
        camera = system.uid_of(CAMERA_PACKAGE)
        # Stealth: Android sees (almost) nothing on the malware.
        android = BatteryStats(system).report()
        assert android.percent_of("Flashlight") < 1.0
        assert android.entry_for_uid(camera).energy_j > 10.0
        # E-Android: the camera's burn lands on the malware.
        breakdown = ea.accounting.collateral_breakdown(malware)
        assert breakdown[camera] == pytest.approx(
            system.hardware.meter.energy_j(owner=camera), rel=0.01
        )

    def test_no_permissions_needed(self):
        malware = build_hijack_malware()
        assert malware.manifest.uses_permissions == frozenset()


class TestAttack2Background:
    def test_victims_buried_and_draining(self):
        system, ea = rig(build_victim_app(), build_background_malware())
        system.launch_app(BACKGROUND_PACKAGE)
        assert system.foreground_package() == BACKGROUND_PACKAGE
        victim = system.uid_of(VICTIM_PACKAGE)
        records = system.am.supervisor.records_of_uid(victim)
        assert records and not any(r.visible for r in records)
        start = system.now
        system.run_for(60.0)
        # Victim drains in the background...
        assert system.hardware.meter.energy_j(owner=victim, start=start) > 1.0
        # ...and E-Android charges it to the malware.
        malware = system.uid_of(BACKGROUND_PACKAGE)
        assert victim in ea.accounting.collateral_breakdown(malware)


class TestAttack3BindService:
    def test_bind_keeps_stopped_service_alive(self):
        system, ea = rig(build_victim_app(), build_bind_malware())
        system.launch_app(BIND_PACKAGE)
        system.press_home()
        # Victim starts its own service, then stops it immediately (§VI-A).
        victim = system.uid_of(VICTIM_PACKAGE)
        svc = explicit(VICTIM_PACKAGE, "VictimWorkService")
        record = system.am.start_service(victim, svc)
        system.run_for(1.0)  # malware's poll notices and binds
        system.am.stop_service(victim, svc)
        assert record.state == ServiceState.RUNNING  # malware keeps it alive
        system.run_for(60.0)
        malware = system.uid_of(BIND_PACKAGE)
        breakdown = ea.accounting.collateral_breakdown(malware)
        assert breakdown[victim] > 0

    def test_attack_window_excludes_pre_bind_energy(self):
        system, ea = rig(build_victim_app(), build_bind_malware())
        system.launch_app(BIND_PACKAGE)
        system.press_home()
        victim = system.uid_of(VICTIM_PACKAGE)
        svc = explicit(VICTIM_PACKAGE, "VictimWorkService")
        system.am.start_service(victim, svc)
        system.run_for(1.0)
        bind_time = 0.5  # malware polls at 0.5 s cadence after launch
        system.run_for(60.0)
        malware = system.uid_of(BIND_PACKAGE)
        charged = ea.accounting.collateral_breakdown(malware)[victim]
        total = system.hardware.meter.energy_j(owner=victim)
        assert charged <= total


class TestAttack4Interrupt:
    def run_attack(self):
        system, ea = rig(build_victim_app(), build_interrupt_malware())
        system.launch_app(INTERRUPT_PACKAGE)
        system.press_home()
        system.launch_app(VICTIM_PACKAGE)
        system.run_for(5.0)
        system.press_back()  # exit dialog appears
        system.run_for(1.0)  # side channel fires; cover placed
        system.tap_dialog_ok()  # user "quits"; actually goes to stop state
        return system, ea

    def test_victim_survives_fake_quit_with_wakelock(self):
        system, ea = self.run_attack()
        victim = system.uid_of(VICTIM_PACKAGE)
        records = system.am.supervisor.records_of_uid(victim)
        assert records  # not destroyed
        assert system.power_manager.holds_screen_lock(victim)
        system.run_for(3600.0)
        assert system.display.is_screen_on  # wakelock pins the screen

    def test_eandroid_charges_malware_for_screen(self):
        system, ea = self.run_attack()
        system.run_for(60.0)
        malware = system.uid_of(INTERRUPT_PACKAGE)
        victim = system.uid_of(VICTIM_PACKAGE)
        breakdown = ea.accounting.collateral_breakdown(malware)
        assert victim in breakdown
        assert SCREEN_TARGET in breakdown  # via the victim's wakelock link

    def test_android_blames_victim_not_malware(self):
        system, ea = self.run_attack()
        system.run_for(60.0)
        report = BatteryStats(system).report()
        assert report.percent_of("Compass") < 1.0

    def test_side_channel_detects_only_exit_dialog(self):
        system, ea = rig(build_victim_app(), build_interrupt_malware())
        system.launch_app(INTERRUPT_PACKAGE)
        system.press_home()
        system.launch_app(VICTIM_PACKAGE)
        # No dialog: malware must NOT cover anything.
        system.run_for(10.0)
        assert system.foreground_package() == VICTIM_PACKAGE


class TestAttack5Brightness:
    def test_background_brightness_bump(self):
        system, ea = rig(build_victim_app(), build_brightness_malware(delta_levels=60))
        before = system.display.brightness
        system.launch_app(BRIGHTNESS_PACKAGE)
        system.run_for(0.1)
        assert system.display.brightness == before + 60
        # The self-close activity is gone; foreground is malware's main UI.
        assert system.foreground_package() == BRIGHTNESS_PACKAGE

    def test_auto_mode_camouflage(self):
        system, ea = rig(build_brightness_malware(delta_levels=60))
        system.systemui.user_set_auto_mode(True)
        auto_level = system.display.auto_brightness
        system.launch_app(BRIGHTNESS_PACKAGE)
        system.run_for(0.1)
        assert not system.display.is_auto_mode
        assert system.display.brightness == min(255, auto_level + 60)

    def test_eandroid_charges_malware_for_screen(self):
        system, ea = rig(build_brightness_malware(target_level=255))
        system.launch_app(BRIGHTNESS_PACKAGE)
        system.run_for(60.0)
        malware = system.uid_of(BRIGHTNESS_PACKAGE)
        breakdown = ea.accounting.collateral_breakdown(malware)
        assert breakdown[SCREEN_TARGET] > 0

    def test_user_slider_ends_attack(self):
        system, ea = rig(build_brightness_malware(target_level=255))
        system.launch_app(BRIGHTNESS_PACKAGE)
        system.run_for(10.0)
        system.systemui.user_set_brightness(100)
        assert ea.accounting.live_attacks() == [] or all(
            l.kind.value != "screen" for l in ea.accounting.live_attacks()
        )


class TestAttack6Wakelock:
    def test_background_lock_keeps_screen_on(self):
        system, ea = rig(build_victim_app(), build_wakelock_malware())
        system.launch_app(WAKELOCK_PACKAGE)
        system.press_home()
        system.launch_app(VICTIM_PACKAGE)
        system.run_for(3600.0)
        assert system.display.is_screen_on

    def test_eandroid_charges_malware_for_screen(self):
        system, ea = rig(build_victim_app(), build_wakelock_malware())
        system.launch_app(VICTIM_PACKAGE)
        system.press_home()
        system.launch_app(WAKELOCK_PACKAGE)
        system.press_home()  # malware's lock acquired while foreground? no:
        # the service acquired it when the activity resumed; by pressing
        # home the malware leaves the foreground with the lock held.
        system.run_for(60.0)
        malware = system.uid_of(WAKELOCK_PACKAGE)
        breakdown = ea.accounting.collateral_breakdown(malware)
        assert SCREEN_TARGET in breakdown
        assert breakdown[SCREEN_TARGET] > 0


class TestMultiAttack:
    def test_union_not_sum(self):
        system, ea = rig(build_victim_app(), build_multi_malware())
        system.launch_app(MULTI_PACKAGE)
        system.run_for(60.0)
        malware = system.uid_of(MULTI_PACKAGE)
        victim = system.uid_of(VICTIM_PACKAGE)
        charged = ea.accounting.collateral_breakdown(malware)[victim]
        ground = system.hardware.meter.energy_j(owner=victim)
        assert charged <= ground + 1e-9
        assert charged > 0

    def test_several_live_links_one_open_window(self):
        system, ea = rig(build_victim_app(), build_multi_malware())
        system.launch_app(MULTI_PACKAGE)
        malware = system.uid_of(MULTI_PACKAGE)
        victim = system.uid_of(VICTIM_PACKAGE)
        live = [l for l in ea.accounting.live_attacks() if l.target == victim]
        assert len(live) >= 3  # bind + start + activity (+ interrupt)
        element = ea.accounting.map_for(malware).element(victim)
        assert element.is_open
        assert element.closed == []


class TestHybridChain:
    def test_chain_reaches_screen(self):
        system, ea = rig(
            build_relay_b(), build_relay_c(), build_hybrid_malware()
        )
        system.launch_app(HYBRID_PACKAGE)
        system.run_for(30.0)
        malware = system.uid_of(HYBRID_PACKAGE)
        b = system.uid_of(RELAY_B_PACKAGE)
        c = system.uid_of(RELAY_C_PACKAGE)
        breakdown = ea.accounting.collateral_breakdown(malware)
        assert set(breakdown) >= {b, c, SCREEN_TARGET}

    def test_brightness_raised_by_leaf(self):
        system, ea = rig(build_relay_b(), build_relay_c(), build_hybrid_malware())
        system.launch_app(HYBRID_PACKAGE)
        system.run_for(1.0)
        assert system.display.brightness == 255


class TestAutoStart:
    def test_malware_autostarts_on_unlock(self):
        system, ea = rig(build_camera_app(), build_hijack_malware())
        # Never tapped: the unlock broadcast wakes the payload.
        system.unlock_screen()
        system.run_for(10.0)
        camera = system.uid_of(CAMERA_PACKAGE)
        assert system.hardware.meter.energy_j(owner=camera) > 0


class TestMultiVictimBackground:
    def test_three_victims_buried_and_charged(self):
        """§III-B attack #2: 'malware can open other apps concurrently'."""
        from repro.apps.demo import build_victim_app
        from repro.attacks.background import build_background_malware

        victims = [
            ("com.victim.one", "VictimMainActivity"),
            ("com.victim.two", "VictimMainActivity"),
            ("com.victim.three", "VictimMainActivity"),
        ]
        system = AndroidSystem()
        for package, _ in victims:
            system.install(build_victim_app(package=package))
        system.install(build_background_malware(targets=tuple(victims)))
        system.boot()
        ea = attach_eandroid(system)
        system.launch_app(BACKGROUND_PACKAGE)
        system.run_for(60.0)
        malware = system.uid_of(BACKGROUND_PACKAGE)
        breakdown = ea.accounting.collateral_breakdown(malware)
        for package, _ in victims:
            uid = system.uid_of(package)
            records = system.am.supervisor.records_of_uid(uid)
            assert records and not any(r.visible for r in records)
            assert breakdown.get(uid, 0.0) > 0


class TestContextPermissionChecks:
    def test_camera_requires_permission(self):
        from helpers import make_app
        from repro.android import Context, SecurityException

        system = AndroidSystem()
        app = system.install(make_app("com.nocam", permissions=()))
        system.boot()
        context = Context(system, app)
        with pytest.raises(SecurityException):
            context.open_camera()

    def test_gps_requires_permission(self):
        from helpers import make_app
        from repro.android import Context, SecurityException

        system = AndroidSystem()
        app = system.install(make_app("com.nogps", permissions=()))
        system.boot()
        context = Context(system, app)
        with pytest.raises(SecurityException):
            context.start_gps()


class TestGpsHogExtension:
    def test_gps_hog_charges_malware(self):
        from repro.apps import MAPS_PACKAGE, build_maps_app
        from repro.attacks import GPS_HOG_PACKAGE, build_gps_hog_malware

        system, ea = rig(build_maps_app(), build_gps_hog_malware())
        system.launch_app(GPS_HOG_PACKAGE)
        system.press_home()
        assert system.hardware.gps.is_on()
        system.run_for(120.0)
        malware = system.uid_of(GPS_HOG_PACKAGE)
        maps_uid = system.uid_of(MAPS_PACKAGE)
        breakdown = ea.accounting.collateral_breakdown(malware)
        assert breakdown[maps_uid] == pytest.approx(
            system.hardware.meter.energy_j(owner=maps_uid), rel=0.01
        )
        # Stealth: stock Android shows nothing on the converter.
        assert BatteryStats(system).report().percent_of("Unitconverter") < 1.0

    def test_no_permissions_needed(self):
        from repro.attacks import build_gps_hog_malware

        assert build_gps_hog_malware().manifest.uses_permissions == frozenset()

"""Tests for the utilization-model calibration pipeline (§II)."""

import pytest
from hypothesis import given, strategies as st

from repro.power import (
    CalibrationSample,
    CpuCalibrator,
    LinearPowerModel,
    NEXUS4,
    fit_linear_model,
)


class TestFitLinearModel:
    def test_exact_fit_on_linear_data(self):
        samples = [CalibrationSample(u / 10, 100.0 + 50.0 * u / 10) for u in range(11)]
        model = fit_linear_model(samples)
        assert model.beta0_mw == pytest.approx(100.0)
        assert model.beta1_mw == pytest.approx(50.0)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            fit_linear_model([CalibrationSample(0.5, 100.0)])

    def test_degenerate_utilization(self):
        with pytest.raises(ValueError):
            fit_linear_model(
                [CalibrationSample(0.5, 100.0), CalibrationSample(0.5, 120.0)]
            )

    def test_predict_energy(self):
        model = LinearPowerModel(beta0_mw=100.0, beta1_mw=400.0, samples=11)
        # 300 mW for 10 s = 3 J.
        assert model.predict_energy_j(0.5, 10.0) == pytest.approx(3.0)

    @given(
        st.floats(min_value=1.0, max_value=500.0),
        st.floats(min_value=0.0, max_value=1000.0),
    )
    def test_recovers_arbitrary_lines(self, beta1, beta0):
        samples = [
            CalibrationSample(u / 8, beta0 + beta1 * u / 8) for u in range(9)
        ]
        model = fit_linear_model(samples)
        assert model.beta0_mw == pytest.approx(beta0, rel=1e-6, abs=1e-6)
        assert model.beta1_mw == pytest.approx(beta1, rel=1e-6, abs=1e-6)


class TestCpuCalibrator:
    def test_noise_free_sweep_recovers_profile(self):
        """Against the simulator the fitted model is exact: intercept =
        idle floor, slope = dynamic span at the top frequency."""
        model, samples = CpuCalibrator(NEXUS4, dwell_s=5.0).calibrate()
        expected_slope = NEXUS4.cpu.active_mw[-1] - NEXUS4.cpu.idle_mw
        assert model.beta1_mw == pytest.approx(expected_slope, rel=1e-6)
        assert model.beta0_mw == pytest.approx(NEXUS4.cpu.idle_mw, rel=1e-6)
        assert model.error_rate(samples) < 1e-9

    def test_noisy_sweep_has_bounded_error(self):
        """With sensor noise the error rate appears — the §II phenomenon
        (real utilization models err by up to ~20%)."""
        calibrator = CpuCalibrator(NEXUS4, dwell_s=5.0, noise_stddev_mw=60.0, seed=3)
        model, _ = calibrator.calibrate()
        clean = CpuCalibrator(NEXUS4, dwell_s=5.0).sweep()
        error = model.error_rate(clean)
        assert 0.0 < error < 0.5

    def test_deterministic_given_seed(self):
        a = CpuCalibrator(NEXUS4, noise_stddev_mw=30.0, seed=9).sweep()
        b = CpuCalibrator(NEXUS4, noise_stddev_mw=30.0, seed=9).sweep()
        assert a == b

    def test_custom_levels(self):
        samples = CpuCalibrator(NEXUS4, dwell_s=2.0).sweep(levels=[0.0, 1.0])
        assert [s.utilization for s in samples] == [0.0, 1.0]
        assert samples[1].power_mw > samples[0].power_mw

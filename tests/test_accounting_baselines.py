"""Tests for the BatteryStats and PowerTutor baseline policies."""

import pytest

from repro.accounting import (
    BatteryStats,
    PowerTutor,
    SCREEN_LABEL,
)

from helpers import booted_system, make_app


@pytest.fixture
def system():
    return booted_system(make_app("com.foo"), make_app("com.bar"))


class TestBatteryStats:
    def test_screen_is_standalone_row(self, system):
        system.run_for(10.0)
        report = BatteryStats(system).report()
        screen = report.entry_for(SCREEN_LABEL)
        assert screen is not None and screen.is_screen
        assert screen.energy_j > 0

    def test_app_charged_for_direct_usage_only(self, system):
        foo = system.uid_of("com.foo")
        system.hardware.cpu.set_utilization(foo, 0.5)
        system.run_for(10.0)
        report = BatteryStats(system).report()
        entry = report.entry_for_uid(foo)
        assert entry.energy_j == pytest.approx(
            system.hardware.meter.energy_j(owner=foo)
        )

    def test_percentages_sum_to_100(self, system):
        system.hardware.cpu.set_utilization(system.uid_of("com.foo"), 0.5)
        system.run_for(10.0)
        report = BatteryStats(system).report()
        assert sum(e.percent for e in report.entries) == pytest.approx(100.0)

    def test_entries_sorted_descending(self, system):
        system.hardware.cpu.set_utilization(system.uid_of("com.foo"), 0.1)
        system.hardware.cpu.set_utilization(system.uid_of("com.bar"), 0.9)
        system.run_for(10.0)
        report = BatteryStats(system).report()
        energies = [e.energy_j for e in report.entries]
        assert energies == sorted(energies, reverse=True)

    def test_windowed_report(self, system):
        foo = system.uid_of("com.foo")
        system.hardware.cpu.set_utilization(foo, 0.5)
        system.run_for(10.0)
        system.hardware.cpu.set_utilization(foo, 0.0)
        system.run_for(10.0)
        report = BatteryStats(system).report(start=10.0)
        assert report.entry_for_uid(foo) is None  # no draw in window

    def test_os_row_present(self, system):
        system.run_for(10.0)
        report = BatteryStats(system).report()
        assert report.entry_for("Android OS") is not None


class TestPowerTutor:
    def test_screen_charged_to_foreground(self, system):
        system.launch_app("com.foo")
        foo = system.uid_of("com.foo")
        from repro.android import SCREEN_BRIGHT_WAKE_LOCK

        system.power_manager.acquire(foo, SCREEN_BRIGHT_WAKE_LOCK, "on")
        start = system.now
        system.run_for(20.0)
        report = PowerTutor(system).report(start=start)
        entry = report.entry_for_uid(foo)
        screen_j = system.hardware.meter.screen_energy_j(start=start)
        own_j = system.hardware.meter.energy_j(owner=foo, start=start)
        assert entry.energy_j == pytest.approx(screen_j + own_j)

    def test_screen_split_across_foregrounds(self, system):
        from repro.android import SCREEN_BRIGHT_WAKE_LOCK

        system.launch_app("com.foo")
        foo = system.uid_of("com.foo")
        bar = system.uid_of("com.bar")
        system.power_manager.acquire(foo, SCREEN_BRIGHT_WAKE_LOCK, "on")
        start = system.now
        system.run_for(10.0)
        system.launch_app("com.bar")
        system.run_for(30.0)
        report = PowerTutor(system).report(start=start)
        foo_share = report.entry_for_uid(foo).energy_j
        bar_share = report.entry_for_uid(bar).energy_j
        # bar held the screen 3x as long.
        assert bar_share == pytest.approx(3 * foo_share, rel=0.01)

    def test_no_screen_row(self, system):
        system.launch_app("com.foo")
        system.run_for(10.0)
        report = PowerTutor(system).report()
        assert report.entry_for(SCREEN_LABEL) is None

    def test_unattributed_screen_bucket(self, system):
        # Screen energy before any app is foregrounded (boot/launcher time
        # is attributed to the launcher uid, so force a gap by reporting a
        # window with no timeline coverage).
        report = PowerTutor(system).report(end=0.0)
        assert report.total_energy_j() == 0.0

    def test_total_energy_conserved(self, system):
        """PowerTutor redistributes but never invents energy."""
        system.launch_app("com.foo")
        system.hardware.cpu.set_utilization(system.uid_of("com.foo"), 0.5)
        system.run_for(20.0)
        report = PowerTutor(system).report()
        assert report.total_energy_j() == pytest.approx(
            system.hardware.meter.total_energy_j()
        )

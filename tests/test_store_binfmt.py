"""Property tests for the columnar binary trace format (``trace-bin``).

Three families of invariants:

* encode -> decode is the identity on every DeviceTrace field (floats
  bit-exact, since columns are raw little-endian doubles);
* the binary codec and the JSON codec describe the *same* trace;
* no malformed input — truncated, bit-flipped, or arbitrary bytes —
  ever escapes as anything but :class:`TraceFormatError`.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.offline.trace import (
    ChannelTrace,
    DeviceTrace,
    LinkRecord,
    TraceFormatError,
)
from repro.store import (
    LazyBinaryTrace,
    decode_trace,
    encode_trace,
    get_codec,
    is_binary_trace,
)

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
uids = st.integers(min_value=0, max_value=2**31 - 1)
components = st.sampled_from(["cpu", "radio", "gps", "screen", "camera"])


@st.composite
def channel_lists(draw):
    keys = draw(
        st.lists(st.tuples(uids, components), max_size=4, unique=True)
    )
    channels = []
    for owner, component in keys:
        times = sorted(
            draw(st.lists(finite, min_size=0, max_size=12, unique=True))
        )
        powers = draw(
            st.lists(finite, min_size=len(times), max_size=len(times))
        )
        channels.append(
            ChannelTrace(
                owner=owner,
                component=component,
                breakpoints=list(zip(times, powers)),
            )
        )
    return channels


@st.composite
def device_traces(draw):
    trace = DeviceTrace(
        captured_at=draw(finite),
        battery_capacity_j=draw(finite),
        apps=draw(st.dictionaries(uids, st.text(max_size=8), max_size=4)),
        system_uids=draw(st.lists(uids, max_size=3)),
        foreground=draw(
            st.lists(st.tuples(finite, st.one_of(st.none(), uids)), max_size=4)
        ),
        links=draw(
            st.lists(
                st.builds(
                    LinkRecord,
                    kind=st.sampled_from(["service", "broadcast", "provider"]),
                    driving_uid=uids,
                    target=uids,
                    begin_time=finite,
                    end_time=st.one_of(st.none(), finite),
                ),
                max_size=3,
            )
        ),
    )
    trace.channels.extend(draw(channel_lists()))
    return trace


def assert_traces_equal(left: DeviceTrace, right: DeviceTrace) -> None:
    assert left.captured_at == right.captured_at
    assert left.battery_capacity_j == right.battery_capacity_j
    assert dict(left.apps) == dict(right.apps)
    assert list(left.system_uids) == list(right.system_uids)
    assert [tuple(fg) for fg in left.foreground] == [
        tuple(fg) for fg in right.foreground
    ]
    assert [
        (l.kind, l.driving_uid, l.target, l.begin_time, l.end_time)
        for l in left.links
    ] == [
        (l.kind, l.driving_uid, l.target, l.begin_time, l.end_time)
        for l in right.links
    ]
    assert {
        (ch.owner, ch.component): list(ch.breakpoints) for ch in left.channels
    } == {
        (ch.owner, ch.component): list(ch.breakpoints) for ch in right.channels
    }


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(device_traces())
    def test_encode_decode_is_identity(self, trace):
        blob = encode_trace(trace)
        assert is_binary_trace(blob)
        assert_traces_equal(decode_trace(blob), trace)

    @settings(max_examples=40, deadline=None)
    @given(device_traces())
    def test_binary_equals_json_codec(self, trace):
        via_bin = get_codec("trace-bin").decode(get_codec("trace-bin").encode(trace))
        via_json = get_codec("trace-json").decode(
            get_codec("trace-json").encode(trace)
        )
        assert_traces_equal(via_bin, via_json)

    @settings(max_examples=40, deadline=None)
    @given(device_traces())
    def test_from_bytes_auto_detects_format(self, trace):
        assert_traces_equal(DeviceTrace.from_bytes(encode_trace(trace)), trace)
        assert_traces_equal(
            DeviceTrace.from_bytes(trace.to_json().encode("utf-8")), trace
        )


# A fixed non-trivial document for the corruption properties.
def _sample_blob() -> bytes:
    trace = DeviceTrace(
        captured_at=12.5,
        battery_capacity_j=1000.0,
        apps={10000: "app"},
        system_uids=[1000],
        foreground=[(0.0, 10000)],
    )
    trace.channels.append(
        ChannelTrace(
            owner=10000,
            component="cpu",
            breakpoints=[(float(i), float(i % 7) / 3.0) for i in range(50)],
        )
    )
    return encode_trace(trace)


SAMPLE_BLOB = _sample_blob()


class TestMalformedInput:
    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=0, max_value=len(SAMPLE_BLOB) - 1))
    def test_any_truncation_raises_trace_format_error(self, cut):
        with pytest.raises(TraceFormatError):
            decode_trace(SAMPLE_BLOB[:cut])

    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(min_value=0, max_value=len(SAMPLE_BLOB) - 1),
        st.integers(min_value=1, max_value=255),
    )
    def test_any_bit_flip_raises_trace_format_error(self, index, mask):
        garbled = bytearray(SAMPLE_BLOB)
        garbled[index] ^= mask
        with pytest.raises(TraceFormatError):
            decode_trace(bytes(garbled))

    @settings(max_examples=80, deadline=None)
    @given(st.binary(max_size=256))
    def test_arbitrary_bytes_raise_trace_format_error(self, data):
        with pytest.raises(TraceFormatError):
            decode_trace(data)

    def test_header_json_must_be_an_object(self):
        # A structurally valid frame whose header decodes to a non-dict.
        import struct
        import zlib

        header = b"[1,2]"
        body = struct.pack("<8sHHI", b"REPROTRC", 1, 0, len(header)) + header
        blob = body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)
        with pytest.raises(TraceFormatError, match="JSON object"):
            decode_trace(blob)


class TestLazyWindows:
    @settings(max_examples=40, deadline=None)
    @given(device_traces(), finite, finite)
    def test_windowed_breakpoints_match_full_decode(self, trace, a, b):
        start, end = min(a, b), max(a, b)
        lazy = LazyBinaryTrace(encode_trace(trace))
        for channel in trace.channels:
            full = list(channel.breakpoints)
            window = lazy.breakpoints(
                channel.owner, channel.component, start=start, end=end
            )
            # Every windowed breakpoint exists in the full column, in order.
            assert window == [
                bp
                for bp in full
                if bp in window  # noqa: PLR1733 - membership is the point
            ]
            # The window covers [start, end): every change inside it, plus
            # the one active at start.
            inside = [bp for bp in full if start < bp[0] < end]
            for bp in inside:
                assert bp in window

    def test_directory_and_columns(self):
        lazy = LazyBinaryTrace(SAMPLE_BLOB)
        assert lazy.channels() == [(10000, "cpu", 50)]
        times, powers = lazy.columns(10000, "cpu")
        assert times == [float(i) for i in range(50)]
        assert powers == [float(i % 7) / 3.0 for i in range(50)]
        with pytest.raises(TraceFormatError, match="no channel"):
            lazy.columns(1, "gps")

"""Unit tests for the typed telemetry bus (repro.telemetry.bus)."""

import warnings

import pytest

from repro.telemetry import (
    Category,
    PhaseBeginEvent,
    ScreenStateEvent,
    TelemetryBus,
    TelemetryRecorder,
    TelemetrySubscriberWarning,
    WakelockAcquireEvent,
    WakelockReleaseEvent,
    capture,
)


def _wl(t=1.0, uid=10001):
    return WakelockAcquireEvent(time=t, uid=uid, lock_type="PARTIAL_WAKE_LOCK", tag="x")


class TestSubscriptions:
    def test_category_subscription_receives_only_its_category(self):
        bus = TelemetryBus()
        seen = []
        bus.subscribe(seen.append, category=Category.WAKELOCK)
        bus.publish(_wl())
        bus.publish(ScreenStateEvent(time=2.0, is_on=True))
        assert len(seen) == 1
        assert isinstance(seen[0], WakelockAcquireEvent)

    def test_wildcard_receives_everything(self):
        bus = TelemetryBus()
        seen = []
        bus.subscribe(seen.append)
        bus.publish(_wl())
        bus.publish(ScreenStateEvent(time=2.0, is_on=True))
        assert len(seen) == 2

    def test_event_type_filter_narrows_within_category(self):
        bus = TelemetryBus()
        seen = []
        bus.subscribe(seen.append, event_type=WakelockReleaseEvent)
        bus.publish(_wl())
        bus.publish(
            WakelockReleaseEvent(
                time=2.0, uid=1, lock_type="PARTIAL_WAKE_LOCK", tag="x", by_death=False
            )
        )
        assert [type(e) for e in seen] == [WakelockReleaseEvent]

    def test_event_type_implies_category(self):
        bus = TelemetryBus()
        sub = bus.subscribe(lambda e: None, event_type=WakelockAcquireEvent)
        assert sub.category is Category.WAKELOCK

    def test_unsubscribe(self):
        bus = TelemetryBus()
        seen = []
        sub = bus.subscribe(seen.append, category=Category.WAKELOCK)
        assert bus.unsubscribe(sub) is True
        assert bus.unsubscribe(sub) is False
        bus.publish(_wl())
        assert seen == []
        assert not sub.active

    def test_wants_tracks_subscriptions(self):
        bus = TelemetryBus()
        assert not bus.wants(Category.SIM)
        sub = bus.subscribe(lambda e: None, category=Category.SIM)
        assert bus.wants(Category.SIM)
        assert not bus.wants(Category.POWER)
        bus.unsubscribe(sub)
        assert not bus.wants(Category.SIM)
        bus.subscribe(lambda e: None)  # wildcard observes every category
        assert bus.wants(Category.POWER)


class TestErrorIsolation:
    def test_raising_subscriber_does_not_block_later_ones(self):
        bus = TelemetryBus()
        first, last = [], []
        bus.subscribe(first.append, category=Category.WAKELOCK, name="first")

        def boom(event):
            raise RuntimeError("subscriber exploded")

        bus.subscribe(boom, category=Category.WAKELOCK, name="boom")
        bus.subscribe(last.append, category=Category.WAKELOCK, name="last")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            bus.publish(_wl())
        assert len(first) == 1 and len(last) == 1
        assert len(bus.errors) == 1
        assert bus.errors[0].subscriber == "boom"
        assert any(issubclass(w.category, TelemetrySubscriberWarning) for w in caught)

    def test_warns_once_per_subscriber(self):
        bus = TelemetryBus()
        bus.subscribe(
            lambda e: (_ for _ in ()).throw(ValueError("nope")),
            category=Category.WAKELOCK,
            name="flaky",
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            bus.publish(_wl(1.0))
            bus.publish(_wl(2.0))
            bus.publish(_wl(3.0))
        ours = [w for w in caught if issubclass(w.category, TelemetrySubscriberWarning)]
        assert len(ours) == 1
        assert "flaky" in str(ours[0].message)
        assert len(bus.errors) == 3  # every failure recorded, one warning


class TestCounters:
    def test_stats_on_without_subscribers(self):
        bus = TelemetryBus()
        bus.publish(_wl(1.0))
        bus.publish(_wl(5.0))
        stats = bus.counters()[Category.WAKELOCK]
        assert stats.count == 2
        assert stats.first_time == 1.0
        assert stats.last_time == 5.0
        assert bus.total_events() == 2

    def test_tick_counts_without_event_construction(self):
        bus = TelemetryBus()
        bus.tick(Category.SIM, 4.2)
        assert bus.counters()[Category.SIM].count == 1
        assert bus.stats_dict()["by_category"]["sim"]["last_time"] == 4.2

    def test_stats_dict_shape(self):
        bus = TelemetryBus()
        bus.publish(PhaseBeginEvent(time=0.0, phase="warmup"))
        summary = bus.stats_dict()
        assert summary["total_events"] == 1
        assert summary["subscriber_errors"] == 0
        assert "phase" in summary["by_category"]


class TestCapture:
    def test_capture_records_from_buses_created_inside(self):
        with capture() as recorder:
            bus = TelemetryBus()
            bus.publish(_wl())
        assert len(recorder.events) == 1
        assert recorder.stats()["buses"] == 1

    def test_capture_detaches_on_exit(self):
        with capture() as recorder:
            bus = TelemetryBus()
        bus.publish(_wl())
        assert recorder.events == []  # recorded nothing after exit
        assert recorder.stats()["total_events"] == 1  # counters still visible

    def test_stats_only_capture_retains_no_events(self):
        with capture(record_events=False) as recorder:
            bus = TelemetryBus()
            bus.publish(_wl())
        stats = recorder.stats()
        assert stats["recorded_events"] == 0
        assert stats["total_events"] == 1

    def test_category_narrowed_capture(self):
        with capture(categories=[Category.SCREEN]) as recorder:
            bus = TelemetryBus()
            bus.publish(_wl())
            bus.publish(ScreenStateEvent(time=1.0, is_on=True))
        assert [type(e) for e in recorder.events] == [ScreenStateEvent]

    def test_recorder_attach_detach_single_bus(self):
        bus = TelemetryBus()
        recorder = TelemetryRecorder()
        recorder.attach(bus)
        bus.publish(_wl())
        recorder.detach()
        bus.publish(_wl(2.0))
        assert len(recorder.events) == 1


class TestEnvelope:
    def test_payload_excludes_time(self):
        event = _wl(3.0, uid=7)
        payload = event.payload()
        assert "time" not in payload
        assert payload["uid"] == 7

    def test_to_dict_round_trip_fields(self):
        event = _wl(3.0, uid=7)
        data = event.to_dict()
        assert data["t"] == 3.0
        assert data["category"] == "wakelock"
        assert data["name"] == "wakelock_acquire"
        assert data["driving_uid"] == 7

    def test_events_are_frozen(self):
        event = _wl()
        with pytest.raises(Exception):
            event.time = 9.0

"""Property tests for the retry policy and fault-plan codec.

Four guarantees the chaos harness leans on, pinned over generated
inputs rather than hand-picked examples:

* the un-jittered backoff schedule is monotone non-decreasing and
  capped at ``max_delay_s``;
* jitter keeps each delay within ``[backoff, backoff * (1 + jitter)]``;
* the total time slept across all retries never exceeds ``budget_s``;
* everything is deterministic under a fixed seed — and a
  :class:`FaultPlan` survives both dict and JSON round trips, so a
  chaos finding replays from its corpus document bit-for-bit.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    FAULT_KINDS,
    KNOWN_SITES,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    RetriesExhaustedError,
    RetryPolicy,
    run_with_retry,
)
from repro.sim.rng import SeededRng

policies = st.builds(
    RetryPolicy,
    attempts=st.integers(min_value=1, max_value=8),
    base_delay_s=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    multiplier=st.floats(min_value=1.0, max_value=8.0, allow_nan=False),
    max_delay_s=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    jitter=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    budget_s=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
)

@st.composite
def specs(draw):
    kind = draw(st.sampled_from(FAULT_KINDS))
    return FaultSpec(
        site=draw(st.sampled_from(KNOWN_SITES + ("store.*", "serve.*", "*"))),
        kind=kind,
        probability=draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        ),
        max_injections=draw(
            st.one_of(st.none(), st.integers(min_value=0, max_value=50))
        ),
        # delay_ms only serialises for latency faults; other kinds keep
        # the default so the codec round trip is exact.
        delay_ms=(
            draw(st.floats(min_value=0.0, max_value=50.0, allow_nan=False))
            if kind == "latency"
            else 2.0
        ),
    )

plans = st.builds(
    FaultPlan, specs=st.lists(specs(), max_size=8).map(tuple)
)


class _Flaky:
    """A callable that fails ``failures`` times, then succeeds."""

    def __init__(self, failures: int) -> None:
        self.remaining = failures
        self.calls = 0

    def __call__(self) -> str:
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise OSError("flake")
        return "ok"


# ----------------------------------------------------------------------
# backoff shape
# ----------------------------------------------------------------------
class TestBackoff:
    @given(policy=policies)
    def test_schedule_is_monotone_and_capped(self, policy):
        schedule = policy.schedule()
        assert len(schedule) == policy.attempts - 1
        for earlier, later in zip(schedule, schedule[1:]):
            assert later >= earlier
        for delay in schedule:
            assert 0.0 <= delay <= policy.max_delay_s

    @given(policy=policies, attempt=st.integers(min_value=0, max_value=30), seed=st.integers(min_value=0, max_value=2**31))
    def test_jittered_delay_stays_in_band(self, policy, attempt, seed):
        base = policy.backoff(attempt)
        delay = policy.delay_for(attempt, SeededRng(seed))
        assert base <= delay <= base * (1.0 + policy.jitter) + 1e-12

    @given(policy=policies, attempt=st.integers(min_value=0, max_value=30), seed=st.integers(min_value=0, max_value=2**31))
    def test_jitter_is_deterministic_under_a_fixed_seed(
        self, policy, attempt, seed
    ):
        first = policy.delay_for(attempt, SeededRng(seed))
        second = policy.delay_for(attempt, SeededRng(seed))
        assert first == second

    def test_backoff_rejects_negative_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff(-1)


# ----------------------------------------------------------------------
# run_with_retry: budget and determinism
# ----------------------------------------------------------------------
class TestRunWithRetry:
    @settings(deadline=None)
    @given(
        policy=policies,
        failures=st.integers(min_value=0, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_total_sleep_never_exceeds_the_budget(self, policy, failures, seed):
        slept = []
        flaky = _Flaky(failures)
        try:
            run_with_retry(
                flaky,
                site="prop",
                policy=policy,
                rng=SeededRng(seed),
                sleep=slept.append,
            )
        except RetriesExhaustedError as exc:
            assert exc.attempts <= policy.attempts
            assert isinstance(exc.last_error, OSError)
        assert sum(slept) <= policy.budget_s + 1e-9
        assert flaky.calls <= policy.attempts

    @settings(deadline=None)
    @given(
        policy=policies,
        failures=st.integers(min_value=0, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_delays_replay_under_a_fixed_seed(self, policy, failures, seed):
        def trial():
            slept = []
            try:
                run_with_retry(
                    _Flaky(failures),
                    site="prop",
                    policy=policy,
                    rng=SeededRng(seed),
                    sleep=slept.append,
                )
            except RetriesExhaustedError:
                pass
            return slept

        assert trial() == trial()

    def test_success_after_transient_failures(self):
        flaky = _Flaky(2)
        result = run_with_retry(
            flaky,
            site="prop",
            policy=RetryPolicy(attempts=3, base_delay_s=0.0),
            sleep=lambda _d: None,
        )
        assert result == "ok"
        assert flaky.calls == 3

    def test_non_retryable_errors_propagate_unwrapped(self):
        def boom():
            raise ValueError("not transient")

        with pytest.raises(ValueError, match="not transient"):
            run_with_retry(boom, site="prop", sleep=lambda _d: None)


# ----------------------------------------------------------------------
# FaultPlan codec round trips
# ----------------------------------------------------------------------
class TestPlanRoundTrip:
    @given(plan=plans)
    def test_dict_round_trip(self, plan):
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    @given(plan=plans)
    def test_json_round_trip(self, plan):
        rebuilt = FaultPlan.from_json(plan.to_json())
        assert rebuilt == plan
        # The serialised form itself is stable (corpus diff-friendliness).
        assert rebuilt.to_json() == plan.to_json()

    @given(plan=plans)
    def test_json_form_is_valid_json_with_the_plan_kind(self, plan):
        document = json.loads(plan.to_json())
        assert document["kind"] == "repro-fault-plan"
        assert len(document["specs"]) == len(plan.specs)

    @given(spec=specs())
    def test_spec_round_trip_preserves_validation(self, spec):
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_bad_kind_is_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(site="store.read", kind="melt", probability=0.5)

    def test_bad_probability_is_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(site="store.read", kind="corrupt", probability=1.5)

    def test_mixed_plan_is_valid_and_stable(self):
        assert FaultPlan.mixed(0.05) == FaultPlan.mixed(0.05)
        assert all(s.probability == 0.05 for s in FaultPlan.mixed(0.05).specs)

"""The §VII head-to-head: power signatures vs E-Android's detector.

"Power signature cannot tackle collateral energy malware that drains
energy via an indirect approach" — the baseline flags the *victims*
(whose own draw spikes) and misses the malware; E-Android's collateral
detector names the malware.
"""

import pytest

from repro.accounting.power_signature import PowerSignatureDetector
from repro.android import AndroidSystem, explicit
from repro.apps import VICTIM_PACKAGE, build_victim_app
from repro.attacks import BIND_PACKAGE, build_bind_malware
from repro.core import CollateralEnergyDetector, attach_eandroid

from helpers import booted_system, make_app


def _hold_screen(system):
    """The paper's setup: screen forced on by a (system) wakelock."""
    from repro.android import SCREEN_BRIGHT_WAKE_LOCK

    system.power_manager.acquire(
        system.package_manager.system_uid, SCREEN_BRIGHT_WAKE_LOCK, "rig"
    )


@pytest.fixture
def attacked_device():
    system = AndroidSystem()
    system.install(build_victim_app())
    system.install(build_bind_malware())
    system.boot()
    _hold_screen(system)
    ea = attach_eandroid(system)
    system.launch_app(BIND_PACKAGE)
    system.press_home()
    victim = system.uid_of(VICTIM_PACKAGE)
    svc = explicit(VICTIM_PACKAGE, "VictimWorkService")
    system.am.start_service(victim, svc)
    system.run_for(1.0)
    system.am.stop_service(victim, svc)
    system.run_for(120.0)
    return system, ea


class TestSignatureBaseline:
    def test_signature_statistics(self):
        system = booted_system(make_app("com.busy"))
        _hold_screen(system)
        uid = system.uid_of("com.busy")
        system.hardware.cpu.set_utilization(uid, 0.5)
        system.run_for(50.0)
        system.hardware.cpu.set_utilization(uid, 0.0)
        system.run_for(50.0)
        signature = PowerSignatureDetector(system).signature_of(uid)
        assert signature.peak_mw > signature.mean_mw > 0
        assert 0.4 < signature.duty_cycle < 0.6

    def test_flags_genuinely_greedy_app(self):
        system = booted_system(make_app("com.hog"))
        _hold_screen(system)
        uid = system.uid_of("com.hog")
        system.hardware.cpu.set_utilization(uid, 0.9)
        system.run_for(60.0)
        verdict = PowerSignatureDetector(system, threshold_mw=150.0).scan()
        assert verdict.is_flagged(uid)

    def test_quiet_app_not_flagged(self):
        system = booted_system(make_app("com.quiet"))
        _hold_screen(system)
        uid = system.uid_of("com.quiet")
        system.hardware.cpu.set_utilization(uid, 0.02)
        system.run_for(60.0)
        verdict = PowerSignatureDetector(system, threshold_mw=150.0).scan()
        assert not verdict.is_flagged(uid)


class TestHeadToHead:
    def test_signature_misses_collateral_malware(self, attacked_device):
        """The baseline blames the victim; the malware sails through."""
        system, _ = attacked_device
        verdict = PowerSignatureDetector(system, threshold_mw=100.0).scan()
        victim = system.uid_of(VICTIM_PACKAGE)
        malware = system.uid_of(BIND_PACKAGE)
        assert verdict.is_flagged(victim)
        assert not verdict.is_flagged(malware)
        # The malware's own signature is essentially flat.
        assert verdict.signatures[malware].mean_mw < 1.0

    def test_eandroid_detector_names_the_malware(self, attacked_device):
        system, ea = attacked_device
        suspects = CollateralEnergyDetector(system, ea.accounting).rank_suspects()
        assert suspects
        assert suspects[0].uid == system.uid_of(BIND_PACKAGE)

"""Tests for wakelocks, screen timeout, suspend, and display policy."""

import pytest

from repro.android import (
    BRIGHTNESS_MODE_AUTOMATIC,
    BRIGHTNESS_MODE_MANUAL,
    BadStateError,
    FULL_WAKE_LOCK,
    PARTIAL_WAKE_LOCK,
    SCREEN_BRIGHT_WAKE_LOCK,
    SCREEN_BRIGHTNESS,
    SCREEN_BRIGHTNESS_MODE,
    SCREEN_OFF_TIMEOUT,
    SecurityException,
    WAKE_LOCK,
    explicit,
)

from helpers import booted_system, make_app


@pytest.fixture
def system():
    return booted_system(make_app("com.app"), make_app("com.nopermission", permissions=()))


class TestWakelockBasics:
    def test_acquire_requires_permission(self, system):
        uid = system.uid_of("com.nopermission")
        with pytest.raises(SecurityException):
            system.power_manager.acquire(uid, PARTIAL_WAKE_LOCK, "test")

    def test_unknown_type_rejected(self, system):
        uid = system.uid_of("com.app")
        with pytest.raises(ValueError):
            system.power_manager.acquire(uid, "BOGUS_LOCK", "test")

    def test_acquire_release_cycle(self, system):
        uid = system.uid_of("com.app")
        lock = system.power_manager.acquire(uid, PARTIAL_WAKE_LOCK, "cpu")
        assert lock.held
        assert system.power_manager.held_locks(uid) == [lock]
        lock.release()
        assert not lock.held
        assert system.power_manager.held_locks(uid) == []

    def test_double_release_rejected(self, system):
        uid = system.uid_of("com.app")
        lock = system.power_manager.acquire(uid, PARTIAL_WAKE_LOCK, "cpu")
        lock.release()
        with pytest.raises(BadStateError):
            lock.release()

    def test_holds_screen_lock(self, system):
        uid = system.uid_of("com.app")
        system.power_manager.acquire(uid, PARTIAL_WAKE_LOCK, "cpu")
        assert not system.power_manager.holds_screen_lock(uid)
        system.power_manager.acquire(uid, SCREEN_BRIGHT_WAKE_LOCK, "scr")
        assert system.power_manager.holds_screen_lock(uid)


class TestScreenTimeout:
    def test_screen_times_out_without_lock(self, system):
        assert system.display.is_screen_on
        system.run_for(31.0)
        assert not system.display.is_screen_on

    def test_device_suspends_after_timeout(self, system):
        system.run_for(31.0)
        assert system.hardware.suspended

    def test_screen_lock_prevents_timeout(self, system):
        system.launch_app("com.app")
        uid = system.uid_of("com.app")
        system.power_manager.acquire(uid, SCREEN_BRIGHT_WAKE_LOCK, "keep-on")
        system.run_for(3600.0)
        assert system.display.is_screen_on
        assert not system.hardware.suspended

    def test_release_restarts_timeout(self, system):
        system.launch_app("com.app")
        uid = system.uid_of("com.app")
        lock = system.power_manager.acquire(uid, SCREEN_BRIGHT_WAKE_LOCK, "keep-on")
        system.run_for(120.0)
        lock.release()
        system.run_for(31.0)
        assert not system.display.is_screen_on

    def test_partial_lock_prevents_suspend_not_screen_off(self, system):
        system.launch_app("com.app")
        uid = system.uid_of("com.app")
        system.power_manager.acquire(uid, PARTIAL_WAKE_LOCK, "cpu")
        system.run_for(60.0)
        assert not system.display.is_screen_on
        assert not system.hardware.suspended

    def test_user_activity_resets_timeout(self, system):
        system.run_for(25.0)
        system.power_manager.user_activity()
        system.run_for(25.0)
        assert system.display.is_screen_on
        system.run_for(10.0)
        assert not system.display.is_screen_on

    def test_custom_timeout_setting(self, system):
        system.settings.put_as_system(SCREEN_OFF_TIMEOUT, 5.0)
        system.power_manager.user_activity()
        system.run_for(6.0)
        assert not system.display.is_screen_on

    def test_wake_up_after_suspend(self, system):
        system.run_for(60.0)
        assert system.hardware.suspended
        system.power_manager.wake_up()
        assert system.display.is_screen_on
        assert not system.hardware.suspended


class TestLinkToDeath:
    def test_process_death_releases_wakelock(self, system):
        system.launch_app("com.app")
        uid = system.uid_of("com.app")
        lock = system.power_manager.acquire(uid, SCREEN_BRIGHT_WAKE_LOCK, "leak")
        system.am.force_stop("com.app")
        assert not lock.held
        assert system.power_manager.held_locks(uid) == []

    def test_stopping_activity_does_not_release(self, system):
        """The gap the paper exploits: onStop keeps the wakelock held."""
        system.launch_app("com.app")
        uid = system.uid_of("com.app")
        lock = system.power_manager.acquire(uid, SCREEN_BRIGHT_WAKE_LOCK, "leak")
        system.press_home()  # app now stopped, but its process lives
        assert lock.held
        system.run_for(3600.0)
        assert system.display.is_screen_on  # battery still burning

    def test_death_release_notifies_observers(self, system):
        from repro.android import FrameworkObserver

        releases = []

        class Recorder(FrameworkObserver):
            def on_wakelock_release(self, time, uid, lock_type, tag, by_death):
                releases.append((tag, by_death))

        system.register_observer(Recorder())
        system.launch_app("com.app")
        uid = system.uid_of("com.app")
        system.power_manager.acquire(uid, PARTIAL_WAKE_LOCK, "will-die")
        system.am.force_stop("com.app")
        assert ("will-die", True) in releases


class TestBrightnessPolicy:
    def test_settings_write_applies_in_manual_mode(self, system):
        uid = system.uid_of("com.app")
        system.settings.put(uid, SCREEN_BRIGHTNESS, 200)
        assert system.display.brightness == 200

    def test_settings_write_requires_permission(self, system):
        uid = system.uid_of("com.nopermission")
        with pytest.raises(SecurityException):
            system.settings.put(uid, SCREEN_BRIGHTNESS, 255)

    def test_auto_mode_ignores_setting_until_manual(self, system):
        """§IV-A: value saved in auto mode but not valid until manual."""
        uid = system.uid_of("com.app")
        system.settings.put_as_system(SCREEN_BRIGHTNESS_MODE, BRIGHTNESS_MODE_AUTOMATIC)
        auto_level = system.display.auto_brightness
        system.settings.put(uid, SCREEN_BRIGHTNESS, 255)
        assert system.display.brightness == auto_level
        system.settings.put(uid, SCREEN_BRIGHTNESS_MODE, BRIGHTNESS_MODE_MANUAL)
        assert system.display.brightness == 255

    def test_ambient_changes_auto_brightness(self, system):
        system.settings.put_as_system(SCREEN_BRIGHTNESS_MODE, BRIGHTNESS_MODE_AUTOMATIC)
        system.display.set_ambient_level(30)
        assert system.display.brightness == 30

    def test_window_override_wins_while_foreground(self, system):
        system.launch_app("com.app")
        uid = system.uid_of("com.app")
        system.display.set_window_brightness(uid, 250)
        assert system.display.brightness == 250
        system.press_home()
        assert system.display.brightness == 102  # back to settings value

    def test_window_override_of_background_app_ignored(self, system):
        uid = system.uid_of("com.app")
        system.display.set_window_brightness(uid, 250)
        assert system.display.brightness == 102

    def test_systemui_slider(self, system):
        system.systemui.user_set_brightness(42)
        assert system.display.brightness == 42

    def test_brightness_observer_sees_caller(self, system):
        from repro.android import FrameworkObserver

        changes = []

        class Recorder(FrameworkObserver):
            def on_brightness_change(self, time, caller_uid, old, new, via):
                changes.append((caller_uid, old, new, via))

        system.register_observer(Recorder())
        uid = system.uid_of("com.app")
        system.settings.put(uid, SCREEN_BRIGHTNESS, 240)
        assert changes == [(uid, 102, 240, "settings")]

    def test_screen_energy_follows_brightness(self, system):
        system.launch_app("com.app")
        uid = system.uid_of("com.app")
        system.power_manager.acquire(uid, SCREEN_BRIGHT_WAKE_LOCK, "on")
        meter = system.hardware.meter
        system.settings.put(uid, SCREEN_BRIGHTNESS, 10)
        start = system.now
        system.run_for(100.0)
        low = meter.screen_energy_j(start=start)
        system.settings.put(uid, SCREEN_BRIGHTNESS, 255)
        start = system.now
        system.run_for(100.0)
        high = meter.screen_energy_j(start=start)
        assert high > low * 1.5


class TestDimWakelock:
    def test_dim_lock_dims_after_timeout_window(self, system):
        from repro.android import SCREEN_DIM_WAKE_LOCK

        system.launch_app("com.app")
        uid = system.uid_of("com.app")
        system.power_manager.acquire(uid, SCREEN_DIM_WAKE_LOCK, "dim")
        system.run_for(60.0)
        # Screen alive thanks to the lock, but only at the dim level.
        assert system.display.is_screen_on
        assert system.hardware.screen.is_dimmed

    def test_bright_lock_overrides_dim(self, system):
        from repro.android import SCREEN_BRIGHT_WAKE_LOCK, SCREEN_DIM_WAKE_LOCK

        system.launch_app("com.app")
        uid = system.uid_of("com.app")
        system.power_manager.acquire(uid, SCREEN_DIM_WAKE_LOCK, "dim")
        bright = system.power_manager.acquire(uid, SCREEN_BRIGHT_WAKE_LOCK, "bright")
        system.run_for(60.0)
        assert not system.hardware.screen.is_dimmed
        bright.release()
        assert system.hardware.screen.is_dimmed

    def test_dim_power_below_bright(self, system):
        from repro.android import SCREEN_DIM_WAKE_LOCK
        from repro.power import NEXUS4

        system.launch_app("com.app")
        uid = system.uid_of("com.app")
        system.power_manager.acquire(uid, SCREEN_DIM_WAKE_LOCK, "dim")
        system.run_for(60.0)
        assert system.hardware.screen.current_power_mw() == NEXUS4.screen.power_mw(
            NEXUS4.screen.dim_brightness
        )


class TestDisplayEdgeCases:
    def test_window_override_beats_auto_mode(self, system):
        """The window attribute outranks even automatic brightness."""
        system.settings.put_as_system(SCREEN_BRIGHTNESS_MODE, BRIGHTNESS_MODE_AUTOMATIC)
        system.launch_app("com.app")
        uid = system.uid_of("com.app")
        system.display.set_window_brightness(uid, 222)
        assert system.display.brightness == 222
        system.display.set_window_brightness(uid, None)  # clear
        assert system.display.brightness == system.display.auto_brightness

    def test_ambient_in_manual_mode_is_inert(self, system):
        before = system.display.brightness
        system.display.set_ambient_level(240)
        assert system.display.brightness == before

    def test_screen_off_then_on_restores_effective_brightness(self, system):
        uid = system.uid_of("com.app")
        system.settings.put(uid, SCREEN_BRIGHTNESS, 200)
        system.power_manager.go_to_sleep()
        assert not system.display.is_screen_on
        system.power_manager.wake_up()
        assert system.display.is_screen_on
        assert system.display.brightness == 200

    def test_equal_value_write_fires_no_observer(self, system):
        changes = []
        system.settings.add_observer(changes.append)
        uid = system.uid_of("com.app")
        system.settings.put(uid, SCREEN_BRIGHTNESS, 102)  # already 102
        assert changes == []

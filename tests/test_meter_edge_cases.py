"""Window-validation and boundary behaviour of the energy queries.

The fast-path refactor also fixed a silent-garbage bug: reversed
windows (``end < start``) used to integrate to nonsense instead of
raising.  Every query entry point — trace level, meter level, naive
twins — must now reject them, and the boundary cases (empty traces,
windows past the last breakpoint, zero-length windows) must agree
between the prefix-sum and naive paths.
"""

import pytest

from repro.power.meter import EnergyMeter
from repro.power.trace import PowerTrace
from repro.sim.kernel import Kernel


def _meter_with_history():
    kernel = Kernel()
    meter = EnergyMeter(kernel)
    meter.set_draw(10, "cpu", 500.0)
    meter.set_draw(20, "radio", 250.0)
    kernel.run_for(8.0)
    return kernel, meter


class TestReversedWindows:
    def test_trace_energy_rejects_reversed_window(self):
        trace = PowerTrace()
        trace.append(0.0, 100.0)
        with pytest.raises(ValueError, match="before start"):
            trace.energy_j(5.0, 1.0)
        with pytest.raises(ValueError, match="before start"):
            trace.naive_energy_j(5.0, 1.0)

    def test_meter_queries_reject_reversed_window(self):
        _, meter = _meter_with_history()
        for query in (
            lambda: meter.energy_j(start=5.0, end=1.0),
            lambda: meter.energy_j(owner=10, start=5.0, end=1.0),
            lambda: meter.total_energy_j(start=5.0, end=1.0),
            lambda: meter.energy_by_owner(start=5.0, end=1.0),
            lambda: meter.energy_by_component(10, start=5.0, end=1.0),
            lambda: meter.naive_energy_j(start=5.0, end=1.0),
            lambda: meter.naive_energy_by_owner(start=5.0, end=1.0),
            lambda: meter.app_energy_j(10, start=5.0, end=1.0),
            lambda: meter.screen_energy_j(start=5.0, end=1.0),
        ):
            with pytest.raises(ValueError, match="before start"):
                query()

    def test_default_end_is_now_and_valid(self):
        kernel, meter = _meter_with_history()
        assert meter.total_energy_j() == pytest.approx(
            (500.0 + 250.0) * 8.0 / 1000.0
        )
        # start beyond now must still raise (end defaults to now).
        with pytest.raises(ValueError, match="before start"):
            meter.total_energy_j(start=kernel.now + 1.0)


class TestBoundaries:
    def test_empty_trace_integrates_to_zero(self):
        trace = PowerTrace()
        assert trace.energy_j(0.0, 100.0) == 0.0
        assert trace.naive_energy_j(0.0, 100.0) == 0.0
        assert trace.power_at(5.0) == 0.0
        assert trace.last_power == 0.0
        assert trace.last_time is None

    def test_zero_length_window_is_zero(self):
        trace = PowerTrace()
        trace.append(0.0, 100.0)
        assert trace.energy_j(3.0, 3.0) == 0.0
        assert trace.naive_energy_j(3.0, 3.0) == 0.0

    def test_window_before_first_breakpoint_is_zero(self):
        trace = PowerTrace()
        trace.append(10.0, 100.0)
        assert trace.energy_j(0.0, 10.0) == 0.0
        assert trace.naive_energy_j(0.0, 10.0) == 0.0

    def test_window_past_last_breakpoint_extends_final_draw(self):
        trace = PowerTrace()
        trace.append(0.0, 100.0)
        trace.append(10.0, 400.0)
        # [5, 25): 5 s at 100 mW + 10 s at 400 mW held past the end.
        expected = (5 * 100.0 + 15 * 400.0) / 1000.0
        assert trace.energy_j(5.0, 25.0) == pytest.approx(expected, rel=1e-12)
        assert trace.naive_energy_j(5.0, 25.0) == pytest.approx(expected, rel=1e-12)

    def test_meter_queries_past_now_extend_final_draw(self):
        kernel, meter = _meter_with_history()
        future = kernel.now + 4.0
        expected = (500.0 + 250.0) * (8.0 + 4.0) / 1000.0
        assert meter.total_energy_j(end=future) == pytest.approx(expected)
        assert meter.naive_energy_j(end=future) == pytest.approx(expected)

    def test_unknown_owner_is_zero_not_error(self):
        _, meter = _meter_with_history()
        assert meter.energy_j(owner=999) == 0.0
        assert meter.energy_by_component(999) == {}
        assert meter.channels_of(999) == []
        assert meter.current_power_mw(999) == 0.0

    def test_empty_meter_queries(self):
        meter = EnergyMeter(Kernel())
        assert meter.total_energy_j() == 0.0
        assert meter.energy_by_owner() == {}
        assert meter.naive_energy_by_owner() == {}
        assert meter.total_power_breakpoints() == []


class TestEpochs:
    def test_epoch_advances_only_on_real_changes(self):
        kernel = Kernel()
        meter = EnergyMeter(kernel)
        assert meter.epoch == 0
        meter.set_draw(1, "cpu", 100.0)
        first = meter.epoch
        assert first > 0
        meter.set_draw(1, "cpu", 100.0)  # same instant, same value
        assert meter.epoch == first
        kernel.run_for(1.0)
        meter.set_draw(1, "cpu", 100.0)  # redundant draw: trace compacts
        assert meter.epoch == first
        meter.set_draw(1, "cpu", 150.0)
        assert meter.epoch > first

    def test_owner_epochs_are_independent(self):
        kernel = Kernel()
        meter = EnergyMeter(kernel)
        meter.set_draw(1, "cpu", 100.0)
        kernel.run_for(1.0)
        meter.set_draw(2, "cpu", 100.0)
        epoch_1 = meter.owner_epoch(1)
        kernel.run_for(1.0)
        meter.set_draw(2, "cpu", 300.0)
        assert meter.owner_epoch(1) == epoch_1
        assert meter.owner_epoch(2) > epoch_1
        assert meter.owner_epoch(999) == 0

    def test_breakpoints_memo_invalidates_on_append(self):
        kernel = Kernel()
        meter = EnergyMeter(kernel)
        meter.set_draw(1, "cpu", 100.0)
        curve = meter.total_power_breakpoints()
        assert curve == meter.total_power_breakpoints()
        curve.append((99.0, 99.0))  # caller mutation must not poison the memo
        assert (99.0, 99.0) not in meter.total_power_breakpoints()
        kernel.run_for(1.0)
        meter.set_draw(1, "cpu", 700.0)
        assert len(meter.total_power_breakpoints()) == 2

"""Tests for manifests, intents, and intent filters."""

import pytest

from repro.android import (
    ACTION_MAIN,
    ACTION_VIDEO_CAPTURE,
    CATEGORY_DEFAULT,
    CATEGORY_LAUNCHER,
    AndroidManifest,
    ComponentDecl,
    ComponentKind,
    ComponentName,
    Intent,
    IntentFilterDecl,
    WAKE_LOCK,
    WRITE_SETTINGS,
    explicit,
    implicit,
    launcher_filter,
)


def sample_manifest() -> AndroidManifest:
    return AndroidManifest(
        package="com.example.demo",
        category="entertainment",
        uses_permissions=frozenset({WAKE_LOCK, WRITE_SETTINGS}),
        components=(
            ComponentDecl(
                name="MainActivity",
                kind=ComponentKind.ACTIVITY,
                exported=True,
                intent_filters=(launcher_filter(),),
            ),
            ComponentDecl(
                name="RecordActivity",
                kind=ComponentKind.ACTIVITY,
                exported=True,
                intent_filters=(
                    IntentFilterDecl(
                        actions=frozenset({ACTION_VIDEO_CAPTURE}),
                        categories=frozenset({CATEGORY_DEFAULT}),
                    ),
                ),
            ),
            ComponentDecl(name="WorkService", kind=ComponentKind.SERVICE, exported=True),
            ComponentDecl(
                name="CoverActivity",
                kind=ComponentKind.ACTIVITY,
                transparent=True,
            ),
        ),
    )


class TestComponentName:
    def test_flatten_parse_roundtrip(self):
        name = ComponentName("com.a.b", "MainActivity")
        assert ComponentName.parse(name.flatten()) == name

    def test_parse_malformed(self):
        with pytest.raises(ValueError):
            ComponentName.parse("no-slash-here")


class TestIntent:
    def test_explicit_constructor(self):
        intent = explicit("com.a", "Act", video_length=30)
        assert intent.is_explicit
        assert intent.extras["video_length"] == 30

    def test_implicit_constructor(self):
        intent = implicit(ACTION_VIDEO_CAPTURE, CATEGORY_DEFAULT)
        assert not intent.is_explicit
        assert intent.action == ACTION_VIDEO_CAPTURE
        assert CATEGORY_DEFAULT in intent.categories

    def test_with_component_returns_new_intent(self):
        intent = implicit(ACTION_VIDEO_CAPTURE)
        resolved = intent.with_component(ComponentName("com.a", "Act"))
        assert resolved.is_explicit
        assert not intent.is_explicit
        assert resolved.action == ACTION_VIDEO_CAPTURE

    def test_flags(self):
        intent = Intent(flags=0b01)
        assert intent.has_flag(0b01)
        assert not intent.has_flag(0b10)


class TestIntentFilter:
    def test_action_must_match(self):
        filt = IntentFilterDecl(actions=frozenset({ACTION_MAIN}))
        assert filt.matches(ACTION_MAIN, frozenset())
        assert not filt.matches(ACTION_VIDEO_CAPTURE, frozenset())
        assert not filt.matches(None, frozenset())

    def test_categories_subset_rule(self):
        filt = IntentFilterDecl(
            actions=frozenset({ACTION_MAIN}),
            categories=frozenset({CATEGORY_LAUNCHER, CATEGORY_DEFAULT}),
        )
        assert filt.matches(ACTION_MAIN, frozenset({CATEGORY_LAUNCHER}))
        assert not filt.matches(ACTION_MAIN, frozenset({"other.category"}))


class TestManifest:
    def test_permission_queries(self):
        manifest = sample_manifest()
        assert manifest.requests_permission(WAKE_LOCK)
        assert not manifest.requests_permission("android.permission.CAMERA")

    def test_exported_component_detection(self):
        assert sample_manifest().has_exported_component()
        bare = AndroidManifest(package="com.bare")
        assert not bare.has_exported_component()

    def test_component_lookup(self):
        manifest = sample_manifest()
        decl = manifest.component("WorkService")
        assert decl is not None and decl.kind == ComponentKind.SERVICE
        assert manifest.component("Nope") is None

    def test_components_of_kind(self):
        manifest = sample_manifest()
        activities = manifest.components_of_kind(ComponentKind.ACTIVITY)
        assert len(activities) == 3

    def test_launcher_activity(self):
        manifest = sample_manifest()
        launcher = manifest.launcher_activity()
        assert launcher is not None and launcher.name == "MainActivity"
        assert AndroidManifest(package="com.x").launcher_activity() is None

    def test_handles_action(self):
        manifest = sample_manifest()
        record = manifest.component("RecordActivity")
        assert record.handles(ACTION_VIDEO_CAPTURE, frozenset())
        assert not record.handles(ACTION_MAIN, frozenset())


class TestManifestXmlRoundTrip:
    def test_roundtrip_preserves_everything(self):
        original = sample_manifest()
        parsed = AndroidManifest.from_xml(original.to_xml())
        assert parsed.package == original.package
        assert parsed.category == original.category
        assert parsed.uses_permissions == original.uses_permissions
        assert len(parsed.components) == len(original.components)
        for a, b in zip(parsed.components, original.components):
            assert a.name == b.name
            assert a.kind == b.kind
            assert a.exported == b.exported
            assert a.transparent == b.transparent
            assert a.intent_filters == b.intent_filters

    def test_xml_contains_android_attrs(self):
        xml = sample_manifest().to_xml()
        assert 'package="com.example.demo"' in xml
        assert "uses-permission" in xml
        assert 'android:exported="true"' in xml
        assert "Theme.Translucent" in xml

    def test_from_xml_rejects_non_manifest(self):
        with pytest.raises(ValueError):
            AndroidManifest.from_xml("<foo/>")

    def test_from_xml_requires_package(self):
        with pytest.raises(ValueError):
            AndroidManifest.from_xml("<manifest/>")

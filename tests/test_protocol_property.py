"""Property tests for the JSONL wire protocol and its framing layer.

Two contracts, pinned with hypothesis:

* **round-trip identity** — any valid query / aggregate / response
  object survives encode → frame → chunked reassembly → decode exactly
  (the same `DecodedLine` both serving front-ends consume);
* **never-raise degradation** — `decode_request_line` turns arbitrary
  garbage, truncation, and type confusion into a typed ``error`` result
  and never lets an exception escape (an escaping exception would kill
  a connection handler), and `LineAssembler` yields the same framing
  events for a byte stream regardless of how the chunks split it.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregate import AggregateRequest
from repro.aggregate.request import GROUP_BYS, OPS
from repro.reports import BACKENDS, ReportRequest
from repro.serve import (
    LineAssembler,
    QueryRequest,
    QueryResponse,
    decode_request_line,
)

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
_session_names = st.text(
    alphabet=st.characters(
        codec="utf-8", categories=("L", "N"), include_characters="-_."
    ),
    min_size=1,
    max_size=24,
)

_windows = st.tuples(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.one_of(st.none(), st.floats(min_value=0.0, max_value=1e6, allow_nan=False)),
).map(lambda w: (w[0], None if w[1] is None else max(w[0], w[1])))


@st.composite
def report_requests(draw):
    start, end = draw(_windows)
    owners = draw(
        st.one_of(
            st.none(),
            st.lists(
                st.integers(min_value=0, max_value=99_999), min_size=1, max_size=6
            ),
        )
    )
    return ReportRequest(
        backend=draw(st.sampled_from(BACKENDS)),
        start=start,
        end=end,
        owners=None if owners is None else tuple(owners),
    )


@st.composite
def query_requests(draw):
    return QueryRequest(
        id=draw(st.integers(min_value=0, max_value=2**31)),
        session=draw(_session_names),
        report=draw(report_requests()),
    )


@st.composite
def aggregate_requests(draw):
    op = draw(st.sampled_from(OPS))
    start, end = draw(_windows)
    return AggregateRequest(
        backend=draw(st.sampled_from(BACKENDS)),
        op=op,
        group_by=draw(st.sampled_from(GROUP_BYS)),
        sessions=tuple(draw(st.lists(_session_names, min_size=1, max_size=4))),
        start=start,
        end=end,
        k=draw(st.integers(min_value=1, max_value=50)),
        bins=draw(st.integers(min_value=1, max_value=64)),
        bin_width=draw(st.floats(min_value=0.01, max_value=100.0, allow_nan=False)),
    )


@st.composite
def query_responses(draw):
    status = draw(st.sampled_from(("ok", "shed", "error")))
    report = None
    error = None
    if status == "ok":
        report = draw(
            st.dictionaries(
                st.sampled_from(("schema", "backend", "total_j", "rows")),
                st.one_of(st.text(max_size=16), st.floats(allow_nan=False)),
                max_size=4,
            )
        )
    else:
        error = draw(st.text(min_size=1, max_size=64))
    return QueryResponse(
        id=draw(st.integers(min_value=0, max_value=2**31)),
        session=draw(_session_names),
        status=status,
        report=report,
        error=error,
        cached=draw(st.booleans()),
        latency_us=draw(st.floats(min_value=0.0, max_value=1e9, allow_nan=False)),
    )


def _chunked(data: bytes, cuts):
    """Split ``data`` at the (sorted, de-duplicated) cut offsets."""
    offsets = sorted({min(c, len(data)) for c in cuts})
    pieces = []
    last = 0
    for offset in offsets:
        pieces.append(data[last:offset])
        last = offset
    pieces.append(data[last:])
    return [p for p in pieces if p]


# ----------------------------------------------------------------------
# round-trip identity: encode -> frame -> split -> decode
# ----------------------------------------------------------------------
class TestRoundTrips:
    @given(query=query_requests())
    @settings(max_examples=200, deadline=None)
    def test_query_line_roundtrip(self, query):
        line = json.dumps(query.to_dict())
        decoded = decode_request_line(line)
        assert decoded.kind == "query"
        assert decoded.id == query.id
        assert decoded.query == query
        assert decoded.query.key() == query.key()

    @given(request=aggregate_requests())
    @settings(max_examples=200, deadline=None)
    def test_aggregate_line_roundtrip(self, request):
        line = json.dumps(request.to_dict())
        decoded = decode_request_line(line)
        assert decoded.kind == "aggregate"
        # `to_dict` drops k/bins/bin_width for ops that ignore them, so
        # identity holds on the wire form and the cache key, not on raw
        # dataclass equality.
        assert decoded.aggregate.to_dict() == request.to_dict()
        assert decoded.aggregate.key() == request.key()

    @given(response=query_responses())
    @settings(max_examples=200, deadline=None)
    def test_response_line_roundtrip(self, response):
        line = json.dumps(response.to_dict())
        rebuilt = QueryResponse.from_dict(json.loads(line))
        assert rebuilt.to_dict() == response.to_dict()

    @given(
        queries=st.lists(query_requests(), min_size=1, max_size=8),
        cuts=st.lists(st.integers(min_value=0, max_value=4096), max_size=12),
    )
    @settings(max_examples=100, deadline=None)
    def test_framing_is_chunking_invariant(self, queries, cuts):
        """Any chunking of the same byte stream frames the same lines."""
        stream = b"".join(
            (json.dumps(q.to_dict()) + "\n").encode("utf-8") for q in queries
        )
        assembler = LineAssembler()
        events = []
        for chunk in _chunked(stream, cuts):
            events.extend(assembler.feed(chunk))
        assembler.finish()
        assert [kind for kind, _ in events] == ["line"] * len(queries)
        decoded = [
            decode_request_line(line.decode("utf-8")) for _, line in events
        ]
        assert [d.query for d in decoded] == queries


# ----------------------------------------------------------------------
# degradation: garbage never raises, never silently drops
# ----------------------------------------------------------------------
class TestGarbageDegradation:
    @given(text=st.text(max_size=200))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_text_never_raises(self, text):
        decoded = decode_request_line(text, default_id=42)
        assert decoded.kind in ("query", "aggregate", "error")
        if decoded.kind == "error":
            assert decoded.error  # typed and non-empty, never silent

    @given(
        query=query_requests(),
        frac=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
    )
    @settings(max_examples=200, deadline=None)
    def test_truncated_query_lines_are_typed_errors(self, query, frac):
        line = json.dumps(query.to_dict())
        cut = int(len(line) * frac)
        decoded = decode_request_line(line[:cut], default_id=7)
        # A proper prefix of a JSON object is never a valid object.
        assert decoded.kind == "error"
        assert decoded.error
        assert decoded.id == 7

    @given(
        payload=st.recursive(
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(min_value=-(2**40), max_value=2**40),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=16),
            ),
            lambda children: st.one_of(
                st.lists(children, max_size=4),
                st.dictionaries(st.text(max_size=8), children, max_size=4),
            ),
            max_leaves=12,
        )
    )
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_json_documents_never_raise(self, payload):
        decoded = decode_request_line(json.dumps(payload))
        assert decoded.kind in ("query", "aggregate", "error")
        if decoded.kind == "error":
            assert decoded.error

    def test_pathological_literals_are_typed_errors(self):
        # Infinity ids overflow int(); deep nesting can hit the
        # recursion limit — both must degrade, not raise.
        for line in (
            '{"id": Infinity, "session": "s", "backend": "energy"}',
            "[" * 10_000 + "]" * 10_000,
            '{"session": "s"}',  # missing backend
            '{"backend": "energy"}',  # missing session
            '{"id": [1], "session": "s", "backend": "energy"}',
        ):
            decoded = decode_request_line(line)
            assert decoded.kind == "error", line
            assert decoded.error


# ----------------------------------------------------------------------
# the framing layer under oversized lines
# ----------------------------------------------------------------------
class TestOversizedResync:
    @given(
        junk_len=st.integers(min_value=65, max_value=4096),
        cuts=st.lists(st.integers(min_value=0, max_value=8192), max_size=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_oversized_line_flags_once_and_resyncs(self, junk_len, cuts):
        assembler = LineAssembler(max_line_bytes=64)
        follow_up = b'{"id": 1, "session": "s", "backend": "energy"}'
        stream = b"x" * junk_len + b"\n" + follow_up + b"\n"
        events = []
        for chunk in _chunked(stream, cuts):
            events.extend(assembler.feed(chunk))
        assembler.finish()
        kinds = [kind for kind, _ in events]
        assert kinds == ["oversized", "line"]
        assert events[1][1] == follow_up

    @given(tail_len=st.integers(min_value=0, max_value=200))
    @settings(max_examples=50, deadline=None)
    def test_unterminated_tail_is_dropped_at_eof(self, tail_len):
        # A mid-line disconnect leaves a partial line: it must die with
        # the connection, never parse as a query.
        assembler = LineAssembler(max_line_bytes=1024)
        events = assembler.feed(b'{"id": 1}\n' + b"y" * tail_len)
        assembler.finish()
        assert [kind for kind, _ in events] == ["line"]
        # after finish() the assembler is clean for reuse
        assert assembler.feed(b"z\n") == [("line", b"z")]

"""Fast path == naive recompute, property-tested at every layer.

The PR that introduced prefix-sum traces, the meter's per-owner memo,
and the profilers' report caches kept every original implementation
alive as a ``naive_*`` twin.  These tests hold the pairs equal — exact
or within 1e-9 J — over hypothesis-generated traces, meter histories,
and the fuzz generator's full device scenarios (where the shared
``fastpath_equivalence`` end oracle does the comparing).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import END_ORACLES, check_end
from repro.check.generator import generate_scenario
from repro.check.runner import run_scenario
from repro.power.meter import EnergyMeter
from repro.power.trace import PowerTrace
from repro.sim.kernel import Kernel

TOL = 1e-9

# (dt, power_mw) steps: strictly positive dt keeps appends ordered.
steps_st = st.lists(
    st.tuples(
        st.floats(min_value=1e-3, max_value=50.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=2000.0, allow_nan=False),
    ),
    min_size=0,
    max_size=40,
)
window_st = st.tuples(
    st.floats(min_value=-10.0, max_value=2500.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=2500.0, allow_nan=False),
)


def _build(steps):
    trace = PowerTrace()
    now = 0.0
    for dt, power in steps:
        now += dt
        trace.append(now, power)
    return trace, now


def _agree(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=TOL, abs_tol=TOL)


class TestTraceEquivalence:
    @given(steps=steps_st, window=window_st)
    @settings(max_examples=200, deadline=None)
    def test_prefix_sum_equals_naive_walk(self, steps, window):
        trace, _ = _build(steps)
        start, span = window
        end = start + abs(span)
        assert _agree(trace.energy_j(start, end), trace.naive_energy_j(start, end))

    @given(steps=steps_st)
    @settings(max_examples=100, deadline=None)
    def test_window_additivity(self, steps):
        trace, horizon = _build(steps)
        end = horizon + 7.0
        mid = end / 2.0
        whole = trace.energy_j(0.0, end)
        split = trace.energy_j(0.0, mid) + trace.energy_j(mid, end)
        assert _agree(whole, split)

    def test_same_instant_overwrite_keeps_paths_equal(self):
        trace = PowerTrace()
        trace.append(0.0, 100.0)
        trace.append(1.0, 200.0)
        trace.append(1.0, 50.0)  # overwrite: last-write-wins
        assert _agree(trace.energy_j(0.0, 3.0), trace.naive_energy_j(0.0, 3.0))
        assert _agree(trace.energy_j(0.0, 3.0), (100.0 + 2 * 50.0) / 1000.0)


class TestMeterEquivalence:
    @given(
        script=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),  # owner
                st.sampled_from(["cpu", "radio", "gps"]),
                st.floats(min_value=0.0, max_value=900.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=5.0, allow_nan=False),  # dt
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_memoized_queries_equal_full_rescan(self, script):
        kernel = Kernel()
        meter = EnergyMeter(kernel)
        for owner, component, power, dt in script:
            meter.set_draw(owner, component, power)
            if dt:
                kernel.run_for(dt)
            # Query mid-history so the memo is populated and then
            # invalidated by later appends — the interesting path.
            fast = meter.energy_by_owner(0.0, kernel.now)
            naive = meter.naive_energy_by_owner(0.0, kernel.now)
            assert set(fast) == set(naive)
            for owner_id in naive:
                assert _agree(fast[owner_id], naive[owner_id])
        assert _agree(
            meter.total_energy_j(0.0, kernel.now),
            meter.naive_energy_j(start=0.0, end=kernel.now),
        )

    def test_repeated_window_hits_cache_with_equal_joules(self):
        kernel = Kernel()
        meter = EnergyMeter(kernel)
        meter.set_draw(7, "cpu", 300.0)
        kernel.run_for(10.0)
        first = meter.energy_by_owner(0.0, kernel.now)
        hits_before = meter.query_cache_stats["hits"]
        second = meter.energy_by_owner(0.0, kernel.now)
        assert meter.query_cache_stats["hits"] > hits_before
        assert first == second
        assert _agree(second[7], meter.naive_energy_by_owner(0.0, kernel.now)[7])


class TestScenarioEquivalence:
    def test_oracle_registered(self):
        assert "fastpath_equivalence" in END_ORACLES

    @pytest.mark.parametrize("seed", [1, 42, 1337])
    def test_fuzz_scenarios_hold_fastpath_oracle(self, seed):
        scenario = generate_scenario(seed, ops=30)
        report = run_scenario(scenario, stride=5, metamorphic=False)
        assert report.passed, [str(v) for v in report.violations]

    def test_oracle_on_attack_device(self):
        from repro.workloads import ALL_ATTACKS

        run = ALL_ATTACKS["attack1"](60.0)
        run.eandroid.report(run.start, run.end)  # warm the report caches
        violations = check_end(
            run.system, run.eandroid, oracles=["fastpath_equivalence"]
        )
        assert violations == []

"""Tests for the attack-graph analyzer."""

import pytest

from repro.core import (
    AttackGraphAnalyzer,
    AttackKind,
    EAndroidAccounting,
    SCREEN_TARGET,
)
from repro.power import EnergyMeter
from repro.sim import Kernel


@pytest.fixture
def accounting():
    kernel = Kernel()
    return EAndroidAccounting(kernel, EnergyMeter(kernel))


class TestAttackGraphAnalyzer:
    def test_empty_graph(self, accounting):
        report = AttackGraphAnalyzer(accounting).analyze()
        assert report.node_count == 0
        assert report.max_chain_depth == 0
        assert report.longest_chain == []

    def test_chain_depth(self, accounting):
        accounting.begin_attack(AttackKind.SERVICE_BIND, 1, 2)
        accounting.begin_attack(AttackKind.ACTIVITY, 2, 3)
        accounting.begin_attack(AttackKind.SCREEN, 3, SCREEN_TARGET)
        report = AttackGraphAnalyzer(accounting).analyze()
        assert report.max_chain_depth == 3
        assert report.longest_chain == [1, 2, 3, SCREEN_TARGET]
        assert report.roots == [1]
        assert report.blast_radius[1] == 3

    def test_top_targets(self, accounting):
        accounting.begin_attack(AttackKind.ACTIVITY, 1, 9)
        accounting.begin_attack(AttackKind.ACTIVITY, 2, 9)
        accounting.begin_attack(AttackKind.SERVICE_BIND, 3, 9)
        report = AttackGraphAnalyzer(accounting).analyze()
        assert report.top_targets[0] == (9, 3)

    def test_live_only_filter(self, accounting):
        link = accounting.begin_attack(AttackKind.ACTIVITY, 1, 2)
        accounting.begin_attack(AttackKind.ACTIVITY, 5, 6)
        accounting.end_attack(link)
        analyzer = AttackGraphAnalyzer(accounting)
        assert analyzer.analyze(live_only=False).edge_count == 2
        live = analyzer.analyze(live_only=True)
        assert live.edge_count == 1
        assert 5 in live.roots and 1 not in live.roots

    def test_cycle_does_not_crash(self, accounting):
        accounting.begin_attack(AttackKind.ACTIVITY, 1, 2)
        accounting.begin_attack(AttackKind.ACTIVITY, 2, 1)
        report = AttackGraphAnalyzer(accounting).analyze()
        assert report.max_chain_depth >= 1

    def test_parallel_edges_counted(self, accounting):
        accounting.begin_attack(AttackKind.ACTIVITY, 1, 2)
        accounting.begin_attack(AttackKind.SERVICE_BIND, 1, 2)
        report = AttackGraphAnalyzer(accounting).analyze()
        assert report.edge_count == 2
        assert report.node_count == 2

    def test_render_text_on_real_scenario(self):
        from repro.workloads import run_hybrid_attack

        run = run_hybrid_attack(duration=20.0)
        analyzer = AttackGraphAnalyzer(run.eandroid.accounting)
        text = analyzer.render_text(system=run.system)
        assert "longest chain" in text
        assert "Weatherpro" in text
        assert "Screen" in text
        report = analyzer.analyze()
        assert report.max_chain_depth >= 3  # A -> B -> C -> screen

"""Failure injection: processes dying at the worst possible moments.

The paper's accounting has to survive a hostile environment — malware
killed mid-attack, victims force-stopped mid-window, whole chains
collapsing at once.  These tests kill things at every stage and check
the trackers, maps, and framework stay consistent.
"""

import pytest

from repro.android import (
    ActivityState,
    SCREEN_BRIGHT_WAKE_LOCK,
    ServiceState,
    explicit,
)
from repro.core import AttackKind, SCREEN_TARGET, attach_eandroid

from helpers import booted_system, make_app


@pytest.fixture
def rig():
    system = booted_system(
        make_app("com.mal"), make_app("com.vic"), make_app("com.third")
    )
    system.power_manager.acquire(
        system.package_manager.system_uid, SCREEN_BRIGHT_WAKE_LOCK, "rig"
    )
    return system, attach_eandroid(system)


class TestMalwareKilledMidAttack:
    def test_bind_attack_survives_malware_death(self, rig):
        system, ea = rig
        system.launch_app("com.mal")
        mal = system.uid_of("com.mal")
        vic = system.uid_of("com.vic")
        system.hardware.cpu.set_utilization(vic, 0.4)
        system.am.bind_service(mal, explicit("com.vic", "PlainService"))
        system.run_for(30.0)
        system.am.force_stop("com.mal")
        # The binding died with the process; the window closed at 30 s.
        link = ea.accounting.attacks_by_kind(AttackKind.SERVICE_BIND)[0]
        assert not link.alive
        charged = ea.accounting.collateral_breakdown(mal)[vic]
        in_window = system.hardware.meter.energy_j(owner=vic, end=link.end_time)
        assert charged == pytest.approx(in_window)
        # Energy after the death is NOT charged.
        system.run_for(60.0)
        assert ea.accounting.collateral_breakdown(mal)[vic] == pytest.approx(charged)

    def test_activity_attack_record_survives_malware_death(self, rig):
        system, ea = rig
        system.launch_app("com.mal")
        mal = system.uid_of("com.mal")
        system.am.start_activity(mal, explicit("com.vic", "PlainActivity"))
        system.am.force_stop("com.mal")
        # Activity link is about the victim's state, not the malware's
        # process — it stays alive until the victim is (re)started.
        assert any(
            l.kind == AttackKind.ACTIVITY and l.alive
            for l in ea.accounting.attack_log()
        )
        system.launch_app("com.vic")
        assert all(
            not l.alive
            for l in ea.accounting.attacks_by_kind(AttackKind.ACTIVITY)
        )


class TestVictimKilledMidAttack:
    def test_victim_force_stop_closes_service_links(self, rig):
        system, ea = rig
        mal = system.uid_of("com.mal")
        system.am.bind_service(mal, explicit("com.vic", "PlainService"))
        system.am.start_service(mal, explicit("com.vic", "PlainService"))
        system.run_for(10.0)
        system.am.force_stop("com.vic")
        assert ea.accounting.live_attacks() == []
        assert not system.am.running_services()

    def test_victim_death_releases_wakelock_and_link(self, rig):
        system, ea = rig
        system.launch_app("com.vic")
        vic = system.uid_of("com.vic")
        system.power_manager.acquire(vic, SCREEN_BRIGHT_WAKE_LOCK, "leak")
        system.press_home()
        assert any(
            l.kind == AttackKind.WAKELOCK for l in ea.accounting.live_attacks()
        )
        system.am.force_stop("com.vic")
        assert all(
            l.kind != AttackKind.WAKELOCK for l in ea.accounting.live_attacks()
        )
        assert system.power_manager.held_locks(vic) == []


class TestChainCollapse:
    def test_middle_of_chain_dies(self, rig):
        system, ea = rig
        mal = system.uid_of("com.mal")
        mid = system.uid_of("com.vic")
        leaf = system.uid_of("com.third")
        system.am.bind_service(mal, explicit("com.vic", "PlainService"))
        system.am.bind_service(mid, explicit("com.third", "PlainService"))
        assert ea.accounting.map_for(mal).open_targets() == {mid, leaf}
        system.run_for(5.0)
        system.am.force_stop("com.vic")
        # Both hops through the middle app die: malware's map closes.
        assert ea.accounting.map_for(mal).open_targets() == set()
        # The charge windows were archived intact.
        assert ea.accounting.map_for(mal).element(leaf).closed == [(0.0, 5.0)]

    def test_whole_cast_dies_no_dangling_state(self, rig):
        system, ea = rig
        mal = system.uid_of("com.mal")
        system.launch_app("com.mal")
        system.am.bind_service(mal, explicit("com.vic", "PlainService"))
        system.am.start_activity(mal, explicit("com.third", "PlainActivity"))
        for package in ("com.mal", "com.vic", "com.third"):
            system.am.force_stop(package)
        assert system.am.running_services() == []
        for package in ("com.mal", "com.vic", "com.third"):
            uid = system.uid_of(package)
            assert system.processes.processes_of_uid(uid) == []
        # Only the activity link (victim never restarted) may live on.
        for link in ea.accounting.live_attacks():
            assert link.kind in (AttackKind.ACTIVITY, AttackKind.INTERRUPT)


class TestFrameworkEdgeCases:
    def test_double_force_stop_is_error_free(self, rig):
        system, _ = rig
        system.launch_app("com.vic")
        system.am.force_stop("com.vic")
        system.am.force_stop("com.vic")  # idempotent: nothing to kill

    def test_restart_after_force_stop(self, rig):
        system, _ = rig
        system.launch_app("com.vic")
        system.am.force_stop("com.vic")
        record = system.launch_app("com.vic")
        assert record.state == ActivityState.RESUMED
        app = system.package_manager.app_for_package("com.vic")
        assert app.process is not None and app.process.alive

    def test_service_restart_after_death(self, rig):
        system, _ = rig
        mal = system.uid_of("com.mal")
        system.am.start_service(mal, explicit("com.vic", "PlainService"))
        system.am.force_stop("com.vic")
        record = system.am.start_service(mal, explicit("com.vic", "PlainService"))
        assert record.state == ServiceState.RUNNING

    def test_dialog_tap_with_no_dialog(self, rig):
        system, _ = rig
        system.launch_app("com.vic")
        system.tap_dialog_ok()  # PlainActivity has no handler: no-op

    def test_back_press_on_empty_screen(self, rig):
        system, _ = rig
        # Home screen: back swallowed by the launcher.
        system.press_back()
        assert system.foreground_package() == "com.android.launcher"

    def test_kernel_error_handler_isolates_bad_app_code(self, rig):
        system, _ = rig
        errors = []
        system.kernel.set_error_handler(lambda event, exc: errors.append(exc))
        system.kernel.call_later(1.0, lambda: 1 / 0, name="buggy-app-callback")
        system.run_for(2.0)
        assert len(errors) == 1
        # The device keeps working afterwards.
        system.launch_app("com.vic")
        assert system.foreground_package() == "com.vic"

    def test_uninstall_running_app_then_reports_still_work(self, rig):
        system, ea = rig
        system.launch_app("com.vic")
        vic = system.uid_of("com.vic")
        system.hardware.cpu.set_utilization(vic, 0.3)
        system.run_for(10.0)
        system.am.force_stop("com.vic")
        system.hardware.cpu.set_utilization(vic, 0.0)
        system.package_manager.uninstall("com.vic")
        report = ea.report()
        # The uid's history remains, labelled by the fallback.
        assert report.entry_for(f"uid:{vic}") is not None


class TestUninstall:
    def test_uninstall_running_app_tears_everything_down(self, rig):
        """§I: the battery interface exists so users can delete energy
        hogs — deleting must stop the drain."""
        system, ea = rig
        system.launch_app("com.mal")
        mal = system.uid_of("com.mal")
        system.am.bind_service(mal, explicit("com.vic", "PlainService"))
        lock = system.power_manager.acquire(mal, SCREEN_BRIGHT_WAKE_LOCK, "l")
        system.run_for(10.0)
        system.uninstall("com.mal")
        assert not system.package_manager.is_installed("com.mal")
        assert not lock.held
        assert system.am.running_services() == []  # victim's service unbound
        assert system.hardware.meter.current_power_mw(mal) == 0.0

    def test_uninstall_idle_app(self, rig):
        system, _ = rig
        system.uninstall("com.third")
        assert not system.package_manager.is_installed("com.third")

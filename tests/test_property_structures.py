"""Property-based tests on core data structures and invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.android import AndroidManifest, ComponentDecl, ComponentKind, IntentFilterDecl
from repro.android.timeline import ForegroundTimeline
from repro.core import AttackKind, LinkGraph
from repro.core.energy_map import CollateralMapSet
from repro.power import Battery, EnergyMeter
from repro.sim import Kernel


# ----------------------------------------------------------------------
# ForegroundTimeline
# ----------------------------------------------------------------------
@st.composite
def timelines(draw):
    count = draw(st.integers(min_value=1, max_value=20))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
    )
    uids = draw(
        st.lists(
            st.one_of(st.none(), st.integers(min_value=10000, max_value=10004)),
            min_size=count,
            max_size=count,
        )
    )
    timeline = ForegroundTimeline()
    for t, uid in zip(times, uids):
        timeline.record(t, uid)
    return timeline


class TestTimelineProperties:
    @given(timelines(), st.floats(min_value=0.0, max_value=1000.0))
    def test_uid_at_matches_intervals(self, timeline, probe):
        """uid_at(t) == the uid whose interval covers t."""
        uid = timeline.uid_at(probe)
        if uid is None:
            return
        intervals = timeline.intervals(uid, 0.0, 1001.0)
        assert any(start <= probe < end for start, end in intervals) or any(
            start <= probe for start, end in intervals if end == 1001.0
        )

    @given(timelines())
    def test_intervals_partition_time(self, timeline):
        """Per-uid intervals are disjoint and ordered."""
        changes = timeline.changes()
        uids = {uid for _, uid in changes if uid is not None}
        all_intervals = []
        for uid in uids:
            intervals = timeline.intervals(uid, 0.0, 2000.0)
            for start, end in intervals:
                assert start < end
            all_intervals.extend(intervals)
        all_intervals.sort()
        for (s1, e1), (s2, e2) in zip(all_intervals, all_intervals[1:]):
            assert e1 <= s2 + 1e-9  # no overlap across uids either

    def test_out_of_order_rejected(self):
        timeline = ForegroundTimeline()
        timeline.record(5.0, 1)
        with pytest.raises(ValueError):
            timeline.record(4.0, 2)

    def test_duplicate_time_overwrites(self):
        timeline = ForegroundTimeline()
        timeline.record(1.0, 1)
        timeline.record(1.0, 2)
        assert timeline.uid_at(1.0) == 2

    def test_same_uid_compacted(self):
        timeline = ForegroundTimeline()
        timeline.record(1.0, 7)
        timeline.record(2.0, 7)
        assert len(timeline.changes()) == 1

    def test_reverse_window_rejected(self):
        timeline = ForegroundTimeline()
        timeline.record(0.0, 1)
        with pytest.raises(ValueError):
            timeline.intervals(1, 5.0, 1.0)


# ----------------------------------------------------------------------
# Manifest XML round-trip
# ----------------------------------------------------------------------
name_st = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=12,
)


@st.composite
def manifests(draw):
    package = "com." + draw(name_st).lower()
    permissions = frozenset(
        f"android.permission.{draw(name_st).upper()}"
        for _ in range(draw(st.integers(0, 4)))
    )
    components = []
    for i in range(draw(st.integers(0, 5))):
        filters = tuple(
            IntentFilterDecl(
                actions=frozenset({f"action.{draw(name_st)}"}),
                categories=frozenset(
                    f"category.{draw(name_st)}"
                    for _ in range(draw(st.integers(0, 2)))
                ),
            )
            for _ in range(draw(st.integers(0, 2)))
        )
        components.append(
            ComponentDecl(
                name=f"Component{i}",
                kind=draw(st.sampled_from(list(ComponentKind))),
                exported=draw(st.booleans()),
                intent_filters=filters,
                transparent=draw(st.booleans()),
            )
        )
    return AndroidManifest(
        package=package,
        category=draw(st.sampled_from(["tools", "game", "social"])),
        uses_permissions=permissions,
        components=tuple(components),
    )


class TestManifestRoundTripProperty:
    @given(manifests())
    def test_xml_roundtrip_identity(self, manifest):
        parsed = AndroidManifest.from_xml(manifest.to_xml())
        assert parsed.package == manifest.package
        assert parsed.category == manifest.category
        assert parsed.uses_permissions == manifest.uses_permissions
        assert len(parsed.components) == len(manifest.components)
        for a, b in zip(parsed.components, manifest.components):
            assert (a.name, a.kind, a.exported, a.transparent) == (
                b.name,
                b.kind,
                b.exported,
                b.transparent,
            )
            assert a.intent_filters == b.intent_filters


# ----------------------------------------------------------------------
# Meter / battery
# ----------------------------------------------------------------------
@st.composite
def draw_schedules(draw):
    """Random (dt, owner, component, mw) draw-change schedules."""
    steps = draw(st.integers(min_value=1, max_value=25))
    return [
        (
            draw(st.floats(min_value=0.0, max_value=50.0, allow_nan=False)),
            draw(st.integers(min_value=1, max_value=4)),
            draw(st.sampled_from(["cpu", "radio", "gps"])),
            draw(st.floats(min_value=0.0, max_value=2000.0, allow_nan=False)),
        )
        for _ in range(steps)
    ]


class TestMeterProperties:
    @given(draw_schedules())
    def test_owner_sum_equals_total(self, schedule):
        kernel = Kernel()
        meter = EnergyMeter(kernel)
        for dt, owner, component, mw in schedule:
            kernel.run_for(dt)
            meter.set_draw(owner, component, mw)
        kernel.run_for(10.0)
        total = meter.total_energy_j()
        assert total == pytest.approx(
            sum(meter.energy_by_owner().values()), rel=1e-9, abs=1e-9
        )
        component_sum = sum(
            sum(meter.energy_by_component(owner).values())
            for owner in meter.owners()
        )
        assert total == pytest.approx(component_sum, rel=1e-9, abs=1e-9)

    @given(draw_schedules(), st.floats(min_value=0.0, max_value=500.0))
    def test_battery_monotone_nonincreasing(self, schedule, probe):
        kernel = Kernel()
        meter = EnergyMeter(kernel)
        battery = Battery(kernel, meter, capacity_j=1000.0)
        for dt, owner, component, mw in schedule:
            kernel.run_for(dt)
            meter.set_draw(owner, component, mw)
        kernel.run_for(10.0)
        now = kernel.now
        earlier = min(probe, now)
        assert battery.percent(earlier) >= battery.percent(now) - 1e-9

    @given(draw_schedules())
    def test_windowed_energy_additive(self, schedule):
        kernel = Kernel()
        meter = EnergyMeter(kernel)
        for dt, owner, component, mw in schedule:
            kernel.run_for(dt)
            meter.set_draw(owner, component, mw)
        kernel.run_for(10.0)
        now = kernel.now
        mid = now / 2
        whole = meter.total_energy_j(start=0.0, end=now)
        parts = meter.total_energy_j(0.0, mid) + meter.total_energy_j(mid, now)
        assert whole == pytest.approx(parts, rel=1e-9, abs=1e-9)


# ----------------------------------------------------------------------
# Link graph + map set
# ----------------------------------------------------------------------
@st.composite
def link_scripts(draw):
    """Random begin/end scripts over a small uid universe."""
    steps = draw(st.integers(min_value=1, max_value=30))
    script = []
    for _ in range(steps):
        if draw(st.booleans()):
            script.append(
                (
                    "begin",
                    draw(st.integers(min_value=1, max_value=5)),
                    draw(st.integers(min_value=1, max_value=6)),
                )
            )
        else:
            script.append(("end", draw(st.integers(min_value=0, max_value=40)), 0))
    return script


class TestGraphMapProperties:
    @given(link_scripts())
    def test_maps_always_match_reachability(self, script):
        graph = LinkGraph()
        maps = CollateralMapSet()
        live = []
        time = 0.0
        for action, a, b in script:
            time += 1.0
            if action == "begin" and a != b:
                live.append(graph.begin(AttackKind.ACTIVITY, a, b, time))
            elif action == "end" and live:
                link = live.pop(a % len(live))
                graph.end(link, time)
            maps.sync(time, graph)
            for host in graph.hosts():
                assert maps.map_for(host).open_targets() == graph.reachable_from(
                    host
                )

    @given(link_scripts())
    def test_total_window_time_bounded_by_elapsed(self, script):
        graph = LinkGraph()
        maps = CollateralMapSet()
        live = []
        time = 0.0
        for action, a, b in script:
            time += 1.0
            if action == "begin" and a != b:
                live.append(graph.begin(AttackKind.SERVICE_BIND, a, b, time))
            elif action == "end" and live:
                graph.end(live.pop(a % len(live)), time)
            maps.sync(time, graph)
        for host in graph.hosts():
            for _, element in maps.map_for(host).items():
                assert element.total_duration(until=time) <= time + 1e-9

"""Tests for the experiment modules — each figure's claim must hold."""

import pytest

from repro.experiments import (
    run_efficiency,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
)


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig1()

    def test_camera_blamed(self, result):
        assert result.camera_blamed
        assert result.camera_percent > 30.0
        assert result.message_percent < 10.0

    def test_render(self, result):
        text = result.render_text()
        assert "Camera" in text and "Message" in text


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig2()

    def test_within_three_points_of_paper(self, result):
        assert result.max_deviation_pct() < 3.0

    def test_render_contains_categories(self, result):
        text = result.render_text()
        assert "game_action" in text
        assert "paper" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3()

    def test_ordering(self, result):
        assert result.ordering_holds

    def test_render_has_chart(self, result):
        text = result.render_text()
        assert "battery %" in text
        assert "brightness_full" in text


class TestFig6And7:
    def test_fig6_union(self):
        result = run_fig6()
        assert result.union_not_sum
        assert len(result.links) >= 3

    def test_fig7_chain(self):
        result = run_fig7()
        assert result.chain_complete
        assert result.root_breakdown["Screen"] > 0


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig8()

    def test_breakdown_complete(self, result):
        assert result.breakdown_complete

    def test_contacts_total_includes_chain(self, result):
        assert result.contacts.energy_j > result.contacts.own_energy_j

    def test_render_two_panels(self, result):
        text = result.render_text()
        assert "(a) Contacts" in text and "(b) Message" in text


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        # 60 s as in the paper — shorter durations leave the 9f control
        # (screen auto-off at 30 s) indistinguishable from the attack.
        return run_fig9(attack_duration=60.0)

    def test_six_panels(self, result):
        assert len(result.panels) == 6

    def test_attacks_stealthy_on_android(self, result):
        assert result.all_attacks_stealthy_on_android

    def test_attacks_detected_by_eandroid(self, result):
        assert result.all_attacks_detected_by_eandroid

    def test_attack_panels_have_controls(self, result):
        assert result.panels["9e_attack5"].control is not None
        assert result.panels["9f_attack6"].control is not None

    def test_attack_energy_exceeds_normal(self, result):
        for key in ("9e_attack5", "9f_attack6"):
            panel = result.panels[key]
            attack_total = panel.run.system.hardware.meter.screen_energy_j(
                start=panel.run.start, end=panel.run.end
            )
            control = panel.control
            normal_total = control.run.system.hardware.meter.screen_energy_j(
                start=control.run.start, end=control.run.end
            )
            assert attack_total > normal_total

    def test_render(self, result):
        text = result.render_text()
        assert "Fig. 9 (9c attack #3)" in text


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig10(iterations=12)

    def test_framework_overhead_small(self, result):
        assert result.framework_overhead_small

    def test_complete_overhead_bounded(self, result):
        assert result.complete_overhead_bounded

    def test_render_has_table1(self, result):
        text = result.render_text()
        assert "Table I" in text
        assert "bindService()" in text


class TestFig11:
    def test_similar_performance(self):
        result = run_fig11(rounds=8, inner=1000)
        assert 0.4 < result.score_ratio() < 2.5  # generous at tiny sizes
        assert "TOTAL" in result.render_text()


class TestEfficiency:
    def test_energy_parity_exact(self):
        result = run_efficiency()
        assert result.all_identical
        assert "hijack_60s" in result.render_text()


class TestPowerTutorAgreement:
    """§VI: 'The results of PowerTutor are similar to those of Android's
    interface' — the malware is equally invisible to both baselines."""

    def test_attack3_stealthy_under_powertutor_too(self):
        from repro.workloads import run_attack3

        run = run_attack3(duration=30.0)
        pt = run.powertutor_report()
        assert pt.percent_of("Cleaner") < 2.0
        assert pt.entry_for("Victim") is not None

    def test_attack6_powertutor_blames_foreground(self):
        """PowerTutor's specific failure: the pinned screen's energy goes
        to whoever is foreground, not to the lock holder."""
        from repro.workloads import run_attack6

        run = run_attack6(duration=60.0)
        pt = run.powertutor_report()
        # The malware shows ~nothing; the foreground app absorbs the screen.
        assert pt.percent_of("Qrscanner") < 2.0
        foreground_label = run.system.package_manager.label_for_uid(
            run.system.foreground_uid()
        )
        screen_j = run.system.hardware.meter.screen_energy_j(
            start=run.start, end=run.end
        )
        assert pt.energy_of(foreground_label) >= screen_j * 0.9

"""The artifact store: blobs, refs, gc, migrations, cache clients."""

import json

import pytest

from repro.exec.cache import CACHE_REF_NAMESPACE, CacheStats, ResultCache
from repro.offline import capture_trace
from repro.store import (
    CODECS,
    MIGRATIONS,
    ArtifactCorruptError,
    ArtifactNotFoundError,
    ArtifactStore,
    Codec,
    CodecError,
    content_digest,
    decode_artifact,
    get_codec,
    migrate_store,
    migration_path,
    register_codec,
    register_migration,
)
from repro.telemetry import (
    ArtifactStoredEvent,
    CacheCorruptionEvent,
    Category,
    capture,
)
from repro.workloads import run_attack1


@pytest.fixture(scope="module")
def trace():
    run = run_attack1(30.0)
    return capture_trace(run.system, run.eandroid)


# ----------------------------------------------------------------------
# blobs + manifests
# ----------------------------------------------------------------------
class TestBlobs:
    def test_put_get_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        info = store.put({"answer": 42}, "json", meta={"origin": "test"})
        assert info.digest == content_digest(b'{"answer":42}')
        assert info.kind == "document"
        assert info.codec == "json"
        assert store.get(info.digest) == {"answer": 42}
        assert store.info(info.digest).meta == {"origin": "test"}

    def test_put_is_idempotent_by_digest(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = store.put({"a": 1}, "json")
        second = store.put({"a": 1}, "json")
        assert first.digest == second.digest
        assert store.stats()["objects"] == 1

    def test_get_bytes_detects_corruption(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        info = store.put({"a": 1}, "json")
        blob = store.object_path(info.digest)
        blob.write_bytes(b'{"a":2}')
        with pytest.raises(ArtifactCorruptError):
            store.get_bytes(info.digest)
        # verify=False returns whatever is on disk.
        assert store.get_bytes(info.digest, verify=False) == b'{"a":2}'

    def test_missing_digest_raises(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(ArtifactNotFoundError):
            store.get_bytes("0" * 64)
        with pytest.raises(ArtifactNotFoundError):
            store.info("0" * 64)

    def test_trace_codecs_store_device_traces(self, tmp_path, trace):
        store = ArtifactStore(tmp_path / "store")
        via_json = store.put(trace, "trace-json")
        via_bin = store.put(trace, "trace-bin")
        assert via_json.kind == via_bin.kind == "device-trace"
        expected = json.loads(trace.to_json())
        assert json.loads(store.get(via_json.digest).to_json()) == expected
        assert json.loads(store.get(via_bin.digest).to_json()) == expected

    def test_artifacts_iterates_manifests(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        digests = {store.put({"i": i}, "json").digest for i in range(3)}
        assert {info.digest for info in store.artifacts()} == digests

    def test_read_only_store_creates_no_directory(self, tmp_path):
        root = tmp_path / "never"
        store = ArtifactStore(root)
        assert store.get_ref("exec", "nope") is None
        assert store.refs() == {}
        assert list(store.artifacts()) == []
        assert store.gc().scanned == 0
        assert not root.exists()

    def test_put_publishes_stored_event(self, tmp_path):
        with capture(categories=[Category.STORE]) as recorder:
            store = ArtifactStore(tmp_path / "store")
            info = store.put({"a": 1}, "json")
        events = [e for e in recorder.events if isinstance(e, ArtifactStoredEvent)]
        assert len(events) == 1
        assert events[0].digest == info.digest
        assert events[0].codec == "json"
        assert events[0].size == info.size


# ----------------------------------------------------------------------
# refs + gc
# ----------------------------------------------------------------------
class TestRefs:
    def test_set_get_delete(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        info = store.put({"a": 1}, "json")
        store.set_ref("manual", "mine", info.digest)
        assert store.get_ref("manual", "mine") == info.digest
        assert store.refs("manual") == {("manual", "mine"): info.digest}
        assert store.delete_ref("manual", "mine") is True
        assert store.delete_ref("manual", "mine") is False
        assert store.get_ref("manual", "mine") is None

    def test_awkward_names_are_percent_encoded(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        info = store.put({"a": 1}, "json")
        name = "weird/name with spaces:1"
        store.set_ref("manual", name, info.digest)
        assert store.get_ref("manual", name) == info.digest
        assert ("manual", name) in store.refs()

    def test_malformed_ref_reads_as_none(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        path = store.ref_path("manual", "bad")
        path.parent.mkdir(parents=True)
        path.write_text("not json", encoding="utf-8")
        assert store.get_ref("manual", "bad") is None
        assert store.refs() == {}

    def test_gc_keeps_referenced_objects(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        kept = store.put({"keep": True}, "json")
        dropped = store.put({"keep": False}, "json")
        store.set_ref("manual", "kept", kept.digest)
        report = store.gc()
        assert report.scanned == 2
        assert report.live == 1
        assert report.removed == 1
        assert report.removed_digests == [dropped.digest]
        assert store.has(kept.digest)
        assert not store.has(dropped.digest)
        assert not store.meta_path(dropped.digest).exists()

    def test_gc_dry_run_removes_nothing(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        info = store.put({"a": 1}, "json")
        report = store.gc(dry_run=True)
        assert report.removed == 1
        assert report.dry_run is True
        assert store.has(info.digest)

    def test_verify_reports_every_problem(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.verify() == []
        ok = store.put({"fine": True}, "json")
        bad = store.put({"fine": False}, "json")
        store.object_path(bad.digest).write_bytes(b"garbled")
        store.set_ref("manual", "dangling", "f" * 64)
        problems = store.verify()
        assert any(bad.digest in p and "corrupt" in p for p in problems)
        assert any("dangling" in p for p in problems)
        assert not any(ok.digest in p for p in problems)


# ----------------------------------------------------------------------
# codec versioning + migrations
# ----------------------------------------------------------------------
class _V2Codec(Codec):
    name = "test-v2"
    kind = "test-doc"
    version = 2

    def encode(self, obj):
        return json.dumps({"v": 2, "payload": obj}, sort_keys=True).encode()

    def decode(self, data):
        document = json.loads(data.decode("utf-8"))
        if document.get("v") != 2:
            raise CodecError(f"not a v2 document: {document!r}")
        return document["payload"]


@pytest.fixture()
def v2_codec():
    register_codec(_V2Codec())
    yield get_codec("test-v2")
    CODECS.pop("test-v2", None)
    MIGRATIONS.pop(("test-v2", 1), None)


class TestMigrations:
    def test_decode_walks_the_migration_chain(self, v2_codec):
        v1_bytes = json.dumps({"v": 1, "data": [1, 2]}).encode()

        def upgrade(data: bytes) -> bytes:
            old = json.loads(data.decode("utf-8"))
            return v2_codec.encode(old["data"])

        register_migration("test-v2", 1, upgrade)
        assert migration_path("test-v2", 1) == [1]
        assert migration_path("test-v2", 2) == []
        assert decode_artifact("test-v2", v1_bytes, 1) == [1, 2]

    def test_missing_migration_step_raises(self, v2_codec):
        with pytest.raises(CodecError, match="no migration"):
            decode_artifact("test-v2", b"{}", 1)
        assert migration_path("test-v2", 1) == []

    def test_newer_version_than_codec_raises(self, v2_codec):
        with pytest.raises(CodecError, match="newer"):
            decode_artifact("test-v2", b"{}", 3)

    def test_store_get_runs_migrations(self, tmp_path, v2_codec):
        register_migration(
            "test-v2",
            1,
            lambda data: v2_codec.encode(json.loads(data.decode())["data"]),
        )
        store = ArtifactStore(tmp_path / "store")
        v1_bytes = json.dumps({"v": 1, "data": "old"}).encode()
        info = store.put_bytes(v1_bytes, "test-doc", "test-v2", 1)
        assert store.get(info.digest) == "old"

    def test_migrate_store_transcodes_and_repoints(self, tmp_path, trace):
        store = ArtifactStore(tmp_path / "store")
        info = store.put(trace, "trace-json")
        store.set_ref("manual", "t", info.digest)
        report = migrate_store(store, "trace-bin")
        assert len(report["migrated"]) == 1
        assert report["refs_repointed"] == 1
        new_digest = store.get_ref("manual", "t")
        assert new_digest != info.digest
        assert store.info(new_digest).codec == "trace-bin"
        assert json.loads(store.get(new_digest).to_json()) == json.loads(
            trace.to_json()
        )


# ----------------------------------------------------------------------
# the exec cache as a store client
# ----------------------------------------------------------------------
class TestCacheStoreClient:
    def test_entries_are_store_refs(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        blob = cache.store("exp", {"n": 1}, {"metrics": {"x": 1.0}})
        assert blob.is_file()
        refs = cache.store_backend.refs(CACHE_REF_NAMESPACE)
        assert len(refs) == 1
        (namespace, name), digest = next(iter(refs.items()))
        assert namespace == CACHE_REF_NAMESPACE
        assert name.startswith("exp-")
        assert cache.store_backend.object_path(digest) == blob

    def test_corrupt_entry_is_a_counted_observable_miss(self, tmp_path, capsys):
        cache = ResultCache(tmp_path / "cache", verbose=True)
        blob = cache.store("exp", {"n": 1}, {"metrics": {}})
        with capture(categories=[Category.STORE]) as recorder:
            cache_again = ResultCache(tmp_path / "cache", verbose=True)
            blob.write_bytes(b"\x00 garbled \xff")
            assert cache_again.load("exp", {"n": 1}) is None
        assert cache_again.stats.misses == 1
        assert cache_again.stats.corruptions == 1
        assert cache_again.stats.as_dict()["corruptions"] == 1
        events = [e for e in recorder.events if isinstance(e, CacheCorruptionEvent)]
        assert len(events) == 1
        assert events[0].path == str(blob)
        assert str(blob) in capsys.readouterr().err

    def test_plain_miss_is_not_a_corruption(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.load("exp", {"n": 1}) is None
        assert cache.stats.misses == 1
        assert cache.stats.corruptions == 0
        assert "corruptions" not in cache.stats.as_dict()

    def test_clear_spares_other_namespaces(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.store("exp", {"n": 1}, {"metrics": {}})
        pinned = cache.store_backend.put({"keep": True}, "json")
        cache.store_backend.set_ref("manual", "pin", pinned.digest)
        assert cache.clear() == 1
        assert cache.load("exp", {"n": 1}) is None
        assert cache.store_backend.has(pinned.digest)

    def test_stats_dict_shape_is_stable(self):
        # The manifest equality tests depend on exactly these keys.
        assert CacheStats(hits=1, misses=2, stores=3).as_dict() == {
            "hits": 1,
            "misses": 2,
            "stores": 3,
        }

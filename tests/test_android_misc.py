"""Tests for SurfaceFlinger, Binder, broadcasts, and the event log."""

import pytest

from repro.android import (
    ACTION_USER_PRESENT,
    AndroidSystem,
    SurfaceFlinger,
    implicit,
)
from repro.core import CollateralEvent, CollateralEventType, EventLog
from repro.experiments.tables import render_ascii_series, render_table
from repro.sim import ProcessTable

from helpers import booted_system, make_app


class TestSurfaceFlinger:
    @pytest.fixture
    def system(self):
        return booted_system(make_app("com.ui"), make_app("com.other"))

    def test_size_changes_with_foreground(self, system):
        home_size = system.surfaceflinger.shared_vm_size_kib()
        system.launch_app("com.ui")
        app_size = system.surfaceflinger.shared_vm_size_kib()
        assert app_size != home_size

    def test_size_changes_with_dialog(self, system):
        record = system.launch_app("com.ui")
        before = system.surfaceflinger.shared_vm_size_kib()
        record.instance.show_dialog("exit")
        with_dialog = system.surfaceflinger.shared_vm_size_kib()
        assert with_dialog != before
        record.instance.dismiss_dialog()
        assert system.surfaceflinger.shared_vm_size_kib() == before

    def test_expected_size_matches_live_size(self, system):
        """The malware's offline precomputation equals the runtime value."""
        record = system.launch_app("com.ui")
        record.instance.show_dialog("exit")
        assert system.surfaceflinger.shared_vm_size_kib() == (
            SurfaceFlinger.expected_size_for("com.ui", "PlainActivity", "exit")
        )

    def test_signature_distinguishes_apps(self):
        size_a = SurfaceFlinger.expected_size_for("com.a", "Main", None)
        size_b = SurfaceFlinger.expected_size_for("com.b", "Main", None)
        assert size_a != size_b

    def test_signature_deterministic(self):
        first = SurfaceFlinger.expected_size_for("com.x", "Act", "dlg")
        second = SurfaceFlinger.expected_size_for("com.x", "Act", "dlg")
        assert first == second

    def test_empty_screen_base_size(self):
        flinger = SurfaceFlinger(lambda: None)
        assert flinger.shared_vm_size_kib() == 8_192
        assert flinger.current_ui_key() == "<none>"


class TestBinder:
    def test_cross_app_transactions_counted(self):
        system = booted_system(make_app("com.a"), make_app("com.b"))
        before = system.binder.transaction_count
        uid = system.uid_of("com.a")
        from repro.android import explicit

        system.am.start_service(uid, explicit("com.b", "PlainService"))
        assert system.binder.transaction_count > before

    def test_same_app_transactions_not_counted(self):
        system = booted_system(make_app("com.a"))
        uid = system.uid_of("com.a")
        before = system.binder.transaction_count
        system.binder.transact(uid, uid)
        assert system.binder.transaction_count == before

    def test_unlink_prevents_notification(self):
        from repro.android import Binder

        table = ProcessTable()
        binder = Binder(table)
        record = table.spawn(uid=1, name="x")
        deaths = []
        token = binder.link_to_death(record.pid, lambda rec: deaths.append(rec.pid))
        assert binder.unlink_to_death(token) is True
        assert binder.unlink_to_death(token) is False
        table.kill(record.pid)
        assert deaths == []

    def test_token_fires_once(self):
        from repro.android import Binder

        table = ProcessTable()
        binder = Binder(table)
        record = table.spawn(uid=1, name="x")
        deaths = []
        binder.link_to_death(record.pid, lambda rec: deaths.append(rec.pid))
        table.kill(record.pid)
        assert deaths == [record.pid]


class TestBroadcasts:
    def test_runtime_receiver(self):
        system = booted_system(make_app("com.a"))
        uid = system.uid_of("com.a")
        received = []
        system.am.register_receiver(uid, "custom.ACTION", received.append)
        count = system.am.send_broadcast(uid, implicit("custom.ACTION"))
        assert count == 1
        assert len(received) == 1

    def test_broadcast_requires_action(self):
        system = booted_system(make_app("com.a"))
        from repro.android import Intent

        with pytest.raises(ValueError):
            system.am.send_broadcast(system.uid_of("com.a"), Intent())

    def test_unlock_reaches_manifest_receivers(self):
        from repro.attacks import build_hijack_malware
        from repro.apps import build_camera_app

        system = AndroidSystem()
        system.install(build_camera_app())
        system.install(build_hijack_malware())
        system.boot()
        delivered = system.am.send_broadcast(
            system.package_manager.system_uid, implicit(ACTION_USER_PRESENT)
        )
        assert delivered == 1  # the malware's AutoStartReceiver


class TestEventLog:
    def test_record_and_filter(self):
        log = EventLog()
        log.record(
            CollateralEvent(1.0, CollateralEventType.SERVICE_BIND, 1, 2)
        )
        log.record(
            CollateralEvent(2.0, CollateralEventType.SCREEN_STATE, None, None)
        )
        assert len(log) == 2
        assert len(log.of_type(CollateralEventType.SERVICE_BIND)) == 1
        assert log.all()[0].is_cross_app
        assert not log.all()[1].is_cross_app

    def test_same_uid_not_cross_app(self):
        event = CollateralEvent(0.0, CollateralEventType.SERVICE_START, 5, 5)
        assert not event.is_cross_app


class TestRenderers:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"], [("a", 1.5), ("bbbb", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_render_table_with_title(self):
        text = render_table(["x"], [("y",)], title="The Title")
        assert text.startswith("The Title")

    def test_ascii_series_markers_and_legend(self):
        series = [
            ("one", [(0.0, 100.0), (5.0, 50.0), (10.0, 0.0)]),
            ("two", [(0.0, 100.0), (10.0, 80.0)]),
        ]
        text = render_ascii_series(series)
        assert "*=one" in text
        assert "o=two" in text
        assert "battery %" in text

    def test_ascii_series_empty(self):
        assert render_ascii_series([]) == "(no data)"


class TestIncomingCall:
    def test_call_pauses_foreground_and_returns(self):
        system = booted_system(make_app("com.app"))
        record = system.launch_app("com.app")
        call = system.incoming_call(ring_seconds=5.0)
        assert call.transparent
        from repro.android import ActivityState

        assert record.state == ActivityState.PAUSED
        system.run_for(6.0)
        assert record.state == ActivityState.RESUMED

    def test_ringtone_draws_audio_power(self):
        system = booted_system(make_app("com.app"))
        system.launch_app("com.app")
        system.incoming_call(ring_seconds=5.0)
        phone_uid = system.phone.uid
        assert system.hardware.meter.current_power_mw(phone_uid) > 0
        system.run_for(6.0)
        assert system.hardware.meter.current_power_mw(phone_uid) == 0

    def test_unintentional_wakelock_collateral(self):
        """§III-A: a system popup (no malware anywhere) still triggers
        the victim's wakelock bug; E-Android charges the *victim*, and
        no app-level attack link is created for the system phone."""
        from repro.apps import VICTIM_PACKAGE, build_victim_app
        from repro.core import AttackKind, SCREEN_TARGET, attach_eandroid

        system = AndroidSystem()
        system.install(build_victim_app())
        system.boot()
        ea = attach_eandroid(system)
        system.launch_app(VICTIM_PACKAGE)
        victim = system.uid_of(VICTIM_PACKAGE)
        system.incoming_call(ring_seconds=30.0)
        # The victim left the foreground holding its screen wakelock.
        links = ea.accounting.live_attacks()
        assert any(
            l.kind == AttackKind.WAKELOCK and l.driving_uid == victim
            for l in links
        )
        # The system phone app drives nothing.
        assert all(l.driving_uid == victim for l in links)
        system.run_for(20.0)
        assert SCREEN_TARGET in ea.accounting.collateral_breakdown(victim)

"""Determinism of the seeded RNG, across processes and hash seeds.

``SeededRng.fork`` used to derive child seeds with ``hash((seed,
label))``, which varies with ``PYTHONHASHSEED`` — fork-heavy consumers
(the scenario generator, the synthetic corpus) silently produced
different streams in different worker processes.  These tests pin the
fix: the derivation is a stable SHA-256 digest.
"""

import json
import os
import subprocess
import sys

from repro.sim import SeededRng, derive_seed

_CHILD_SCRIPT = """
import json, sys
from repro.sim import SeededRng, derive_seed

rng = SeededRng(1234)
streams = {}
for label in ("alpha", "beta", "structure", "ops", "permutation"):
    child = rng.fork(label)
    streams[label] = {
        "seed": child.seed,
        "ints": [child.randint(0, 10**9) for _ in range(5)],
        "floats": [child.uniform(0.0, 1.0) for _ in range(5)],
    }
streams["derived"] = [derive_seed(7, f"scenario-{i}") for i in range(10)]
json.dump(streams, sys.stdout)
"""


def _fork_streams(hash_seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = os.pathsep.join(sys.path)
    output = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(output.stdout)


class TestForkDeterminism:
    def test_identical_streams_across_hash_seeds(self):
        assert _fork_streams("0") == _fork_streams("1")

    def test_subprocess_matches_in_process(self):
        remote = _fork_streams("42")
        child = SeededRng(1234).fork("alpha")
        assert remote["alpha"]["seed"] == child.seed
        assert remote["alpha"]["ints"] == [
            child.randint(0, 10**9) for _ in range(5)
        ]


class TestDeriveSeed:
    def test_stable_known_value(self):
        # Pinned: a change here invalidates every recorded scenario seed.
        assert derive_seed(7, "scenario-0") == derive_seed(7, "scenario-0")
        assert derive_seed(7, "scenario-0") != derive_seed(7, "scenario-1")
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_within_random_seed_range(self):
        for i in range(100):
            seed = derive_seed(i, f"label-{i}")
            assert 0 <= seed <= 0x7FFFFFFF

    def test_fork_uses_derivation(self):
        rng = SeededRng(99)
        assert rng.fork("x").seed == derive_seed(99, "x")

    def test_label_separator_prevents_collisions(self):
        # ("1", "2x") must not collide with ("12", "x")-style prefixes.
        assert derive_seed(1, "2x") != derive_seed(12, "x")

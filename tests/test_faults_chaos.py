"""Chaos harness: deterministic faults across store/exec/serve.

The contract under test (see ``docs/TESTING.md``, "Chaos testing"):

* a run that *completes* under injected faults produces reports
  **byte-identical** to the fault-free run — the soak over the whole
  check corpus proves it at three fixed seeds;
* a run the faults keep from completing degrades *loudly* — a typed
  error, a counted miss, a recorded ingest error — never a silent
  drop;
* every degradation replays bit-for-bit from (seed, fault plan), so
  chaos findings check into the failure corpus like any other bug.
"""

import json
from pathlib import Path

import pytest

from repro.check import load_corpus_entry
from repro.check.campaign import CampaignConfig, run_campaign
from repro.exec import EngineConfig, ExperimentEngine
from repro.exec.cache import ResultCache
from repro.faults import (
    FaultPlan,
    FaultSpec,
    activate,
    is_active,
    replay_chaos_entry,
    run_net_soak,
    run_soak,
)
from repro.offline import capture_trace
from repro.serve import ProfilingService, ServiceClient, ServiceConfig
from repro.serve.protocol import STATUS_OK
from repro.store import ArtifactCorruptError
from repro.telemetry import capture
from repro.workloads import run_scene1

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"

#: The satellite soak contract: full corpus x mixed plan x fixed seeds.
SOAK_SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def scene_trace():
    run = run_scene1()
    return capture_trace(run.system, run.eandroid)


def _service(tmp_path, **overrides) -> ProfilingService:
    config = dict(telemetry=False, store_dir=str(tmp_path / "store"), **overrides)
    return ProfilingService(ServiceConfig(**config))


def _plan(site, kind, probability=1.0, max_injections=None, delay_ms=2.0):
    return FaultPlan(
        specs=(
            FaultSpec(
                site=site,
                kind=kind,
                probability=probability,
                max_injections=max_injections,
                delay_ms=delay_ms,
            ),
        )
    )


# ----------------------------------------------------------------------
# the corpus soak: byte-identity + zero silent drops
# ----------------------------------------------------------------------
class TestCorpusSoak:
    @pytest.mark.parametrize("seed", SOAK_SEEDS)
    def test_soak_passes_at_fixed_seeds(self, seed):
        result = run_soak(CORPUS_DIR, seed, FaultPlan.mixed(0.05))
        assert result.passed, "\n".join(result.problems)
        # Accounting closes: every source became a session or a record,
        # every query came back, every ok answer matched byte-for-byte.
        assert result.chaos_sessions + result.ingest_errors == result.sources
        assert result.ok == result.ok_identical
        assert result.ok + result.typed_errors == result.queries

    def test_soak_is_deterministic(self):
        first = run_soak(CORPUS_DIR, 1, FaultPlan.mixed(0.05))
        second = run_soak(CORPUS_DIR, 1, FaultPlan.mixed(0.05))
        assert first.as_dict() == second.as_dict()

    def test_plane_deactivates_after_soak(self):
        run_soak(CORPUS_DIR, 2, FaultPlan.mixed(0.05))
        assert not is_active()


# ----------------------------------------------------------------------
# the transport soak: net.* sites armed over a real TCP server
# ----------------------------------------------------------------------
class TestNetSoak:
    def test_latency_plan_degrades_to_typed_deadline_errors(self):
        plan = _plan(
            "net.latency", "latency", max_injections=2, delay_ms=1500.0
        )
        result = run_net_soak(CORPUS_DIR, 0, plan)
        assert result.passed, "\n".join(result.problems)
        assert result.injected.get("net.latency:latency", 0) >= 1
        # Starved queries come back as typed errors naming the deadline;
        # everything that answered ok is byte-identical to fault-free.
        assert result.typed_errors >= 1
        assert result.ok == result.ok_identical
        assert result.ok + result.typed_errors == result.queries

    def test_connection_faults_resubmit_to_identical_answers(self):
        plan = FaultPlan(
            specs=(
                FaultSpec("net.accept", "io-error", 1.0, max_injections=1),
                FaultSpec("net.read", "io-error", 1.0, max_injections=1),
                FaultSpec("net.write", "io-error", 1.0, max_injections=1),
            )
        )
        result = run_net_soak(CORPUS_DIR, 0, plan)
        assert result.passed, "\n".join(result.problems)
        assert sum(result.injected.values()) >= 1
        # Every killed connection was survived by reconnect + resubmit:
        # all queries end ok and byte-identical, none lost.
        assert result.ok == result.ok_identical == result.queries

    def test_plane_deactivates_after_net_soak(self):
        _ = run_net_soak(
            CORPUS_DIR, 1, _plan("net.latency", "latency", max_injections=1)
        )
        assert not is_active()


# ----------------------------------------------------------------------
# chaos corpus entries replay bit-for-bit
# ----------------------------------------------------------------------
CHAOS_ENTRIES = [
    path
    for path in sorted(CORPUS_DIR.glob("*.json"))
    if "chaos" in load_corpus_entry(path)
]


def test_chaos_corpus_has_a_seeded_example():
    assert CHAOS_ENTRIES, "corpus must keep at least one chaos finding"


@pytest.mark.parametrize("path", CHAOS_ENTRIES, ids=lambda p: p.stem)
def test_chaos_entry_replays_green(path):
    result = replay_chaos_entry(path)
    assert result.passed, "\n".join(result.problems)
    assert sum(result.injected.values()) >= 1, (
        "the recorded plan must actually fire during replay"
    )
    # Store-fault entries answer everything identically; transport-fault
    # entries may trade answers for typed deadline errors — but every ok
    # answer is byte-identical and every query is accounted for.
    assert result.ok == result.ok_identical
    assert result.ok + result.typed_errors == result.queries


def test_net_chaos_entry_pins_the_deadline_path():
    """The checked-in net entry must actually starve the deadline."""
    (entry,) = [p for p in CHAOS_ENTRIES if p.stem.startswith("chaos-net")]
    result = replay_chaos_entry(entry)
    assert result.passed, "\n".join(result.problems)
    assert result.injected.get("net.latency:latency", 0) >= 1
    assert result.typed_errors >= 1, (
        "injected transport latency must surface as typed deadline errors"
    )


def test_replay_chaos_entry_rejects_plain_entries(tmp_path):
    plain = next(
        path
        for path in sorted(CORPUS_DIR.glob("*.json"))
        if "chaos" not in load_corpus_entry(path)
    )
    with pytest.raises(ValueError, match="no chaos section"):
        replay_chaos_entry(plain)


# ----------------------------------------------------------------------
# satellite 1: corrupt cache entries are repaired durably
# ----------------------------------------------------------------------
class TestCacheCorruptionRepair:
    PARAMS = {"alpha": 1}
    OUTCOME = {"name": "exp", "claim_holds": True, "text": "ok", "metrics": {}}

    def _seed_entry(self, cache: ResultCache) -> str:
        cache.store("exp", self.PARAMS, self.OUTCOME, wall_time_s=0.1)
        digest = cache.store_backend.get_ref("exec", cache._ref_name("exp", self.PARAMS))
        assert digest is not None
        return digest

    def test_corrupt_entry_degrades_to_miss_and_event(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        digest = self._seed_entry(cache)
        blob = cache.store_backend.object_path(digest)
        blob.write_bytes(blob.read_bytes()[:-4])  # torn tail
        with capture() as recorder:
            assert cache.load("exp", self.PARAMS) is None
        assert cache.stats.corruptions == 1
        assert any(
            type(event).__name__ == "CacheCorruptionEvent"
            for event in recorder.events
        )
        # The torn blob is evicted, so a re-store is not a no-op.
        assert not blob.exists()

    def test_replacement_write_is_durable_and_cannot_tear(self, tmp_path):
        """Regression: the repair of a corrupt entry fsyncs.

        Under a 100% torn-write plan every *non-durable* store write is
        truncated.  The replacement write for an entry that was seen
        corrupt goes down the durable path, which a torn-write fault
        cannot touch — so the repaired entry must read back whole even
        with the plan armed.
        """
        cache = ResultCache(tmp_path / "cache")
        digest = self._seed_entry(cache)
        blob = cache.store_backend.object_path(digest)
        blob.write_bytes(b"\x00garbled\x00")
        assert cache.load("exp", self.PARAMS) is None  # marks the repair
        with activate(_plan("store.write", "torn-write"), seed=3):
            cache.store("exp", self.PARAMS, self.OUTCOME, wall_time_s=0.1)
            payload = cache.load("exp", self.PARAMS)
        assert payload is not None and payload["outcome"] == self.OUTCOME
        assert cache.stats.hits == 1

    def test_non_durable_write_does_tear_under_the_same_plan(self, tmp_path):
        # The contrast case proving the plan above had teeth.
        cache = ResultCache(tmp_path / "cache")
        with activate(_plan("store.write", "torn-write"), seed=3):
            cache.store("exp", self.PARAMS, self.OUTCOME, wall_time_s=0.1)
        digest = cache.store_backend.get_ref(
            "exec", cache._ref_name("exp", self.PARAMS)
        )
        if digest is None:
            return  # the ref write itself tore: also a loud failure
        with pytest.raises(ArtifactCorruptError):
            cache.store_backend.get_bytes(digest)

    def test_io_errors_exhaust_retries_then_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        self._seed_entry(cache)
        with activate(_plan("store.read", "io-error"), seed=0):
            assert cache.load("exp", self.PARAMS) is None
        assert cache.stats.io_errors == 1
        assert cache.stats.misses == 1
        # Transient flake: one injected failure, then the retry lands.
        with activate(_plan("store.read", "io-error", max_injections=1), seed=0):
            assert cache.load("exp", self.PARAMS) is not None


# ----------------------------------------------------------------------
# serve degradation: lenient ingest, spill, restore
# ----------------------------------------------------------------------
class TestServeDegradation:
    def test_lenient_ingest_records_errors_per_source(self, tmp_path, scene_trace):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "good.json").write_text(scene_trace.to_json(), encoding="utf-8")
        (corpus / "bad.json").write_text("{not json", encoding="utf-8")
        svc = _service(tmp_path)
        names = svc.ingest(corpus, strict=False)
        assert names == ["good"]
        assert len(svc.ingest_errors) == 1
        assert "bad.json" in svc.ingest_errors[0].source
        assert svc.stats.ingest_errors == 1
        manifest = svc.manifest()
        assert manifest["ingest_errors"][0]["source"].endswith("bad.json")

    def test_strict_ingest_still_raises(self, tmp_path):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "bad.json").write_text("{not json", encoding="utf-8")
        svc = _service(tmp_path)
        with pytest.raises(Exception):
            svc.ingest(corpus)

    def test_spill_failure_keeps_session_in_memory(self, tmp_path, scene_trace):
        svc = _service(tmp_path, spill=True)
        with activate(_plan("serve.spill", "io-error"), seed=0):
            record = svc.ingest_trace("scene", scene_trace, "test")
        assert not record.spilled
        assert svc.stats.spill_failures == 1
        # The session still answers queries.
        report = ServiceClient(svc).query("scene", "eandroid")
        assert report["backend"] == "eandroid"

    def test_restore_retries_through_a_transient_read_fault(
        self, tmp_path, scene_trace
    ):
        svc = _service(tmp_path, spill=True)
        record = svc.ingest_trace("scene", scene_trace, "test")
        assert record.spilled
        client = ServiceClient(svc)
        with activate(_plan("store.read", "io-error", max_injections=1), seed=0):
            report = client.query("scene", "eandroid")
        assert report["backend"] == "eandroid"

    def test_restore_exhaustion_is_a_typed_error(self, tmp_path, scene_trace):
        svc = _service(tmp_path, spill=True)
        svc.ingest_trace("scene", scene_trace, "test")
        client = ServiceClient(svc)
        (query,) = client.build("scene", "eandroid")
        with activate(_plan("store.read", "io-error"), seed=0):
            response = svc.submit(query)
        assert response.status != STATUS_OK
        assert response.error  # typed, never silent
        assert svc.stats.received == svc.stats.answered + svc.stats.errors + svc.stats.shed

    def test_corrupt_memoized_replay_degrades_to_resimulation(self, tmp_path):
        """Regression: a corrupt memoized replay blob used to abort the
        whole ingest batch; it must evict, note the corruption, and
        re-simulate."""
        from repro.serve import REPLAY_REF_NAMESPACE
        from repro.serve.ingest import scenario_digest

        entry = next(
            path
            for path in sorted(CORPUS_DIR.glob("*.json"))
            if "chaos" not in load_corpus_entry(path)
        )
        staged = tmp_path / "corpus"
        staged.mkdir()
        (staged / entry.name).write_bytes(entry.read_bytes())

        first = _service(tmp_path)
        assert first.ingest(staged)  # memoizes the replay
        store = first.store
        key = scenario_digest(load_corpus_entry(entry))
        digest = store.get_ref(REPLAY_REF_NAMESPACE, key)
        assert digest is not None
        blob = store.object_path(digest)
        blob.write_bytes(blob.read_bytes()[: len(blob.read_bytes()) // 2])

        second = _service(tmp_path)
        with capture() as recorder:
            names = second.ingest(staged)
        assert len(names) == 1  # re-simulated, batch intact
        assert any(
            type(event).__name__ == "CacheCorruptionEvent"
            for event in recorder.events
        )


# ----------------------------------------------------------------------
# exec degradation: crash, requeue, serial fallback
# ----------------------------------------------------------------------
class TestExecDegradation:
    def test_injected_crash_requeues_then_succeeds(self, tmp_path):
        engine = ExperimentEngine(
            EngineConfig(cache_dir=str(tmp_path / "cache"), use_cache=False)
        )
        with activate(_plan("exec.dispatch", "crash", max_injections=1), seed=0):
            run = engine.run([("fuzz", {"seeds": [5], "ops": 8})])
        (result,) = run.results
        assert result.outcome.error is None
        assert result.attempts == 2

    def test_exhausted_crashes_surface_as_deviation(self, tmp_path):
        engine = ExperimentEngine(
            EngineConfig(cache_dir=str(tmp_path / "cache"), use_cache=False)
        )
        with activate(_plan("exec.dispatch", "crash"), seed=0):
            run = engine.run([("fuzz", {"seeds": [5], "ops": 8})])
        (result,) = run.results
        assert result.outcome.error is not None
        assert not result.outcome.claim_holds
        assert "InjectedWorkerCrash" in result.outcome.error

    def test_spawn_failure_falls_back_to_serial(self, tmp_path):
        engine = ExperimentEngine(
            EngineConfig(
                parallel=2, cache_dir=str(tmp_path / "cache"), use_cache=False
            )
        )
        with activate(_plan("exec.spawn", "io-error"), seed=0):
            run = engine.run(
                [("fuzz", {"seeds": [5], "ops": 8}), ("fuzz", {"seeds": [6], "ops": 8})]
            )
        assert all(r.outcome.error is None for r in run.results)


# ----------------------------------------------------------------------
# the check --chaos campaign surface
# ----------------------------------------------------------------------
class TestChaosCampaign:
    def test_campaign_passes_and_reports_identity(self, tmp_path):
        config = CampaignConfig(
            fuzz=4, seed=5, ops=12, chaos=True, save_dir=str(tmp_path / "save")
        )
        report = run_campaign(config)
        assert report.chaos is not None
        chaos = report.chaos
        assert chaos["passed"] is True
        assert report.passed
        assert (
            chaos["identical"] + chaos["degraded"] == chaos["compared"]
        )
        assert chaos["compared"] + chaos["incomplete"] == chaos["scenarios"]
        assert chaos["mismatched_seeds"] == []
        # The chaos section lands in the saved manifest.
        manifest = json.loads(
            (tmp_path / "save" / "manifest.json").read_text(encoding="utf-8")
        )
        assert manifest["chaos"]["seed"] == 5
        assert manifest["chaos"]["plan"]["kind"] == "repro-fault-plan"

    def test_campaign_is_deterministic(self):
        config = CampaignConfig(fuzz=3, seed=9, ops=10, chaos=True)
        first = run_campaign(config).chaos
        second = run_campaign(config).chaos
        assert first == second

    def test_campaign_with_explicit_plan_file(self, tmp_path):
        plan_path = tmp_path / "plan.json"
        _plan("exec.dispatch", "crash", max_injections=1).save(plan_path)
        config = CampaignConfig(
            fuzz=3, seed=9, ops=10, chaos=True, faults_path=str(plan_path)
        )
        report = run_campaign(config)
        assert report.chaos["passed"] is True
        assert report.chaos["injection"]["injected"] == {
            "exec.dispatch:crash": 1
        }

#!/usr/bin/env python3
"""Quickstart: the paper's Fig. 1 moment in a dozen lines.

Build a simulated device, install the Message and Camera apps, film a
30-second video *from inside the Message app*, and compare what stock
Android's battery view says against E-Android's revised view.

Run:  python examples/quickstart.py
"""

from repro import AndroidSystem, BatteryStats, attach_eandroid
from repro.apps import build_camera_app, build_message_app


def main() -> None:
    # A fresh simulated Nexus-4-class device.
    device = AndroidSystem()
    device.install_all([build_message_app(), build_camera_app()])
    device.boot()

    # Attach E-Android (framework monitor + collateral accounting).
    eandroid = attach_eandroid(device)
    # Keep stock BatteryStats around for the comparison.
    batterystats = BatteryStats(device)

    # The user opens Message, chats for 30 s, then records a 30 s video.
    # The recording is performed by the *Camera* app, launched through an
    # implicit VIDEO_CAPTURE intent — classic Android IPC.
    message = device.launch_app("com.app.message")
    device.run_for(30)
    message.instance.record_video(duration_s=30)
    device.run_for(31)

    print("What stock Android shows (screen is its own row, the Camera")
    print("is blamed for the video the Message asked for):\n")
    print(batterystats.report().render_text())

    print("\nWhat E-Android shows (the Message is charged the Camera's")
    print("collateral energy, with the breakdown itemised):\n")
    print(eandroid.report().render_text())

    print(f"\nBattery now at {device.battery.percent():.2f}%")


if __name__ == "__main__":
    main()

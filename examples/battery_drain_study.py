#!/usr/bin/env python3
"""Reproduce Fig. 3: how fast each simple attack kills the battery.

Five configurations drain a full 2100 mAh battery in virtual time:
lowest brightness (baseline), brightness 10, full brightness, a
bound-forever victim service, and an interrupted app.  Hours of battery
life are computed analytically from the steady-state power draw — no
need to wait 17 hours.

Run:  python examples/battery_drain_study.py
"""

from repro.experiments import run_fig3


def main() -> None:
    result = run_fig3()
    print(result.render_text())
    hours = result.hours()
    baseline = hours["brightness_low"]
    print("\nbattery-life cost of each attack vs the baseline:")
    for name, value in sorted(hours.items(), key=lambda kv: kv[1]):
        lost = baseline - value
        print(
            f"  {name:<16} {value:5.2f} h  "
            f"({'-' if lost > 0 else ''}{abs(lost):.2f} h vs baseline)"
        )
    print(
        "\npaper's observation reproduced: 'a small increase of brightness,"
        "\nwhich brings little visual effect, can increase battery drain'"
        f" — brightness 10 alone costs {baseline - hours['brightness_10']:.2f} h."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Offline forensics: capture a device trace, analyze it later.

A device under attack dumps its complete trace (power-channel history +
foreground timeline + E-Android's attack-link log) to one JSON document.
An analyst — with no access to the device — reconstructs every
profiler's battery view and the attack-chain structure from the file
alone, and the offline numbers match the live ones exactly.

Run:  python examples/offline_forensics.py [trace.json]
"""

import sys

from repro.core import AttackGraphAnalyzer
from repro.offline import DeviceTrace, OfflineAnalyzer, capture_trace
from repro.workloads import run_hybrid_attack


def main() -> None:
    # --- on the "device": run the hybrid chain attack, dump the trace.
    run = run_hybrid_attack(duration=60.0)
    trace = capture_trace(run.system, run.eandroid)
    text = trace.to_json(indent=2)
    out_path = sys.argv[1] if len(sys.argv) > 1 else None
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"device trace written to {out_path} ({len(text):,} bytes)\n")
    else:
        print(f"device trace captured ({len(text):,} bytes of JSON)\n")

    # --- in the "lab": everything below uses only the JSON text.
    analyzer = OfflineAnalyzer(DeviceTrace.from_json(text))

    print("Reconstructed stock-Android view (offline):")
    print(analyzer.batterystats_report(run.start, run.end).render_text(top=6))

    print("\nReconstructed E-Android view (offline):")
    offline = analyzer.eandroid_report(run.start, run.end)
    print(offline.render_text(top=6))

    live = run.eandroid_report()
    weatherpro_offline = offline.energy_of("Weatherpro")
    weatherpro_live = live.energy_of("Weatherpro")
    print(
        f"\noffline == live check: Weatherpro "
        f"{weatherpro_offline:.4f} J (offline) vs {weatherpro_live:.4f} J (live)"
    )
    assert abs(weatherpro_offline - weatherpro_live) < 1e-6

    print("\nAttack-chain structure (from the live accounting):")
    print(AttackGraphAnalyzer(run.eandroid.accounting).render_text(run.system))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Reproduce the Fig. 2 Google-Play census.

Generates the seeded synthetic 1,124-app corpus, reverse-engineers every
APK's manifest with the APKTool-style extractor, and answers the paper's
three questions: exported components, WAKE_LOCK, WRITE_SETTINGS.

Run:  python examples/corpus_census.py [seed]
"""

import sys

from repro.apps import generate_corpus, run_census


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    corpus = generate_corpus(seed=seed)
    census = run_census(corpus)
    print(census.render_text())
    print("\nper-category detail (top 10 by size):")
    rows = sorted(census.by_category.values(), key=lambda r: -r.total)[:10]
    for row in rows:
        print(
            f"  {row.category:<18} n={row.total:<4} "
            f"exported={row.exported_pct:5.1f}%  "
            f"wakelock={row.wake_lock_pct:5.1f}%  "
            f"settings={row.write_settings_pct:5.1f}%"
        )
    sample = corpus[0]
    print(f"\nsample packed manifest ({sample.package}):")
    print(" ", sample.manifest_xml[:240], "...")


if __name__ == "__main__":
    main()

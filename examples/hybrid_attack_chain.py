#!/usr/bin/env python3
"""Walk through the paper's Fig. 7 hybrid attack chain, step by step.

App A binds a service of app B; B's service starts an activity of app C;
C stealthily raises the screen brightness.  Watch A's collateral energy
map grow as each link forms, then shrink as the user intervenes.

Run:  python examples/hybrid_attack_chain.py
"""

from repro import AndroidSystem, attach_eandroid
from repro.attacks import (
    HYBRID_PACKAGE,
    RELAY_B_PACKAGE,
    RELAY_C_PACKAGE,
    build_hybrid_malware,
    build_relay_b,
    build_relay_c,
)
from repro.core import SCREEN_TARGET


def show_map(device, eandroid, uid, label) -> None:
    pm = device.package_manager
    targets = eandroid.accounting.map_for(uid).open_targets()
    names = sorted(
        "Screen" if t == SCREEN_TARGET else pm.label_for_uid(t) for t in targets
    )
    print(f"  {label}'s open map elements: {names or '(empty)'}")


def main() -> None:
    device = AndroidSystem()
    device.install_all(
        [build_relay_b(), build_relay_c(), build_hybrid_malware()]
    )
    device.boot()
    eandroid = attach_eandroid(device)
    a_uid = device.uid_of(HYBRID_PACKAGE)
    b_uid = device.uid_of(RELAY_B_PACKAGE)

    print("Step 1 — the user taps the innocent-looking 'WeatherPro' icon.")
    print("Its payload binds RelayB's service, which starts RelayC's")
    print("activity, which flips the brightness to 255:")
    device.launch_app(HYBRID_PACKAGE)
    device.run_for(1.0)
    print(f"  brightness is now {device.display.brightness}/255")
    show_map(device, eandroid, a_uid, "WeatherPro (A)")
    show_map(device, eandroid, b_uid, "RelayB (B)")

    print("\nStep 2 — 60 s pass; energy accrues along the chain.")
    device.run_for(60.0)
    breakdown = eandroid.accounting.collateral_breakdown(a_uid)
    pm = device.package_manager
    for target, joules in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        name = "Screen" if target == SCREEN_TARGET else pm.label_for_uid(target)
        print(f"  charged to A: {name:<8} {joules:8.2f} J")

    print("\nStep 3 — the user drags the brightness slider back down.")
    print("Only the *screen* element of every map closes (Fig. 7):")
    device.systemui.user_set_brightness(100)
    show_map(device, eandroid, a_uid, "WeatherPro (A)")

    print("\nStep 4 — the user opens RelayC directly; its element closes too.")
    device.am.move_task_to_front(
        device.package_manager.system_uid, RELAY_C_PACKAGE, user_initiated=True
    )
    show_map(device, eandroid, a_uid, "WeatherPro (A)")

    print("\nFinal E-Android view:")
    print(eandroid.report().render_text())


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Diagnose a misbehaving device: dumpsys + the collateral detector.

A phone is draining inexplicably: the user installed a "QR scanner"
(attack #6 malware) and a "cleaner" (attack #3 malware) alongside their
real apps.  Stock Android's battery view points at the victim and the
screen; this script shows the diagnostic workflow E-Android enables —
inspect device state with dumpsys, then let the detector rank suspects
by hidden (collateral) energy.

Run:  python examples/device_doctor.py
"""

from repro import AndroidSystem, BatteryStats, attach_eandroid
from repro.android import dumpsys_power, dumpsys_services, explicit
from repro.apps import VICTIM_PACKAGE, build_message_app, build_victim_app
from repro.attacks import (
    BIND_PACKAGE,
    WAKELOCK_PACKAGE,
    build_bind_malware,
    build_wakelock_malware,
)
from repro.core import CollateralEnergyDetector


def main() -> None:
    device = AndroidSystem()
    device.install_all(
        [
            build_victim_app(),
            build_message_app(),
            build_bind_malware(),
            build_wakelock_malware(),
        ]
    )
    device.boot()
    eandroid = attach_eandroid(device)

    # A day in the life: the user opens both "tools" once (payloads arm),
    # works in the victim app, then leaves the phone on the desk.
    device.launch_app(BIND_PACKAGE)
    device.press_home()
    device.launch_app(WAKELOCK_PACKAGE)
    device.press_home()
    victim_uid = device.uid_of(VICTIM_PACKAGE)
    device.launch_app(VICTIM_PACKAGE)
    svc = explicit(VICTIM_PACKAGE, "VictimWorkService")
    device.am.start_service(victim_uid, svc)
    device.run_for(1.0)  # the cleaner binds it
    device.am.stop_service(victim_uid, svc)  # ...and keeps it alive
    device.press_home()
    device.run_for(600.0)  # ten idle minutes that aren't idle at all

    print("Ten minutes later the battery has dropped to "
          f"{device.battery.percent():.2f}% and the phone is warm.\n")

    print("Step 1 — stock Android's view (nothing looks guilty):\n")
    print(BatteryStats(device).report().render_text())

    print("\nStep 2 — dumpsys shows the mechanics:\n")
    print(dumpsys_services(device))
    print()
    print(dumpsys_power(device))

    print("\nStep 3 — the E-Android detector ranks hidden drains:\n")
    detector = CollateralEnergyDetector(device, eandroid.accounting)
    for suspicion in detector.rank_suspects():
        print(suspicion.render_text())
        print()

    flagged = detector.flag()
    print("Verdict: " + ", ".join(s.label for s in flagged)
          + " exceed the collateral thresholds.")
    print("Both 'tools' are exposed — and so is the Victim itself, whose")
    print("own no-sleep bug (wakelock only released in onDestroy) keeps")
    print("the screen burning from the background: E-Android surfaces")
    print("genuine energy bugs, not just malice (§IV).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fleet energy audit through the query service.

The serving workflow the ROADMAP's north star describes: capture traces
from a *fleet* of devices once, ingest them into one
:class:`~repro.serve.ProfilingService`, then answer many report
questions without ever rebuilding a simulation.  Here the fleet is
simulated — three attack scenarios plus one generated full-day device —
and the audit asks, per device:

* what does the stock Android view blame (``batterystats``)?
* what does E-Android blame once collateral energy is superimposed?
* which app is the *biggest mover* between the two views — the
  fleet-wide malware suspect list.

Run:  python examples/fleet_energy_audit.py
"""

from repro.offline import capture_trace
from repro.serve import ProfilingService, ServiceClient, ServiceConfig
from repro.workloads import run_attack3, run_attack6, run_day, run_scene1


def build_fleet(service: ProfilingService) -> None:
    """Simulate four devices and ingest their traces as sessions."""
    for name, run in (
        ("phone-benign", run_scene1()),
        ("phone-bind-attack", run_attack3()),
        ("phone-screen-attack", run_attack6()),
    ):
        service.ingest_trace(name, capture_trace(run.system, run.eandroid), name)
    day = run_day(seed=11, hours=2.0, with_malware=True)
    service.ingest_trace(
        "phone-full-day", capture_trace(day.system, day.eandroid), "generated day"
    )


def main() -> None:
    service = ProfilingService(ServiceConfig())
    build_fleet(service)
    client = ServiceClient(service)

    print(f"fleet: {len(service.sessions)} device(s) ingested\n")
    suspects = []
    for session in service.session_names():
        android = client.query(session, "batterystats")
        eandroid = client.query(session, "eandroid")
        android_rows = {
            row["label"]: row["energy_j"] for row in android["entries"]
        }
        print(f"=== {session} ===")
        print(f"  total energy: {android['total_j']:.1f} J")
        mover, delta, collateral = None, 0.0, {}
        for row in eandroid["entries"]:
            gained = row["energy_j"] - android_rows.get(row["label"], 0.0)
            if gained > delta:
                mover, delta, collateral = row["label"], gained, row["collateral_j"]
        if mover is None:
            print("  views agree — no collateral energy on this device")
        else:
            print(f"  biggest mover: {mover} (+{delta:.1f} J once E-Android charges collateral)")
            for source, joules in sorted(collateral.items(), key=lambda kv: -kv[1]):
                print(f"      draws {joules:.1f} J through {source}")
            suspects.append((session, mover, delta))
        print()

    stats = service.manifest()
    print(f"queries answered: {stats['stats']['answered']}, "
          f"cache hit-rate {stats['cache']['hit_rate']:.0%}")
    if suspects:
        print("\nfleet suspect list (by hidden energy):")
        for session, label, joules in sorted(suspects, key=lambda s: -s[2]):
            print(f"  {session:<20} {label:<14} {joules:8.1f} J hidden from stock Android")


if __name__ == "__main__":
    main()

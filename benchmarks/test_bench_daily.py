"""Scale bench: simulate and profile a full day of usage.

Measures (a) the wall cost of generating + simulating an 8-hour day of
app hopping with three live malware, and (b) the cost of producing the
E-Android report over that day's full trace.
"""

from repro.workloads import run_day


def test_bench_simulate_infected_day(benchmark):
    day = benchmark.pedantic(
        lambda: run_day(seed=42, hours=8.0, with_malware=True),
        rounds=3,
        iterations=1,
    )
    assert day.log.sessions > 10
    assert day.system.battery.percent() < 100.0


def test_bench_report_over_day_trace(benchmark):
    day = run_day(seed=42, hours=8.0, with_malware=True)
    report = benchmark(day.eandroid.report)
    assert report.total_energy_j() > 0

"""Benchmark-suite configuration.

Each bench regenerates one of the paper's tables/figures end-to-end and
asserts the claim that figure makes, so `pytest benchmarks/
--benchmark-only` doubles as the reproduction harness.
"""

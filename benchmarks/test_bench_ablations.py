"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these quantify the cost of the mechanisms
the reproduction chose:

* reachability-based map sync (Algorithm 1) as the link graph grows;
* windowed energy queries against piecewise-constant traces as traces
  grow;
* the per-event cost of the monitor's journal (framework-only mode);
* full simulated-hour throughput of a device under attack (how cheap is
  virtual time).
"""

from repro.android import AndroidSystem, explicit
from repro.core import AttackKind, EAndroidAccounting, attach_eandroid
from repro.power import EnergyMeter, PowerTrace
from repro.sim import Kernel
from repro.workloads.microbench import build_configured_system


def test_bench_map_sync_chain_depth(benchmark):
    """Algorithm 1 sync cost with a 40-deep live attack chain."""
    kernel = Kernel()
    meter = EnergyMeter(kernel)
    accounting = EAndroidAccounting(kernel, meter)
    for i in range(40):
        accounting.begin_attack(AttackKind.SERVICE_BIND, 10000 + i, 10001 + i)

    def sync_once():
        accounting.maps.sync(kernel.now, accounting.graph)

    benchmark(sync_once)
    # The deepest host reaches every downstream app.
    assert len(accounting.maps.map_for(10000).open_targets()) == 40


def test_bench_windowed_energy_query(benchmark):
    """Window-energy queries over a trace with 10k breakpoints."""
    trace = PowerTrace()
    for i in range(10_000):
        trace.append(float(i), 100.0 + (i % 7))

    result = benchmark(lambda: trace.energy_j(2_000.0, 8_000.0))
    assert result > 0


def test_bench_monitor_journal_per_event(benchmark):
    """Hook + journal cost for one cross-app service start/stop pair."""
    system = build_configured_system("eandroid_framework")
    uid = system.uid_of("com.bench.self")
    svc = explicit("com.bench.other", "_OpService")

    def start_stop():
        system.am.start_service(uid, svc)
        system.am.stop_service(uid, svc)

    benchmark(start_stop)


def test_bench_simulated_hour_under_attack(benchmark):
    """Wall cost of simulating one attack-hour of virtual time."""
    from repro.apps import build_victim_app, VICTIM_PACKAGE
    from repro.attacks import build_multi_malware, MULTI_PACKAGE

    def simulate_hour():
        system = AndroidSystem()
        system.install(build_victim_app())
        system.install(build_multi_malware())
        system.boot()
        attach_eandroid(system)
        system.launch_app(MULTI_PACKAGE)
        system.run_for(3600.0)
        return system.battery.percent()

    percent = benchmark(simulate_hour)
    assert percent < 100.0


def test_bench_eandroid_report_generation(benchmark):
    """Cost of producing the revised battery interface view."""
    from repro.workloads.scenarios import run_multi_attack

    run = run_multi_attack()

    report = benchmark(lambda: run.eandroid.report(run.start, run.end))
    assert report.total_energy_j() > 0


def test_bench_offline_reconstruction(benchmark):
    """Cost of rebuilding the E-Android view from a serialised trace."""
    from repro.offline import DeviceTrace, OfflineAnalyzer, capture_trace
    from repro.workloads import run_day

    day = run_day(seed=3, hours=4.0, with_malware=True)
    text = capture_trace(day.system, day.eandroid).to_json()

    def reconstruct():
        analyzer = OfflineAnalyzer(DeviceTrace.from_json(text))
        return analyzer.eandroid_report()

    report = benchmark(reconstruct)
    assert report.total_energy_j() > 0


def test_bench_detector_scan(benchmark):
    """Cost of a full suspect scan after a day of attacks."""
    from repro.core import CollateralEnergyDetector
    from repro.workloads import run_day

    day = run_day(seed=3, hours=4.0, with_malware=True)
    detector = CollateralEnergyDetector(day.system, day.eandroid.accounting)
    suspects = benchmark(detector.rank_suspects)
    assert suspects

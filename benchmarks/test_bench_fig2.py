"""Bench: regenerate Fig. 2 (the 1,124-app Play census).

Reproduction target: exported ~= 72%, WAKE_LOCK ~= 81%,
WRITE_SETTINGS ~= 21% (within 3 points).
"""

from repro.experiments import run_fig2


def test_bench_fig2(benchmark):
    result = benchmark(run_fig2)
    print("\n" + result.render_text())
    assert result.max_deviation_pct() < 3.0

"""Bench: regenerate Fig. 8 (E-Android + revised PowerTutor breakdown).

Reproduction target: Contacts' inventory itemises Message and Camera
collateral; Message's itemises Camera.
"""

from repro.experiments import run_fig8


def test_bench_fig8(benchmark):
    result = benchmark(run_fig8)
    print("\n" + result.render_text())
    assert result.breakdown_complete
    assert result.contacts.energy_j > result.contacts.own_energy_j

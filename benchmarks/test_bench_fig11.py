"""Bench: regenerate Fig. 11 (AnTuTu-style scores, Android vs E-Android).

Reproduction target: similar scores under both configurations.
"""

from repro.experiments import run_fig11


def test_bench_fig11(benchmark):
    result = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    print("\n" + result.render_text())
    assert result.similar_performance


def test_bench_memory_overhead(benchmark):
    """§VI-B memory comparison (tracemalloc heap growth, both configs)."""
    from repro.workloads import measure_memory_overhead

    reports = benchmark.pedantic(measure_memory_overhead, rounds=1, iterations=1)
    print()
    for report in reports.values():
        print(report.render_text())
    extra = (
        reports["eandroid"].heap_growth_kib - reports["android"].heap_growth_kib
    )
    assert extra < 512.0

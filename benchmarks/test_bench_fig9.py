"""Bench: regenerate Fig. 9 (effectiveness, all six panels).

Reproduction targets: every attack is invisible (<2% share) to stock
Android; E-Android attributes collateral energy to every malware; the
9e/9f attacks burn more screen energy than their normal-usage controls.
"""

from repro.experiments import run_fig9


def test_bench_fig9(benchmark):
    result = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    print("\n" + result.render_text())
    assert len(result.panels) == 6
    assert result.all_attacks_stealthy_on_android
    assert result.all_attacks_detected_by_eandroid

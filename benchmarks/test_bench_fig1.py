"""Bench: regenerate Fig. 1 (BatteryStats view while filming in Message).

Reproduction target: the stock view blames the Camera and shows the
Message near zero, despite the Message having driven the filming.
"""

from repro.experiments import run_fig1


def test_bench_fig1(benchmark):
    result = benchmark(run_fig1)
    print("\n" + result.render_text())
    assert result.camera_blamed
    assert result.camera_percent > 30.0
    assert result.message_percent < 10.0

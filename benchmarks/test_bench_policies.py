"""Ablation bench: collateral charge policies (DESIGN.md design choice).

Compares the paper's full-charge strategy against the two
"sophisticated" alternatives on the brightness attack: proportional
split and screen-delta.  Checks the expected ordering —
delta < split(0.5) < full — and measures report-generation cost under
each policy.
"""

from repro.android import AndroidSystem, SCREEN_BRIGHTNESS
from repro.apps import build_victim_app
from repro.attacks import BRIGHTNESS_PACKAGE, build_brightness_malware
from repro.core import (
    FullCharge,
    ProportionalSplit,
    SCREEN_TARGET,
    ScreenDelta,
    attach_eandroid,
)
from repro.power import NEXUS4


def _run_brightness_attack(policy):
    system = AndroidSystem()
    system.install(build_victim_app())
    system.install(build_brightness_malware(target_level=255))
    system.boot()
    # Screen forced on (the paper's setup) so the whole 60 s window is
    # lit and the delta policy's baseline discount is meaningful.
    from repro.android import SCREEN_BRIGHT_WAKE_LOCK

    system.power_manager.acquire(
        system.package_manager.system_uid, SCREEN_BRIGHT_WAKE_LOCK, "bench"
    )
    eandroid = attach_eandroid(system, policy=policy)
    system.launch_app(BRIGHTNESS_PACKAGE)
    system.run_for(60.0)
    malware = system.uid_of(BRIGHTNESS_PACKAGE)
    return eandroid.accounting.collateral_breakdown(malware).get(SCREEN_TARGET, 0.0)


def test_bench_policy_ablation(benchmark):
    policies = {
        "full": FullCharge(),
        "split": ProportionalSplit(0.5),
        "delta": ScreenDelta(NEXUS4.screen, baseline_brightness=102),
    }

    def run_all():
        return {name: _run_brightness_attack(p) for name, p in policies.items()}

    charges = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\npolicy ablation (screen J charged to malware over 60 s):")
    for name, joules in charges.items():
        print(f"  {name:<6} {joules:8.2f} J")
    assert charges["delta"] < charges["split"] < charges["full"]
    assert charges["split"] == 0.5 * charges["full"]

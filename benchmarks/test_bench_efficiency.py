"""Bench: regenerate the §VI-B energy-efficiency parity check.

Reproduction target: bit-identical battery drain with and without
E-Android attached, for every scenario.
"""

from repro.experiments import run_efficiency


def test_bench_efficiency(benchmark):
    result = benchmark(run_efficiency)
    print("\n" + result.render_text())
    assert result.all_identical

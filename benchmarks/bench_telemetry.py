#!/usr/bin/env python
"""Bench: telemetry overhead + the meter's delta-merge power curve.

Two measurements, written to ``BENCH_telemetry.json`` (CI uploads it):

1. **Bus overhead** — runs one experiment twice through the engine with
   caching disabled: once plain (default-on counters only) and once with
   ``--telemetry`` stats capture attached.  Reports wall times, event
   count, events/sec, and the overhead percentage; the default-on bus is
   expected to stay within a few percent.
2. **Power-curve merge** — times ``EnergyMeter.total_power_breakpoints``
   (single delta-merge sweep) against the old per-time re-sum on a
   fig3-sized trace population, verifying the two agree::

    PYTHONPATH=src python benchmarks/bench_telemetry.py --out BENCH_telemetry.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path


def bench_bus_overhead(experiment: str, repeat: int) -> dict:
    from repro.exec import EngineConfig, ExperimentEngine

    def leg(telemetry: bool) -> float:
        engine = ExperimentEngine(
            EngineConfig(use_cache=False, telemetry=telemetry)
        )
        engine.run([experiment])  # warmup: imports, registry, caches
        best = min(
            engine.run([experiment]).total_wall_time_s for _ in range(repeat)
        )
        return best

    plain_s = leg(telemetry=False)
    captured_s = leg(telemetry=True)
    captured = ExperimentEngine(
        EngineConfig(use_cache=False, telemetry=True)
    ).run([experiment])
    stats = captured.results[0].telemetry or {}
    events = int(stats.get("total_events", 0))
    return {
        "experiment": experiment,
        "repeat": repeat,
        "plain_s": plain_s,
        "telemetry_s": captured_s,
        "overhead_pct": (
            (captured_s - plain_s) / plain_s * 100.0 if plain_s > 0 else None
        ),
        "event_count": events,
        "events_per_sec": events / captured_s if captured_s > 0 else None,
        "by_category": stats.get("by_category", {}),
    }


def _naive_breakpoints(meter) -> list:
    """The pre-optimisation implementation, kept here as the reference."""
    traces = list(meter._traces.values())
    times = sorted({t for trace in traces for t, _ in trace.breakpoints()})
    return [(t, sum(trace.power_at(t) for trace in traces)) for t in times]


def bench_power_curve(channels: int, breakpoints: int) -> dict:
    from repro.power import EnergyMeter
    from repro.sim import Kernel

    kernel = Kernel()
    meter = EnergyMeter(kernel)
    # A fig3-sized population: hours of drain across a handful of
    # hardware channels, each toggling regularly.
    for i in range(breakpoints):
        for channel in range(channels):
            kernel._clock.advance_to(float(i * channels + channel))
            meter.set_draw(channel % 7, f"chan{channel}", 100.0 + (i % 5) * 37.0)

    started = time.perf_counter()
    merged = meter.total_power_breakpoints()
    merged_s = time.perf_counter() - started

    started = time.perf_counter()
    reference = _naive_breakpoints(meter)
    naive_s = time.perf_counter() - started

    matches = len(merged) == len(reference) and all(
        a[0] == b[0] and abs(a[1] - b[1]) < 1e-6
        for a, b in zip(merged, reference)
    )
    return {
        "channels": channels,
        "breakpoints_per_channel": breakpoints,
        "total_breakpoints": channels * breakpoints,
        "delta_merge_s": merged_s,
        "naive_resum_s": naive_s,
        "speedup": naive_s / merged_s if merged_s > 0 else None,
        "curves_match": matches,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--experiment", default="fig9", help="experiment for the overhead leg"
    )
    parser.add_argument("--repeat", type=int, default=5)
    parser.add_argument("--channels", type=int, default=12)
    parser.add_argument("--breakpoints", type=int, default=4000)
    parser.add_argument("--out", default="BENCH_telemetry.json")
    args = parser.parse_args(argv)

    payload = {
        "bench": "telemetry",
        "bus_overhead": bench_bus_overhead(args.experiment, args.repeat),
        "power_curve": bench_power_curve(args.channels, args.breakpoints),
    }
    Path(args.out).write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print(json.dumps(payload, indent=2))

    if not payload["power_curve"]["curves_match"]:
        print("FAIL: delta-merge curve deviates from the reference", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

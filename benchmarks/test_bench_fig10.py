"""Bench: regenerate Table I / Fig. 10 (micro-operation overhead).

Reproduction targets: hooks-only E-Android performs like Android on
every operation; complete E-Android stays within a few milliseconds.
"""

from repro.experiments import run_fig10


def test_bench_fig10(benchmark):
    result = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    print("\n" + result.render_text())
    assert result.framework_overhead_small
    assert result.complete_overhead_bounded

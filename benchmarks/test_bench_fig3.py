"""Bench: regenerate Fig. 3 (battery depletion curves).

Reproduction target: full brightness drains fastest, the lowest-
brightness baseline slowest, bind_service / brightness_10 /
interrupt_app strictly between.
"""

from repro.experiments import run_fig3


def test_bench_fig3(benchmark):
    result = benchmark(run_fig3)
    print("\n" + result.render_text())
    assert result.ordering_holds
    hours = result.hours()
    assert 3.0 < hours["brightness_full"] < hours["brightness_low"] < 30.0

#!/usr/bin/env python
"""Bench: the experiment engine — serial vs ``--parallel`` wall-clock.

Runs one deterministic slice of the evaluation twice with caching
disabled (once serially, once fanned out over worker processes),
verifies the rendered outputs match, and writes the timings to
``BENCH_runner.json`` (CI uploads it as an artifact)::

    PYTHONPATH=src python benchmarks/bench_runner.py --out BENCH_runner.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_EXPERIMENTS = "fig1,fig3,fig6,fig7,fig8,efficiency"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--experiments",
        default=DEFAULT_EXPERIMENTS,
        help="comma-separated experiment names to time",
    )
    parser.add_argument(
        "--parallel", type=int, default=2, help="workers for the parallel leg"
    )
    parser.add_argument("--out", default="BENCH_runner.json")
    args = parser.parse_args(argv)

    from repro.exec import EngineConfig, ExperimentEngine

    names = [n.strip() for n in args.experiments.split(",") if n.strip()]
    serial = ExperimentEngine(EngineConfig(parallel=1, use_cache=False)).run(names)
    fanned = ExperimentEngine(
        EngineConfig(parallel=args.parallel, use_cache=False)
    ).run(names)

    identical = all(
        a.outcome.text == b.outcome.text
        for a, b in zip(serial.results, fanned.results)
    )
    payload = {
        "bench": "runner_engine",
        "experiments": names,
        "parallel": args.parallel,
        "serial_s": serial.total_wall_time_s,
        "parallel_s": fanned.total_wall_time_s,
        "speedup": (
            serial.total_wall_time_s / fanned.total_wall_time_s
            if fanned.total_wall_time_s > 0
            else None
        ),
        "outputs_identical": identical,
        "per_experiment_serial_s": {
            r.name: r.wall_time_s for r in serial.results
        },
        "claims_hold": all(r.outcome.claim_holds for r in serial.results),
    }
    Path(args.out).write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print(json.dumps(payload, indent=2))
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())

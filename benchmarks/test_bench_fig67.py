"""Bench: regenerate Figs. 6 & 7 (multi-collateral and hybrid chains).

Reproduction targets: Fig. 6 — simultaneous attacks on one victim charge
the union of windows (never more than the victim's ground truth);
Fig. 7 — the chain root is charged for B, C, and the screen.
"""

from repro.experiments import run_fig6, run_fig7


def test_bench_fig6(benchmark):
    result = benchmark(run_fig6)
    print("\n" + result.render_text())
    assert result.union_not_sum
    assert len(result.links) >= 3


def test_bench_fig7(benchmark):
    result = benchmark(run_fig7)
    print("\n" + result.render_text())
    assert result.chain_complete

"""Synthetic AnTuTu-style benchmark (Fig. 11).

"We also used AnTuTu benchmark to measure the CPU and memory overhead.
AnTuTu evaluates performance in several aspects, including memory, CPU
performance for both float and integer, and I/O.  The bigger score means
better performance." (§VI-B)

The suite runs four compute kernels in real wall-clock time.  Each outer
iteration also drives a burst of framework operations on the device
under test, so any overhead E-Android's hooks add to the framework shows
up in the scores — that interleaving is what makes this an overhead
benchmark for the profiler rather than a pure-Python microbenchmark.
"""

from __future__ import annotations

import io
import math
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..android import AndroidSystem, explicit
from ..android.manifest import (
    AndroidManifest,
    ComponentDecl,
    ComponentKind,
    launcher_filter,
)
from ..android.activity import Activity
from ..android.app import App
from ..android.service import Service
from ..core import EAndroid, attach_eandroid

SUBTESTS = ("cpu_int", "cpu_float", "memory", "io")

# Score normalisation constants: work-units per second that map to a
# score of 1000, roughly balancing the subtests on commodity hardware.
_SCORE_NORMS = {
    "cpu_int": 400.0,
    "cpu_float": 400.0,
    "memory": 1200.0,
    "io": 800.0,
}


class _BenchActivity(Activity):
    """Trivial activity the framework burst starts and finishes."""


class _BenchService(Service):
    """Trivial service the framework burst starts and stops."""


def _build_bench_app() -> App:
    manifest = AndroidManifest(
        package="com.bench.antutu",
        category="tools",
        components=(
            ComponentDecl(
                name="_BenchActivity",
                kind=ComponentKind.ACTIVITY,
                exported=True,
                intent_filters=(launcher_filter(),),
            ),
            ComponentDecl(
                name="_BenchService", kind=ComponentKind.SERVICE, exported=True
            ),
        ),
    )
    return App(
        manifest, {"_BenchActivity": _BenchActivity, "_BenchService": _BenchService}
    )


@dataclass
class AnTuTuResult:
    """Scores for one configuration (bigger is better)."""

    configuration: str
    scores: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Total score (sum of subtests)."""
        return sum(self.scores.values())

    def render_text(self) -> str:
        """One row of Fig. 11."""
        parts = [f"{name}={self.scores[name]:.0f}" for name in SUBTESTS]
        return f"{self.configuration:<12} total={self.total:.0f}  " + " ".join(parts)


class AnTuTuBenchmark:
    """The four-kernel suite, interleaved with framework operations."""

    def __init__(self, rounds: int = 30, inner: int = 4000) -> None:
        self.rounds = rounds
        self.inner = inner

    # ------------------------------------------------------------------
    # kernels (one "work unit" each)
    # ------------------------------------------------------------------
    def _kernel_cpu_int(self) -> int:
        total = 0
        for i in range(self.inner):
            total = (total * 1103515245 + 12345 + i) & 0x7FFFFFFF
        return total

    def _kernel_cpu_float(self) -> float:
        total = 0.0
        for i in range(1, self.inner + 1):
            total += math.sqrt(i) * math.sin(i * 0.001)
        return total

    def _kernel_memory(self) -> int:
        block = bytes(2048)
        count = max(8, self.inner // 12)
        buffers = [bytearray(block) for _ in range(count)]
        for i in range(1, len(buffers)):
            buffers[i][:] = buffers[i - 1]
        return len(buffers[-1])

    def _kernel_io(self) -> int:
        stream = io.BytesIO()
        chunk = b"x" * 1024
        for _ in range(max(16, self.inner // 6)):
            stream.write(chunk)
        stream.seek(0)
        read = 0
        while stream.read(4096):
            read += 1
        return read

    # ------------------------------------------------------------------
    # framework burst
    # ------------------------------------------------------------------
    def _framework_burst(self, system: AndroidSystem) -> None:
        uid = system.uid_of("com.bench.antutu")
        record = system.am.start_activity(
            uid, explicit("com.bench.antutu", "_BenchActivity")
        )
        system.am.finish_activity(record)
        system.am.start_service(uid, explicit("com.bench.antutu", "_BenchService"))
        system.am.stop_service(uid, explicit("com.bench.antutu", "_BenchService"))

    # ------------------------------------------------------------------
    # runs
    # ------------------------------------------------------------------
    def run(self, configuration: str = "android") -> AnTuTuResult:
        """Run the suite under ``android`` or ``eandroid``."""
        system = AndroidSystem()
        system.install(_build_bench_app())
        system.boot()
        eandroid: Optional[EAndroid] = None
        if configuration == "eandroid":
            eandroid = attach_eandroid(system)
        elif configuration != "android":
            raise ValueError(f"unknown configuration {configuration!r}")

        kernels = {
            "cpu_int": self._kernel_cpu_int,
            "cpu_float": self._kernel_cpu_float,
            "memory": self._kernel_memory,
            "io": self._kernel_io,
        }
        result = AnTuTuResult(configuration=configuration)
        for name, kernel in kernels.items():
            kernel()  # warm-up round (allocator, code caches)
            laps = []
            for _ in range(self.rounds):
                start = time.perf_counter()
                kernel()
                self._framework_burst(system)
                laps.append(time.perf_counter() - start)
            # Median lap is robust against GC pauses and scheduler noise,
            # which would otherwise dominate a wall-clock total.
            laps.sort()
            median = max(laps[len(laps) // 2], 1e-9)
            result.scores[name] = 1000.0 / (median * _SCORE_NORMS[name])
        return result

    def compare(self) -> Dict[str, AnTuTuResult]:
        """Fig. 11: both configurations with per-round interleaving.

        Laps alternate android/eandroid so CPU-frequency drift, turbo
        state, and GC pressure affect both configurations equally —
        sequential whole-suite runs showed ordering bias far larger than
        the actual hook overhead.
        """
        systems: Dict[str, AndroidSystem] = {}
        for configuration in ("android", "eandroid"):
            system = AndroidSystem()
            system.install(_build_bench_app())
            system.boot()
            if configuration == "eandroid":
                attach_eandroid(system)
            systems[configuration] = system

        kernels = {
            "cpu_int": self._kernel_cpu_int,
            "cpu_float": self._kernel_cpu_float,
            "memory": self._kernel_memory,
            "io": self._kernel_io,
        }
        results = {
            name: AnTuTuResult(configuration=name) for name in systems
        }
        for name, kernel in kernels.items():
            kernel()  # warm-up
            laps: Dict[str, list] = {config: [] for config in systems}
            for _ in range(self.rounds):
                for config, system in systems.items():
                    start = time.perf_counter()
                    kernel()
                    self._framework_burst(system)
                    laps[config].append(time.perf_counter() - start)
            for config, samples in laps.items():
                samples.sort()
                median = max(samples[len(samples) // 2], 1e-9)
                results[config].scores[name] = 1000.0 / (median * _SCORE_NORMS[name])
        return results

"""Table I / Fig. 10 — micro-operation latency benchmark.

"To measure the overhead of E-Android, we first recorded the time cost
of several critical events that E-Android monitors ... We run each
operation 50 times on both Android and E-Android.  We excluded the two
biggest and smallest values as outliers." (§VI-B)

Three configurations are measured:

* ``android`` — stock framework, no observers;
* ``eandroid_framework`` — E-Android's monitor attached but the energy
  accounting module disabled (isolates pure hook cost);
* ``eandroid_complete`` — the full system.

Each of Table I's 13 operations is exercised 50 times per configuration
with wall-clock timing; the output is the boxplot five-number summary of
Fig. 10 (after outlier removal) in milliseconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..android import AndroidSystem, explicit
from ..android.power_manager import SCREEN_BRIGHT_WAKE_LOCK
from ..android.settings import SCREEN_BRIGHTNESS
from ..android.manifest import (
    WAKE_LOCK,
    WRITE_SETTINGS,
    AndroidManifest,
    ComponentDecl,
    ComponentKind,
    launcher_filter,
)
from ..android.activity import Activity
from ..android.app import App
from ..android.service import Service
from ..core import EAndroidAccounting, EAndroidMonitor

CONFIGURATIONS = ("android", "eandroid_framework", "eandroid_complete")

#: Table I, in paper order.
MICRO_OPERATIONS = (
    "start_self_service",
    "stop_self_service",
    "start_other_service",
    "stop_other_service",
    "bind_self_service",
    "unbind_self_service",
    "bind_other_service",
    "unbind_other_service",
    "start_self_activity",
    "start_other_activity",
    "wakelock_acquire",
    "wakelock_release",
    "change_screen",
)

MICRO_OPERATION_DEFINITIONS: Dict[str, str] = {
    "start_self_service": "Start a service belongs to same app by startService().",
    "stop_self_service": "Stop a service belongs to same app by stopService().",
    "start_other_service": "Start a service belongs to different app by startService().",
    "stop_other_service": "Stop a service belongs to different app by stopService().",
    "bind_self_service": "Bind a service belongs to same app by bindService().",
    "unbind_self_service": "Unbind a service belongs to same app by unbindService().",
    "bind_other_service": "Bind a service belongs to different app by bindService().",
    "unbind_other_service": "Unbind a service belongs to different app by unbindService().",
    "start_self_activity": "Start an activity belongs to same app by startActivity().",
    "start_other_activity": "Start an activity belongs to different app by startActivity().",
    "wakelock_acquire": "Acquire a wakelock by acquire().",
    "wakelock_release": "Release a wakelock by release().",
    "change_screen": "Change screen brightness.",
}


class _OpActivity(Activity):
    """No-op activity for the activity-start operations."""


class _OpService(Service):
    """No-op service for the service operations."""


def _bench_app(package: str) -> App:
    manifest = AndroidManifest(
        package=package,
        category="tools",
        uses_permissions=frozenset({WAKE_LOCK, WRITE_SETTINGS}),
        components=(
            ComponentDecl(
                name="_OpActivity",
                kind=ComponentKind.ACTIVITY,
                exported=True,
                intent_filters=(launcher_filter(),),
            ),
            ComponentDecl(
                name="_OpService", kind=ComponentKind.SERVICE, exported=True
            ),
        ),
    )
    return App(manifest, {"_OpActivity": _OpActivity, "_OpService": _OpService})


def build_configured_system(configuration: str) -> AndroidSystem:
    """A fresh device in one of the three measured configurations."""
    if configuration not in CONFIGURATIONS:
        raise ValueError(f"unknown configuration {configuration!r}")
    system = AndroidSystem()
    system.install(_bench_app("com.bench.self"))
    system.install(_bench_app("com.bench.other"))
    system.boot()
    if configuration != "android":
        accounting = EAndroidAccounting(system.kernel, system.hardware.meter)
        monitor = EAndroidMonitor(
            system,
            accounting,
            accounting_enabled=(configuration == "eandroid_complete"),
        )
        system.register_observer(monitor)
    return system


@dataclass
class BoxplotStats:
    """Five-number summary (ms) after the paper's outlier policy."""

    operation: str
    configuration: str
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    samples: int

    @staticmethod
    def from_samples(
        operation: str, configuration: str, samples_ms: List[float]
    ) -> "BoxplotStats":
        """Drop the two biggest and smallest values, then summarise."""
        ordered = sorted(samples_ms)
        if len(ordered) > 8:
            ordered = ordered[2:-2]
        count = len(ordered)

        def quantile(fraction: float) -> float:
            index = fraction * (count - 1)
            lower = int(index)
            upper = min(lower + 1, count - 1)
            weight = index - lower
            return ordered[lower] * (1 - weight) + ordered[upper] * weight

        return BoxplotStats(
            operation=operation,
            configuration=configuration,
            minimum=ordered[0],
            q1=quantile(0.25),
            median=quantile(0.5),
            q3=quantile(0.75),
            maximum=ordered[-1],
            samples=count,
        )


@dataclass
class MicrobenchResult:
    """All boxplots for one run of the micro-benchmark."""

    stats: List[BoxplotStats] = field(default_factory=list)

    def for_op(self, operation: str) -> Dict[str, BoxplotStats]:
        """configuration -> stats for one operation."""
        return {
            s.configuration: s for s in self.stats if s.operation == operation
        }

    def render_text(self) -> str:
        """ASCII rendering of Fig. 10 (medians, ms)."""
        lines = ["=== Fig. 10 — micro-operation medians (ms) ==="]
        header = f"{'operation':<22}" + "".join(
            f"{c:>20}" for c in CONFIGURATIONS
        )
        lines.append(header)
        for op in MICRO_OPERATIONS:
            row = self.for_op(op)
            cells = "".join(
                f"{row[c].median:>20.4f}" if c in row else f"{'-':>20}"
                for c in CONFIGURATIONS
            )
            lines.append(f"{op:<22}{cells}")
        return "\n".join(lines)


class MicroBenchmark:
    """Drives Table I's operations against a configured device."""

    def __init__(self, iterations: int = 50) -> None:
        self.iterations = iterations

    # Each op maps to (setup, measured, teardown) callables per iteration.
    def _op_cycle(
        self, system: AndroidSystem, operation: str, iteration: int
    ) -> Callable[[], None]:
        """Return the *measured* callable, performing setup eagerly."""
        self_uid = system.uid_of("com.bench.self")
        self_svc = explicit("com.bench.self", "_OpService")
        other_svc = explicit("com.bench.other", "_OpService")

        if operation == "start_self_service":
            return lambda: system.am.start_service(self_uid, self_svc)
        if operation == "stop_self_service":
            system.am.start_service(self_uid, self_svc)
            return lambda: system.am.stop_service(self_uid, self_svc)
        if operation == "start_other_service":
            return lambda: system.am.start_service(self_uid, other_svc)
        if operation == "stop_other_service":
            system.am.start_service(self_uid, other_svc)
            return lambda: system.am.stop_service(self_uid, other_svc)
        if operation == "bind_self_service":
            return lambda: system.am.bind_service(self_uid, self_svc)
        if operation == "unbind_self_service":
            connection = system.am.bind_service(self_uid, self_svc)
            return lambda: system.am.unbind_service(connection)
        if operation == "bind_other_service":
            return lambda: system.am.bind_service(self_uid, other_svc)
        if operation == "unbind_other_service":
            connection = system.am.bind_service(self_uid, other_svc)
            return lambda: system.am.unbind_service(connection)
        if operation == "start_self_activity":
            return lambda: system.am.start_activity(
                self_uid, explicit("com.bench.self", "_OpActivity")
            )
        if operation == "start_other_activity":
            return lambda: system.am.start_activity(
                self_uid, explicit("com.bench.other", "_OpActivity")
            )
        if operation == "wakelock_acquire":
            return lambda: system.power_manager.acquire(
                self_uid, SCREEN_BRIGHT_WAKE_LOCK, f"bench-{iteration}"
            )
        if operation == "wakelock_release":
            lock = system.power_manager.acquire(
                self_uid, SCREEN_BRIGHT_WAKE_LOCK, f"bench-{iteration}"
            )
            return lock.release
        if operation == "change_screen":
            level = 50 + (iteration % 2) * 100  # alternate so it's a real change
            return lambda: system.settings.put(self_uid, SCREEN_BRIGHTNESS, level)
        raise ValueError(f"unknown micro operation {operation!r}")

    def _cleanup(self, system: AndroidSystem, operation: str) -> None:
        """Reset per-iteration state the measured call may have left."""
        self_uid = system.uid_of("com.bench.self")
        if operation in ("start_self_service", "bind_self_service"):
            record = system.am.service_record("com.bench.self", "_OpService")
            if record is not None:
                for connection in list(record.connections):
                    system.am.unbind_service(connection)
                if record.started:
                    system.am.stop_service(
                        self_uid, explicit("com.bench.self", "_OpService")
                    )
        if operation in ("start_other_service", "bind_other_service"):
            record = system.am.service_record("com.bench.other", "_OpService")
            if record is not None:
                for connection in list(record.connections):
                    system.am.unbind_service(connection)
                if record.started:
                    system.am.stop_service(
                        self_uid, explicit("com.bench.other", "_OpService")
                    )
        if operation in ("start_self_activity", "start_other_activity"):
            record = system.am.supervisor.front_record()
            if record is not None and record.component_name == "_OpActivity":
                system.am.finish_activity(record)
        if operation == "wakelock_acquire":
            for lock in system.power_manager.held_locks(self_uid):
                lock.release()

    def measure(
        self, operation: str, configuration: str
    ) -> BoxplotStats:
        """Time one operation ``iterations`` times in one configuration."""
        system = build_configured_system(configuration)
        samples_ms: List[float] = []
        for iteration in range(self.iterations):
            measured = self._op_cycle(system, operation, iteration)
            start = time.perf_counter()
            measured()
            elapsed = time.perf_counter() - start
            samples_ms.append(elapsed * 1000.0)
            self._cleanup(system, operation)
            system.run_for(0.01)  # drain any scheduled callbacks
        return BoxplotStats.from_samples(operation, configuration, samples_ms)

    def run_all(self) -> MicrobenchResult:
        """The full Fig. 10 grid: 13 operations x 3 configurations."""
        result = MicrobenchResult()
        for operation in MICRO_OPERATIONS:
            for configuration in CONFIGURATIONS:
                result.stats.append(self.measure(operation, configuration))
        return result

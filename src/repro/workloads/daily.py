"""Seeded daily-usage workload generator.

Produces a realistic multi-hour user session on a simulated device: the
user unlocks the phone in bursts, hops between apps (messaging, camera,
maps, browser, music), lets the screen time out between sessions — and,
optionally, carries the paper's malware along for the ride.  Used by the
scale integration tests and the day-long profiler benches; everything is
driven by a :class:`~repro.sim.rng.SeededRng`, so a given seed replays
the exact same day.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..android import AndroidSystem
from ..apps import (
    BROWSER_PACKAGE,
    CAMERA_PACKAGE,
    CONTACTS_PACKAGE,
    MAPS_PACKAGE,
    MESSAGE_PACKAGE,
    MUSIC_PACKAGE,
    VICTIM_PACKAGE,
    build_browser_app,
    build_camera_app,
    build_contacts_app,
    build_maps_app,
    build_message_app,
    build_music_app,
    build_victim_app,
)
from ..attacks import (
    build_bind_malware,
    build_hijack_malware,
    build_wakelock_malware,
)
from ..core import EAndroid, attach_eandroid
from ..sim.rng import SeededRng

USER_APPS = (
    MESSAGE_PACKAGE,
    CONTACTS_PACKAGE,
    CAMERA_PACKAGE,
    MAPS_PACKAGE,
    BROWSER_PACKAGE,
    MUSIC_PACKAGE,
    VICTIM_PACKAGE,
)


@dataclass
class DayLog:
    """What happened during a generated day."""

    seed: int
    hours: float
    sessions: int = 0
    launches: Dict[str, int] = field(default_factory=dict)

    def note_launch(self, package: str) -> None:
        """Record one app launch."""
        self.launches[package] = self.launches.get(package, 0) + 1


@dataclass
class DayResult:
    """A completed generated day."""

    system: AndroidSystem
    eandroid: EAndroid
    log: DayLog


def build_daily_device(with_malware: bool = False) -> AndroidSystem:
    """A device with the full demo-app cast (and optionally malware)."""
    system = AndroidSystem()
    system.install_all(
        [
            build_message_app(),
            build_contacts_app(),
            build_camera_app(),
            build_maps_app(),
            build_browser_app(),
            build_music_app(),
            build_victim_app(),
        ]
    )
    if with_malware:
        system.install_all(
            [
                build_hijack_malware(),
                build_bind_malware(),
                build_wakelock_malware(),
            ]
        )
    system.boot()
    return system


def run_day(
    seed: int = 42,
    hours: float = 8.0,
    with_malware: bool = False,
    session_rate_per_hour: float = 6.0,
) -> DayResult:
    """Generate and run one day of usage.

    The day alternates idle gaps (screen off, device suspended unless
    something holds a wakelock) with usage sessions of 1-5 app visits.
    Malware, when present, arms itself through the unlock broadcast like
    the paper's implementation (§V).
    """
    rng = SeededRng(seed)
    system = build_daily_device(with_malware=with_malware)
    eandroid = attach_eandroid(system)
    log = DayLog(seed=seed, hours=hours)

    end_time = system.now + hours * 3600.0
    mean_gap = 3600.0 / session_rate_per_hour
    while system.now < end_time:
        # Idle gap between sessions.
        gap = rng.uniform(0.3 * mean_gap, 1.7 * mean_gap)
        system.run_for(min(gap, end_time - system.now))
        if system.now >= end_time:
            break
        # The user picks the phone up (fires USER_PRESENT -> malware).
        system.unlock_screen()
        log.sessions += 1
        for _ in range(rng.randint(1, 5)):
            package = rng.choice(USER_APPS)
            record = system.launch_app(package)
            log.note_launch(package)
            dwell = rng.uniform(10.0, 120.0)
            system.run_for(min(dwell, max(0.0, end_time - system.now)))
            # Occasionally interact meaningfully with the app.
            if package == MESSAGE_PACKAGE and rng.bernoulli(0.3):
                record.instance.record_video(rng.uniform(5.0, 20.0))
                system.run_for(25.0)
            elif package == CONTACTS_PACKAGE and rng.bernoulli(0.4):
                record.instance.open_message()
                system.run_for(rng.uniform(5.0, 30.0))
            if system.now >= end_time:
                break
        # Session over: sometimes quit properly, usually just press home.
        if rng.bernoulli(0.25):
            system.press_back()
            if rng.bernoulli(0.5):
                system.tap_dialog_ok()
        system.press_home()
    return DayResult(system=system, eandroid=eandroid, log=log)

"""Memory overhead of E-Android (the §VI-B AnTuTu memory aspect).

"We also used AnTuTu benchmark to measure the CPU and memory overhead."
On the simulator we can measure the memory question directly: run the
same workload with and without the monitor attached and compare the
Python-heap growth (tracemalloc), plus an itemised census of E-Android's
own data structures (journal entries, links, map elements).  The paper's
claim — overhead similar to stock Android — translates to: E-Android's
state grows with *collateral events*, not with time or workload volume.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass
from typing import Callable, Optional

from ..android import AndroidSystem, explicit
from ..apps import build_victim_app
from ..attacks import build_bind_malware
from ..core import EAndroid, attach_eandroid


@dataclass
class MemoryReport:
    """Heap growth for one configuration plus E-Android's state census."""

    configuration: str
    heap_growth_kib: float
    journal_entries: int = 0
    attack_links: int = 0
    map_elements: int = 0

    def render_text(self) -> str:
        """One row of the memory comparison."""
        detail = ""
        if self.configuration == "eandroid":
            detail = (
                f"  (journal={self.journal_entries} links={self.attack_links} "
                f"map elements={self.map_elements})"
            )
        return (
            f"{self.configuration:<10} heap growth {self.heap_growth_kib:8.1f} KiB"
            + detail
        )


def _default_workload(system: AndroidSystem) -> None:
    """A busy mixed workload: launches, IPC, background service churn."""
    from ..apps import VICTIM_PACKAGE
    from ..attacks import BIND_PACKAGE

    system.launch_app(BIND_PACKAGE)
    system.press_home()
    victim = system.uid_of(VICTIM_PACKAGE)
    svc = explicit(VICTIM_PACKAGE, "VictimWorkService")
    for _ in range(20):
        system.am.start_service(victim, svc)
        system.run_for(5.0)
        system.am.stop_service(victim, svc)
        system.launch_app(VICTIM_PACKAGE)
        system.press_home()
        system.run_for(5.0)


def measure_memory_overhead(
    workload: Optional[Callable[[AndroidSystem], None]] = None,
) -> dict:
    """Heap growth running ``workload`` with and without E-Android.

    Returns ``{"android": MemoryReport, "eandroid": MemoryReport}``.
    """
    if workload is None:
        workload = _default_workload
    reports = {}
    for configuration in ("android", "eandroid"):
        system = AndroidSystem()
        system.install(build_victim_app())
        system.install(build_bind_malware())
        system.boot()
        eandroid: Optional[EAndroid] = None
        if configuration == "eandroid":
            eandroid = attach_eandroid(system)
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        workload(system)
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        report = MemoryReport(
            configuration=configuration,
            heap_growth_kib=(after - before) / 1024.0,
        )
        if eandroid is not None:
            report.journal_entries = len(eandroid.monitor.log)
            report.attack_links = len(eandroid.accounting.attack_log())
            report.map_elements = sum(
                len(eandroid.accounting.map_for(host))
                for host in eandroid.accounting.graph.hosts()
            )
        reports[configuration] = report
    return reports

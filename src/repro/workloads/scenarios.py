"""Scenario drivers for the evaluation (§VI-A).

Each scenario builds a fresh simulated device, plays the paper's script
on it, and returns a :class:`ScenarioRun` from which the experiments
pull the Android view (baseline profiler), the E-Android view, and
ground truth.  Because E-Android does not perturb the simulated energy
(§VI-B verifies this explicitly), both views are taken from one run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..accounting import BatteryStats, PowerTutor, ProfilerReport
from ..android import (
    AndroidSystem,
    SCREEN_BRIGHT_WAKE_LOCK,
    SCREEN_BRIGHTNESS,
    explicit,
)
from ..apps import (
    CAMERA_PACKAGE,
    CONTACTS_PACKAGE,
    MESSAGE_PACKAGE,
    VICTIM_PACKAGE,
    build_camera_app,
    build_contacts_app,
    build_message_app,
    build_victim_app,
)
from ..attacks import (
    BACKGROUND_PACKAGE,
    BIND_PACKAGE,
    BRIGHTNESS_PACKAGE,
    HIJACK_PACKAGE,
    HYBRID_PACKAGE,
    INTERRUPT_PACKAGE,
    MULTI_PACKAGE,
    RELAY_B_PACKAGE,
    RELAY_C_PACKAGE,
    WAKELOCK_PACKAGE,
    build_background_malware,
    build_bind_malware,
    build_brightness_malware,
    build_hijack_malware,
    build_hybrid_malware,
    build_interrupt_malware,
    build_multi_malware,
    build_relay_b,
    build_relay_c,
    build_wakelock_malware,
)
from ..core import EAndroid, attach_eandroid, attach_eandroid_powertutor
from ..telemetry import PhaseBeginEvent, PhaseEndEvent

ATTACK_DURATION_S = 60.0
FILM_DURATION_S = 30.0


@dataclass
class ScenarioRun:
    """One completed scenario with its measurement window."""

    name: str
    system: AndroidSystem
    eandroid: EAndroid
    start: float
    end: float
    notes: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Mark the measurement window on the device timeline so trace
        # exports show the phase alongside the attack windows it frames.
        bus = self.system.telemetry
        bus.publish(PhaseBeginEvent(time=self.start, phase=self.name))
        bus.publish(PhaseEndEvent(time=self.end, phase=self.name))

    def android_report(self) -> ProfilerReport:
        """What stock Android's BatteryStats shows for the window."""
        return BatteryStats(self.system).report(self.start, self.end)

    def powertutor_report(self) -> ProfilerReport:
        """What stock PowerTutor shows for the window."""
        return PowerTutor(self.system).report(self.start, self.end)

    def eandroid_report(self) -> ProfilerReport:
        """What E-Android's revised interface shows for the window."""
        return self.eandroid.report(self.start, self.end)

    def ground_truth_j(self, uid: int) -> float:
        """Meter truth for one uid over the window."""
        return self.system.hardware.meter.energy_j(
            owner=uid, start=self.start, end=self.end
        )


def _fresh(*builders: Callable, baseline: str = "batterystats") -> tuple:
    system = AndroidSystem()
    for build in builders:
        system.install(build())
    system.boot()
    if baseline == "powertutor":
        eandroid = attach_eandroid_powertutor(system)
    else:
        eandroid = attach_eandroid(system)
    return system, eandroid


def _force_screen_on(system: AndroidSystem) -> None:
    """The paper's setup: 'we set the wakelock so that the screen will
    be forced on' — held by the system uid so nothing is charged."""
    system.power_manager.acquire(
        system.package_manager.system_uid, SCREEN_BRIGHT_WAKE_LOCK, "experiment"
    )


# ----------------------------------------------------------------------
# Normal scenes (Figs. 1, 9a, 9b)
# ----------------------------------------------------------------------
def run_scene1(baseline: str = "batterystats") -> ScenarioRun:
    """Scene #1: open Message, wait 30 s, film a 30 s video."""
    system, eandroid = _fresh(build_message_app, build_camera_app, baseline=baseline)
    _force_screen_on(system)
    start = system.now
    record = system.launch_app(MESSAGE_PACKAGE)
    system.run_for(30.0)
    record.instance.record_video(FILM_DURATION_S)
    system.run_for(FILM_DURATION_S + 1.0)
    return ScenarioRun("scene1", system, eandroid, start, system.now)


def run_scene2(baseline: str = "batterystats") -> ScenarioRun:
    """Scene #2: Contacts opens Message, which films a 30 s video —
    the legitimate hybrid chain."""
    system, eandroid = _fresh(
        build_contacts_app, build_message_app, build_camera_app, baseline=baseline
    )
    _force_screen_on(system)
    start = system.now
    contacts = system.launch_app(CONTACTS_PACKAGE)
    system.run_for(10.0)
    contacts.instance.open_message()
    system.run_for(10.0)
    message_record = system.am.supervisor.front_record()
    message_record.instance.record_video(FILM_DURATION_S)
    system.run_for(FILM_DURATION_S + 1.0)
    return ScenarioRun("scene2", system, eandroid, start, system.now)


# ----------------------------------------------------------------------
# Attacks (Figs. 9c-9f; attacks #1/#2 mirror scene #1 per §VI-A)
# ----------------------------------------------------------------------
def run_attack1(duration: float = ATTACK_DURATION_S) -> ScenarioRun:
    """Attack #1: camera hijack."""
    system, eandroid = _fresh(build_camera_app, build_hijack_malware)
    _force_screen_on(system)
    start = system.now
    system.launch_app(HIJACK_PACKAGE)
    system.run_for(duration)
    run = ScenarioRun("attack1", system, eandroid, start, system.now)
    run.notes["malware_uid"] = system.uid_of(HIJACK_PACKAGE)
    run.notes["victim_uid"] = system.uid_of(CAMERA_PACKAGE)
    return run


def run_attack2(duration: float = ATTACK_DURATION_S) -> ScenarioRun:
    """Attack #2: victims triggered into the background."""
    system, eandroid = _fresh(build_victim_app, build_background_malware)
    _force_screen_on(system)
    start = system.now
    system.launch_app(BACKGROUND_PACKAGE)
    system.run_for(duration)
    run = ScenarioRun("attack2", system, eandroid, start, system.now)
    run.notes["malware_uid"] = system.uid_of(BACKGROUND_PACKAGE)
    run.notes["victim_uid"] = system.uid_of(VICTIM_PACKAGE)
    return run


def run_attack3(duration: float = ATTACK_DURATION_S) -> ScenarioRun:
    """Attack #3: bind without unbinding.

    "The attacked app starts its service and stops it immediately.
    However, the connection bound by malware forces the service to run
    continuously." (§VI-A)
    """
    system, eandroid = _fresh(build_victim_app, build_bind_malware)
    _force_screen_on(system)
    system.launch_app(BIND_PACKAGE)
    system.press_home()
    start = system.now
    victim = system.uid_of(VICTIM_PACKAGE)
    svc = explicit(VICTIM_PACKAGE, "VictimWorkService")
    system.am.start_service(victim, svc)
    system.run_for(1.0)  # malware's poll detects the service and binds
    system.am.stop_service(victim, svc)
    system.run_for(duration)
    run = ScenarioRun("attack3", system, eandroid, start, system.now)
    run.notes["malware_uid"] = system.uid_of(BIND_PACKAGE)
    run.notes["victim_uid"] = victim
    return run


def run_attack4(duration: float = ATTACK_DURATION_S) -> ScenarioRun:
    """Attack #4: interrupt the victim at quit time (side channel +
    transparent cover); measures after the victim is backgrounded."""
    system, eandroid = _fresh(build_victim_app, build_interrupt_malware)
    system.launch_app(INTERRUPT_PACKAGE)
    system.press_home()
    system.launch_app(VICTIM_PACKAGE)
    system.run_for(5.0)
    system.press_back()  # exit dialog
    system.run_for(1.0)  # malware covers it
    system.tap_dialog_ok()  # fake quit: victim only stops
    start = system.now
    system.run_for(duration)
    run = ScenarioRun("attack4", system, eandroid, start, system.now)
    run.notes["malware_uid"] = system.uid_of(INTERRUPT_PACKAGE)
    run.notes["victim_uid"] = system.uid_of(VICTIM_PACKAGE)
    return run


def run_attack5(
    duration: float = ATTACK_DURATION_S, attack: bool = True
) -> ScenarioRun:
    """Attack #5: brightness escalation; ``attack=False`` gives the
    'regular screen energy' control of Fig. 9e's upper half."""
    system, eandroid = _fresh(build_victim_app, lambda: build_brightness_malware(target_level=255))
    _force_screen_on(system)
    system.launch_app(VICTIM_PACKAGE)
    if attack:
        malware_uid = system.uid_of(BRIGHTNESS_PACKAGE)
        # The payload fires from the background via the unlock broadcast.
        system.unlock_screen()
        system.am.move_task_to_front(
            system.package_manager.system_uid, VICTIM_PACKAGE, user_initiated=True
        )
    start = system.now
    system.run_for(duration)
    run = ScenarioRun(
        "attack5" if attack else "attack5_normal",
        system,
        eandroid,
        start,
        system.now,
    )
    run.notes["malware_uid"] = system.uid_of(BRIGHTNESS_PACKAGE)
    return run


def run_attack6(
    duration: float = ATTACK_DURATION_S, attack: bool = True
) -> ScenarioRun:
    """Attack #6: a background service's unreleased screen wakelock;
    ``attack=False`` lets the screen auto-off after 30 s (the control:
    'malware releases the wakelock').  The foreground app is Message —
    an app with no wakelock of its own, so the screen's fate is decided
    entirely by the malware's lock."""
    system, eandroid = _fresh(build_message_app, build_wakelock_malware)
    system.launch_app(WAKELOCK_PACKAGE)  # payload acquires the lock
    system.press_home()
    system.launch_app(MESSAGE_PACKAGE)
    malware_uid = system.uid_of(WAKELOCK_PACKAGE)
    if not attack:
        for lock in system.power_manager.held_locks(malware_uid):
            lock.release()
    start = system.now
    system.run_for(duration)
    run = ScenarioRun(
        "attack6" if attack else "attack6_normal",
        system,
        eandroid,
        start,
        system.now,
    )
    run.notes["malware_uid"] = malware_uid
    run.notes["victim_uid"] = system.uid_of(MESSAGE_PACKAGE)
    return run


def run_multi_attack(duration: float = ATTACK_DURATION_S) -> ScenarioRun:
    """Fig. 6: several simultaneous attacks on one victim."""
    system, eandroid = _fresh(build_victim_app, build_multi_malware)
    _force_screen_on(system)
    start = system.now
    system.launch_app(MULTI_PACKAGE)
    system.run_for(duration)
    run = ScenarioRun("multi", system, eandroid, start, system.now)
    run.notes["malware_uid"] = system.uid_of(MULTI_PACKAGE)
    run.notes["victim_uid"] = system.uid_of(VICTIM_PACKAGE)
    return run


def run_hybrid_attack(duration: float = ATTACK_DURATION_S) -> ScenarioRun:
    """Fig. 7: the A->B->C->screen chain."""
    system, eandroid = _fresh(
        build_relay_b, build_relay_c, build_hybrid_malware
    )
    _force_screen_on(system)
    start = system.now
    system.launch_app(HYBRID_PACKAGE)
    system.run_for(duration)
    run = ScenarioRun("hybrid", system, eandroid, start, system.now)
    run.notes["malware_uid"] = system.uid_of(HYBRID_PACKAGE)
    run.notes["relay_b_uid"] = system.uid_of(RELAY_B_PACKAGE)
    run.notes["relay_c_uid"] = system.uid_of(RELAY_C_PACKAGE)
    return run


ALL_ATTACKS = {
    "attack1": run_attack1,
    "attack2": run_attack2,
    "attack3": run_attack3,
    "attack4": run_attack4,
    "attack5": run_attack5,
    "attack6": run_attack6,
}


# ----------------------------------------------------------------------
# Fig. 3 — battery depletion configurations
# ----------------------------------------------------------------------
@dataclass
class DrainResult:
    """One Fig. 3 series."""

    name: str
    hours_to_dead: float
    curve: List  # of BatterySample

    def percent_at_hours(self, hours: float) -> float:
        """Charge level after ``hours`` (linear steady-state draw)."""
        if self.hours_to_dead <= 0:
            return 0.0
        return max(0.0, 100.0 * (1.0 - hours / self.hours_to_dead))


def _drain_base(brightness: int, profile=None) -> AndroidSystem:
    """Screen forced on at ``brightness``; idle home screen foreground.

    The paper uses "demo apps that almost have no functionality as
    attacked apps", so the baseline is the bare screen-on device and
    each attack configuration adds only the victim activity it needs.
    ``profile`` selects the device power profile (default Nexus 4).
    """
    from ..power.profiles import NEXUS4

    system = AndroidSystem(profile=profile if profile is not None else NEXUS4)
    system.install(build_victim_app())
    system.boot()
    _force_screen_on(system)
    system.settings.put_as_system(SCREEN_BRIGHTNESS, brightness)
    return system


def _finish_drain(name: str, system: AndroidSystem) -> DrainResult:
    # Let the configuration reach steady state, then extrapolate the
    # piecewise-constant draw to 0% analytically.
    system.run_for(120.0)
    dead_at = system.battery.time_until_dead()
    assert dead_at is not None, "drain configuration draws no power"
    curve = system.battery.discharge_curve(step_s=900.0)
    return DrainResult(name=name, hours_to_dead=dead_at / 3600.0, curve=curve)


def run_drain_brightness(level: int, name: str, profile=None) -> DrainResult:
    """Screen pinned on at ``level`` with the idle demo app foreground."""
    return _finish_drain(name, _drain_base(level, profile=profile))


def run_drain_bind_service(profile=None) -> DrainResult:
    """Baseline brightness plus the bound-forever victim service."""
    system = _drain_base(0, profile=profile)
    system.install(build_bind_malware())
    system.launch_app(BIND_PACKAGE)
    system.press_home()
    victim = system.uid_of(VICTIM_PACKAGE)
    svc = explicit(VICTIM_PACKAGE, "VictimWorkService")
    system.am.start_service(victim, svc)
    system.run_for(1.0)  # malware's poll binds
    system.am.stop_service(victim, svc)
    return _finish_drain("bind_service", system)


def run_drain_interrupt(profile=None) -> DrainResult:
    """Baseline brightness plus the victim interrupted to background."""
    system = _drain_base(0, profile=profile)
    system.install(build_interrupt_malware())
    system.launch_app(INTERRUPT_PACKAGE)
    system.press_home()
    system.launch_app(VICTIM_PACKAGE)
    system.run_for(5.0)
    system.press_back()
    system.run_for(1.0)
    system.tap_dialog_ok()
    return _finish_drain("interrupt_app", system)


def run_fig3_drains(profile=None) -> List[DrainResult]:
    """All five Fig. 3 series (``profile`` defaults to the Nexus 4)."""
    return [
        run_drain_brightness(0, "brightness_low", profile=profile),
        run_drain_brightness(10, "brightness_10", profile=profile),
        run_drain_brightness(255, "brightness_full", profile=profile),
        run_drain_bind_service(profile=profile),
        run_drain_interrupt(profile=profile),
    ]

"""Fig. 1 — the motivating BatteryStats view while filming in Message.

"The figure shows the consumed energy percentages by the Message and the
Camera.  The result, however, indicates that the Message only consumes a
quite small portion of energy.  The fact is that the energy drained by
video filming is assigned to the Camera, no matter what app opened the
Camera or how it was opened." (§II)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict

from ..workloads.scenarios import ScenarioRun, run_scene1
from .registry import ExperimentResultMixin, ExperimentSpec, register
from .tables import render_table


@dataclass
class Fig1Result(ExperimentResultMixin):
    """Energy percentages in the stock Android view for scene #1."""

    message_percent: float
    camera_percent: float
    screen_percent: float
    run: ScenarioRun
    params: Dict[str, Any] = field(default_factory=dict)

    experiment_name: ClassVar[str] = "fig1"

    @property
    def camera_blamed(self) -> bool:
        """The paper's observation: Camera ≫ Message in the stock view."""
        return self.camera_percent > 5 * max(self.message_percent, 1e-9)

    @property
    def claim_holds(self) -> bool:
        """Registry claim check: the Camera gets the blame."""
        return self.camera_blamed

    def metrics(self) -> Dict[str, Any]:
        """The three percentages the figure shows."""
        return {
            "message_percent": self.message_percent,
            "camera_percent": self.camera_percent,
            "screen_percent": self.screen_percent,
        }

    def render_text(self) -> str:
        """Fig. 1 as a table."""
        return render_table(
            ["app", "energy share (Android BatteryStats)"],
            [
                ("Camera", f"{self.camera_percent:.1f}%"),
                ("Message", f"{self.message_percent:.1f}%"),
                ("Screen", f"{self.screen_percent:.1f}%"),
            ],
            title="Fig. 1 — energy view when filming in the Message app",
        )


def run_fig1() -> Fig1Result:
    """Run scene #1 and read the stock Android battery view."""
    run = run_scene1()
    report = run.android_report()
    return Fig1Result(
        message_percent=report.percent_of("Message"),
        camera_percent=report.percent_of("Camera"),
        screen_percent=report.percent_of("Screen"),
        run=run,
    )


register(
    ExperimentSpec(
        name="fig1",
        runner=run_fig1,
        description="BatteryStats view while filming in Message (motivation)",
        order=1,
    )
)

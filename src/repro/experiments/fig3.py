"""Fig. 3 — time lapsed to drain the battery under the simple attacks.

The paper's curves (battery % vs hours) for five configurations:
brightness at the minimum (the baseline), brightness 10, brightness at
the maximum, a bound-forever victim service, and an interrupted app —
all with a wakelock forcing the screen on.  The claims we reproduce:
maximum brightness drains fastest; every attack configuration beats the
baseline; "a small increase of brightness ... can increase battery
drain".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List

from ..workloads.scenarios import DrainResult, run_fig3_drains
from .registry import ExperimentResultMixin, ExperimentSpec, register
from .tables import render_ascii_series, render_table


@dataclass
class Fig3Result(ExperimentResultMixin):
    """All five discharge series."""

    drains: List[DrainResult]
    params: Dict[str, Any] = field(default_factory=dict)

    experiment_name: ClassVar[str] = "fig3"

    def hours(self) -> Dict[str, float]:
        """name -> hours to 0%."""
        return {d.name: d.hours_to_dead for d in self.drains}

    @property
    def claim_holds(self) -> bool:
        """Registry claim check: the paper's drain-time ordering."""
        return self.ordering_holds

    def metrics(self) -> Dict[str, Any]:
        """Hours-to-dead per configuration."""
        return {"hours_to_dead": self.hours()}

    @property
    def ordering_holds(self) -> bool:
        """Paper shape: baseline slowest; full brightness fastest."""
        hours = self.hours()
        baseline = hours["brightness_low"]
        return (
            hours["brightness_full"] < hours["bind_service"] < baseline
            and hours["brightness_full"] < hours["brightness_10"] < baseline
            and hours["interrupt_app"] < baseline
        )

    def render_text(self) -> str:
        """Fig. 3 as a table plus an ASCII chart."""
        rows = [(d.name, f"{d.hours_to_dead:.2f} h") for d in self.drains]
        table = render_table(
            ["configuration", "time to drain 100%"],
            rows,
            title="Fig. 3 — difference of time lapsed to drain the battery",
        )
        series = [
            (d.name, [(s.time_s / 3600.0, s.percent) for s in d.curve])
            for d in self.drains
        ]
        return table + "\n\n" + render_ascii_series(series)


def run_fig3() -> Fig3Result:
    """Run all five drain configurations."""
    return Fig3Result(drains=run_fig3_drains())


register(
    ExperimentSpec(
        name="fig3",
        runner=run_fig3,
        description="time lapsed to drain the battery under the simple attacks",
        order=3,
    )
)

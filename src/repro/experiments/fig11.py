"""Fig. 11 — AnTuTu-style benchmark: E-Android vs Android scores.

"The results demonstrate that E-Android has a similar overhead as
Android." (§VI-B) — scores under the two configurations should be
within noise of each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict

from ..workloads.antutu import SUBTESTS, AnTuTuBenchmark, AnTuTuResult
from .registry import ExperimentResultMixin, ExperimentSpec, register
from .tables import render_table


@dataclass
class Fig11Result(ExperimentResultMixin):
    """Both configurations' scores."""

    android: AnTuTuResult
    eandroid: AnTuTuResult
    params: Dict[str, Any] = field(default_factory=dict)

    experiment_name: ClassVar[str] = "fig11"

    @property
    def claim_holds(self) -> bool:
        """Registry claim check: similar scores under both configurations."""
        return self.similar_performance

    def metrics(self) -> Dict[str, Any]:
        """Totals and their ratio."""
        return {
            "android_total": self.android.total,
            "eandroid_total": self.eandroid.total,
            "score_ratio": self.score_ratio(),
        }

    def score_ratio(self) -> float:
        """E-Android total / Android total (≈ 1.0 expected)."""
        if self.android.total == 0:
            return 0.0
        return self.eandroid.total / self.android.total

    @property
    def similar_performance(self) -> bool:
        """Within 25% on the total score (wall-clock noise tolerance)."""
        return 0.75 <= self.score_ratio() <= 1.25

    def render_text(self) -> str:
        """Fig. 11 as a table."""
        rows = []
        for name in SUBTESTS + ("TOTAL",):
            if name == "TOTAL":
                a, e = self.android.total, self.eandroid.total
            else:
                a, e = self.android.scores[name], self.eandroid.scores[name]
            rows.append((name, f"{a:.0f}", f"{e:.0f}", f"{e / a:.3f}" if a else "-"))
        return render_table(
            ["subtest", "Android", "E-Android", "ratio"],
            rows,
            title="Fig. 11 — AnTuTu-style benchmark scores (bigger is better)",
        )


def run_fig11(rounds: int = 40, inner: int = 4000) -> Fig11Result:
    """Run the suite under both configurations."""
    bench = AnTuTuBenchmark(rounds=rounds, inner=inner)
    results: Dict[str, AnTuTuResult] = bench.compare()
    return Fig11Result(
        android=results["android"],
        eandroid=results["eandroid"],
        params={"rounds": rounds, "inner": inner},
    )


register(
    ExperimentSpec(
        name="fig11",
        runner=run_fig11,
        description="AnTuTu-style benchmark: E-Android vs Android scores",
        default_params={"rounds": 40, "inner": 4000},
        order=9,
    )
)

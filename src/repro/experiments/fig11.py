"""Fig. 11 — AnTuTu-style benchmark: E-Android vs Android scores.

"The results demonstrate that E-Android has a similar overhead as
Android." (§VI-B) — scores under the two configurations should be
within noise of each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..workloads.antutu import SUBTESTS, AnTuTuBenchmark, AnTuTuResult
from .tables import render_table


@dataclass
class Fig11Result:
    """Both configurations' scores."""

    android: AnTuTuResult
    eandroid: AnTuTuResult

    def score_ratio(self) -> float:
        """E-Android total / Android total (≈ 1.0 expected)."""
        if self.android.total == 0:
            return 0.0
        return self.eandroid.total / self.android.total

    @property
    def similar_performance(self) -> bool:
        """Within 25% on the total score (wall-clock noise tolerance)."""
        return 0.75 <= self.score_ratio() <= 1.25

    def render_text(self) -> str:
        """Fig. 11 as a table."""
        rows = []
        for name in SUBTESTS + ("TOTAL",):
            if name == "TOTAL":
                a, e = self.android.total, self.eandroid.total
            else:
                a, e = self.android.scores[name], self.eandroid.scores[name]
            rows.append((name, f"{a:.0f}", f"{e:.0f}", f"{e / a:.3f}" if a else "-"))
        return render_table(
            ["subtest", "Android", "E-Android", "ratio"],
            rows,
            title="Fig. 11 — AnTuTu-style benchmark scores (bigger is better)",
        )


def run_fig11(rounds: int = 40, inner: int = 4000) -> Fig11Result:
    """Run the suite under both configurations."""
    bench = AnTuTuBenchmark(rounds=rounds, inner=inner)
    results: Dict[str, AnTuTuResult] = bench.compare()
    return Fig11Result(android=results["android"], eandroid=results["eandroid"])

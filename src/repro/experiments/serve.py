"""``serve`` — one query-service shard as an engine-drivable job.

With ``workers > 1`` the :class:`~repro.serve.service.ProfilingService`
fans each batch's cache misses out through the parallel experiment
engine, one ``serve`` job per shard: the job receives the shard's
traces (as serialised JSON) plus its queries, rebuilds a miniature
in-process service, and returns the answered responses in its metrics.

Registers as *auxiliary*: it rides on the engine's fan-out/retries but
is not part of the paper's evaluation, so plain ``repro experiments``
skips it.  Caching is disabled by the dispatching service — the result
LRU in the parent process is the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List

from .registry import ExperimentResultMixin, ExperimentSpec, register


@dataclass
class ServeShardResult(ExperimentResultMixin):
    """One shard's answered responses."""

    responses: List[Dict[str, Any]]
    stats: Dict[str, Any]
    params: Dict[str, Any] = field(default_factory=dict)

    experiment_name: ClassVar[str] = "serve"

    @property
    def claim_holds(self) -> bool:
        """A shard job succeeds when every query got *some* response."""
        return len(self.responses) == int(self.stats.get("received", -1))

    def metrics(self) -> Dict[str, Any]:
        """The responses themselves — what the dispatcher folds back."""
        return {"responses": list(self.responses), "stats": dict(self.stats)}

    def render_text(self) -> str:
        """One-line shard summary."""
        answered = self.stats.get("answered", 0)
        errors = self.stats.get("errors", 0)
        return (
            f"serve shard: {len(self.responses)} response(s) "
            f"({answered} ok, {errors} error)"
        )


def run_serve_shard(
    traces: Dict[str, str],
    queries: List[Dict[str, Any]],
    cache_entries: int = 0,
) -> ServeShardResult:
    """Answer one shard's queries in this process (worker entry point).

    ``traces`` maps session name -> serialised DeviceTrace JSON;
    ``queries`` are QueryRequest wire dicts.  The shard service runs
    with telemetry off (the parent's bus carries the per-query events)
    and — by default — no result LRU (the parent's cache is
    authoritative; only misses reach a shard).
    """
    from ..offline.trace import DeviceTrace
    from ..serve.protocol import QueryRequest
    from ..serve.service import ProfilingService, ServiceConfig

    service = ProfilingService(
        ServiceConfig(cache_entries=cache_entries, workers=1, telemetry=False)
    )
    for session, trace_json in traces.items():
        service.ingest_trace(session, DeviceTrace.from_json(trace_json), "shard")
    responses = [
        service.submit(QueryRequest.from_dict(query)).to_dict() for query in queries
    ]
    return ServeShardResult(
        responses=responses,
        stats=service.stats.as_dict(),
        params={"sessions": sorted(traces), "queries": len(queries)},
    )


register(
    ExperimentSpec(
        name="serve",
        runner=run_serve_shard,
        description="one query-service shard (repro serve fan-out)",
        default_params={"traces": {}, "queries": [], "cache_entries": 0},
        order=102,
        auxiliary=True,
    )
)

"""``fuzz`` — one conformance-fuzzing seed batch as an experiment.

The ``repro check`` campaign splits its scenario seeds into batches and
submits each batch through the parallel experiment engine as a ``fuzz``
job, which buys the campaign process fan-out, retries, telemetry, and
on-disk result caching for free.  The batch result carries one verdict
per seed in its ``metrics()`` (so verdicts survive the cache
round-trip), and ``claim_holds`` is simply "every oracle passed on
every seed".

The spec registers as *auxiliary*: it rides on the engine but is not
part of the paper's evaluation, so ``repro run`` / ``resolve_selection``
with no explicit selection skip it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Sequence

from .registry import ExperimentResultMixin, ExperimentSpec, register


@dataclass
class FuzzBatchResult(ExperimentResultMixin):
    """Verdicts for one batch of fuzzed scenario seeds."""

    verdicts: List[Dict[str, Any]]
    params: Dict[str, Any] = field(default_factory=dict)

    experiment_name: ClassVar[str] = "fuzz"

    @property
    def claim_holds(self) -> bool:
        """Every scenario in the batch satisfied every oracle."""
        return all(v["ok"] for v in self.verdicts)

    @property
    def failures(self) -> List[Dict[str, Any]]:
        """The failing verdicts."""
        return [v for v in self.verdicts if not v["ok"]]

    def metrics(self) -> Dict[str, Any]:
        """The per-seed verdicts (the campaign's unit of work) + counts."""
        return {
            "scenarios": len(self.verdicts),
            "failed": len(self.failures),
            "verdicts": self.verdicts,
        }

    def render_text(self) -> str:
        """One line per seed; failures list their oracles."""
        lines = [
            f"fuzz batch: {len(self.verdicts)} scenario(s), "
            f"{len(self.failures)} failing"
        ]
        for verdict in self.verdicts:
            if verdict["ok"]:
                lines.append(
                    f"  ok   seed {verdict['seed']} "
                    f"script {verdict['script_hash']}"
                )
            else:
                oracles = sorted({v["oracle"] for v in verdict["violations"]})
                lines.append(
                    f"  FAIL seed {verdict['seed']} "
                    f"script {verdict['script_hash']} — {', '.join(oracles)}"
                )
        return "\n".join(lines)


def run_fuzz_batch(
    seeds: Sequence[int] = (7,),
    ops: int = 40,
    stride: int = 1,
    metamorphic: bool = True,
    scripts_digest: str = "",
) -> FuzzBatchResult:
    """Generate and check one scenario per seed.

    ``scripts_digest`` is the combined script hash of the batch: it is
    not used here (the scenario is regenerated from the seed), but it is
    part of the cache key, so a change to the generator or scenario
    format invalidates stale cached verdicts.
    """
    from ..check.generator import generate_scenario
    from ..check.runner import run_scenario

    verdicts = []
    for seed in seeds:
        scenario = generate_scenario(seed, ops=ops)
        report = run_scenario(
            scenario, stride=stride, metamorphic=metamorphic
        )
        verdicts.append(report.to_verdict())
    return FuzzBatchResult(
        verdicts=verdicts,
        params={
            "seeds": list(seeds),
            "ops": ops,
            "stride": stride,
            "metamorphic": metamorphic,
            "scripts_digest": scripts_digest,
        },
    )


register(
    ExperimentSpec(
        name="fuzz",
        runner=run_fuzz_batch,
        description="conformance-fuzzing seed batch (repro check)",
        default_params={
            "seeds": (7,),
            "ops": 40,
            "stride": 1,
            "metamorphic": True,
            "scripts_digest": "",
        },
        order=99,
        auxiliary=True,
    )
)

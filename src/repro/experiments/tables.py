"""Small ASCII table/chart helpers shared by the experiment modules."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render a simple fixed-width table."""
    columns = len(headers)
    cells = [[str(h) for h in headers]] + [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(columns)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(cells[0])))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in cells[1:]:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_ascii_series(
    series: List[Tuple[str, List[Tuple[float, float]]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "hours",
    y_label: str = "battery %",
) -> str:
    """Plot several (x, y) series as an ASCII chart (Fig. 3 style)."""
    if not series:
        return "(no data)"
    points = [p for _, pts in series for p in pts]
    x_max = max(p[0] for p in points) or 1.0
    y_max = max(p[1] for p in points) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x#@%&"
    for index, (_, pts) in enumerate(series):
        marker = markers[index % len(markers)]
        for x, y in pts:
            col = min(width - 1, int(x / x_max * (width - 1)))
            row = min(height - 1, int((1.0 - y / y_max) * (height - 1)))
            grid[row][col] = marker
    lines = [f"{y_label} (max {y_max:.0f})"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width + f"> {x_label} (max {x_max:.1f})")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, (name, _) in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)

"""``aggregate`` — one scatter shard of a fleet aggregate as an engine job.

With ``workers > 1`` :func:`repro.aggregate.run_aggregate` fans the
sessions that missed the memo cache out through the parallel experiment
engine, one ``aggregate`` job per shard: the job receives its shard's
traces (as serialised JSON) plus the request wire dict, computes each
session's mergeable partial in-process, and returns the partials —
already in wire form — through its metrics.  A session that fails to
compute is reported *by name* in ``errors`` rather than failing the
whole shard, feeding the graceful-degradation (``partial=True``)
contract.

Registers as *auxiliary*: it rides on the engine's fan-out/retries but
is not part of the paper's evaluation, so plain ``repro experiments``
skips it.  Caching is disabled by the dispatcher — partial memoization
lives in the parent's artifact store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict

from .registry import ExperimentResultMixin, ExperimentSpec, register


@dataclass
class AggregateShardResult(ExperimentResultMixin):
    """One shard's per-session partials (wire form) and failures."""

    partials: Dict[str, Dict[str, Any]]
    errors: Dict[str, str]
    params: Dict[str, Any] = field(default_factory=dict)

    experiment_name: ClassVar[str] = "aggregate"

    @property
    def claim_holds(self) -> bool:
        """A shard job succeeds when every session resolved either way."""
        expected = set(self.params.get("sessions", []))
        return expected == set(self.partials) | set(self.errors)

    def metrics(self) -> Dict[str, Any]:
        """The partials themselves — what the gather step folds back."""
        return {"partials": dict(self.partials), "errors": dict(self.errors)}

    def render_text(self) -> str:
        """One-line shard summary."""
        return (
            f"aggregate shard: {len(self.partials)} partial(s), "
            f"{len(self.errors)} error(s)"
        )


def run_aggregate_shard(
    traces: Dict[str, str],
    request: Dict[str, Any],
) -> AggregateShardResult:
    """Compute one shard's partials in this process (worker entry point).

    ``traces`` maps session name -> serialised DeviceTrace JSON;
    ``request`` is the AggregateRequest wire dict.  Each session is
    computed independently so one bad trace degrades to a named error,
    not a lost shard.
    """
    from ..aggregate.compute import session_partial
    from ..aggregate.request import AggregateRequest
    from ..offline.analyzer import OfflineAnalyzer
    from ..offline.trace import DeviceTrace

    parsed = AggregateRequest.from_dict(request)
    partials: Dict[str, Dict[str, Any]] = {}
    errors: Dict[str, str] = {}
    for session in sorted(traces):
        try:
            analyzer = OfflineAnalyzer(DeviceTrace.from_json(traces[session]))
            partials[session] = session_partial(session, analyzer, parsed).to_dict()
        except Exception as exc:  # noqa: BLE001 - every failure must be named
            errors[session] = f"{type(exc).__name__}: {exc}"
    return AggregateShardResult(
        partials=partials,
        errors=errors,
        params={"sessions": sorted(traces), "op": parsed.op},
    )


register(
    ExperimentSpec(
        name="aggregate",
        runner=run_aggregate_shard,
        description="one fleet-aggregate scatter shard (repro aggregate fan-out)",
        default_params={"traces": {}, "request": {"backend": "energy"}},
        order=103,
        auxiliary=True,
    )
)

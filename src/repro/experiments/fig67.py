"""Figs. 6 & 7 — multi-collateral and hybrid-chain accounting timelines.

Fig. 6: malware binds, starts, and interrupts the *same* victim; the
victim joins the malware's energy map once and leaves only "after all
collateral attacks end".

Fig. 7: A binds B's service, B starts C's activity, C raises the screen
brightness; B, C, and the screen all appear in A's map; a user
brightness change ends only the screen element, user starts of B and C
end the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List

from ..core.links import SCREEN_TARGET, AttackLink
from ..workloads.scenarios import ScenarioRun, run_hybrid_attack, run_multi_attack
from .registry import ExperimentResultMixin, ExperimentSpec, register
from .tables import render_table


@dataclass
class Fig6Result(ExperimentResultMixin):
    """Multi-collateral attack outcome."""

    run: ScenarioRun
    links: List[AttackLink]
    victim_charged_j: float
    victim_ground_truth_j: float
    params: Dict[str, Any] = field(default_factory=dict)

    experiment_name: ClassVar[str] = "fig6"

    @property
    def union_not_sum(self) -> bool:
        """The invariant Fig. 6 is about: no double charging."""
        return self.victim_charged_j <= self.victim_ground_truth_j + 1e-9

    @property
    def claim_holds(self) -> bool:
        """Registry claim check: union, not sum."""
        return self.union_not_sum

    def metrics(self) -> Dict[str, Any]:
        """Charged vs ground-truth joules and the link count."""
        return {
            "victim_charged_j": self.victim_charged_j,
            "victim_ground_truth_j": self.victim_ground_truth_j,
            "links": len(self.links),
        }

    def render_text(self) -> str:
        """Fig. 6 as a link table plus the charge comparison."""
        rows = [
            (
                link.kind.value,
                f"{link.begin_time:.1f}s",
                "alive" if link.alive else f"{link.end_time:.1f}s",
            )
            for link in self.links
        ]
        table = render_table(
            ["attack", "begin", "end"],
            rows,
            title="Fig. 6 — multi-collateral attack on one victim",
        )
        return table + (
            f"\nvictim energy charged to malware: {self.victim_charged_j:.2f} J"
            f" (ground truth {self.victim_ground_truth_j:.2f} J; union, not sum)"
        )


def run_fig6() -> Fig6Result:
    """Run the Fig. 6 scenario."""
    run = run_multi_attack()
    malware = int(run.notes["malware_uid"])
    victim = int(run.notes["victim_uid"])
    accounting = run.eandroid.accounting
    links = [l for l in accounting.attack_log() if l.target == victim]
    return Fig6Result(
        run=run,
        links=links,
        victim_charged_j=accounting.collateral_breakdown(malware).get(victim, 0.0),
        victim_ground_truth_j=run.system.hardware.meter.energy_j(owner=victim),
    )


@dataclass
class Fig7Result(ExperimentResultMixin):
    """Hybrid-chain attack outcome."""

    run: ScenarioRun
    root_breakdown: Dict[str, float]  # label -> joules charged to A
    params: Dict[str, Any] = field(default_factory=dict)

    experiment_name: ClassVar[str] = "fig7"

    @property
    def chain_complete(self) -> bool:
        """A is charged for B, C, and the screen."""
        return {"Relayb", "Relayc", "Screen"} <= set(self.root_breakdown)

    @property
    def claim_holds(self) -> bool:
        """Registry claim check: the full chain lands in A's map."""
        return self.chain_complete

    def metrics(self) -> Dict[str, Any]:
        """The root's per-element charges."""
        return {"root_breakdown_j": dict(self.root_breakdown)}

    def render_text(self) -> str:
        """Fig. 7 as the root's map contents."""
        rows = [
            (label, f"{joules:.2f} J")
            for label, joules in sorted(
                self.root_breakdown.items(), key=lambda kv: -kv[1]
            )
        ]
        return render_table(
            ["element in A's energy map", "charged"],
            rows,
            title="Fig. 7 — hybrid attack chain A->B->C->screen",
        )


def run_fig7() -> Fig7Result:
    """Run the Fig. 7 scenario."""
    run = run_hybrid_attack()
    malware = int(run.notes["malware_uid"])
    pm = run.system.package_manager
    breakdown = {}
    for target, joules in run.eandroid.accounting.collateral_breakdown(
        malware
    ).items():
        label = "Screen" if target == SCREEN_TARGET else pm.label_for_uid(target)
        breakdown[label] = joules
    return Fig7Result(run=run, root_breakdown=breakdown)


register(
    ExperimentSpec(
        name="fig6",
        runner=run_fig6,
        description="multi-collateral accounting timeline (one victim)",
        order=4,
    )
)
register(
    ExperimentSpec(
        name="fig7",
        runner=run_fig7,
        description="hybrid attack chain A->B->C->screen accounting",
        order=5,
    )
)

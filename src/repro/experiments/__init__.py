"""One module per evaluation table/figure, plus the registry and runner.

Importing this package registers every experiment in
:data:`~repro.experiments.registry.REGISTRY`; the parallel execution
engine (:mod:`repro.exec`), the all-in-one runner, and the CLI all drive
the evaluation through that registry.
"""

from .bench import BenchJobResult, run_bench_job
from .efficiency import EfficiencyResult, run_efficiency
from .fig1 import Fig1Result, run_fig1
from .fig2 import Fig2Result, run_fig2
from .fig3 import Fig3Result, run_fig3
from .fig67 import Fig6Result, Fig7Result, run_fig6, run_fig7
from .fig8 import Fig8Result, run_fig8
from .fig9 import Fig9Result, PanelResult, run_fig9
from .fig10 import Fig10Result, run_fig10
from .fig11 import Fig11Result, run_fig11
from .aggregate import AggregateShardResult, run_aggregate_shard
from .fuzz import FuzzBatchResult, run_fuzz_batch
from .serve import ServeShardResult, run_serve_shard
from .registry import (
    REGISTRY,
    ExperimentOutcome,
    ExperimentResultMixin,
    ExperimentSpec,
    RestoredResult,
    UnknownExperimentError,
    available_names,
    get_spec,
    ordered_specs,
    register,
    resolve_selection,
)
from .runner import run_all, run_evaluation, save_outcomes

__all__ = [
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_efficiency",
    "run_fuzz_batch",
    "run_bench_job",
    "run_serve_shard",
    "run_aggregate_shard",
    "run_all",
    "run_evaluation",
    "save_outcomes",
    "Fig1Result",
    "Fig2Result",
    "Fig3Result",
    "Fig6Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "PanelResult",
    "Fig10Result",
    "Fig11Result",
    "EfficiencyResult",
    "FuzzBatchResult",
    "BenchJobResult",
    "ServeShardResult",
    "AggregateShardResult",
    "ExperimentOutcome",
    "ExperimentResultMixin",
    "ExperimentSpec",
    "RestoredResult",
    "UnknownExperimentError",
    "REGISTRY",
    "register",
    "get_spec",
    "ordered_specs",
    "available_names",
    "resolve_selection",
]

"""Table I / Fig. 10 — micro-operation overhead.

The paper's claims: (1) the E-Android *framework* (hooks only) performs
like stock Android; (2) complete E-Android adds cost only on cross-app
operations, and that cost stays "the same order of magnitude with less
than few milliseconds"; (3) same-app operations are effectively free
because they never reach the accounting module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict

from ..workloads.microbench import (
    MICRO_OPERATION_DEFINITIONS,
    MICRO_OPERATIONS,
    MicroBenchmark,
    MicrobenchResult,
)
from .registry import ExperimentResultMixin, ExperimentSpec, register
from .tables import render_table

CROSS_APP_OPERATIONS = (
    "start_other_service",
    "stop_other_service",
    "bind_other_service",
    "unbind_other_service",
    "start_other_activity",
    "change_screen",
)


@dataclass
class Fig10Result(ExperimentResultMixin):
    """The measured grid plus claim checks."""

    result: MicrobenchResult
    params: Dict[str, Any] = field(default_factory=dict)

    experiment_name: ClassVar[str] = "fig10"

    def median(self, operation: str, configuration: str) -> float:
        """Median latency (ms)."""
        return self.result.for_op(operation)[configuration].median

    @property
    def claim_holds(self) -> bool:
        """Registry claim check: both overhead claims hold."""
        return self.framework_overhead_small and self.complete_overhead_bounded

    def metrics(self) -> Dict[str, Any]:
        """The two claim components."""
        return {
            "framework_overhead_small": self.framework_overhead_small,
            "complete_overhead_bounded": self.complete_overhead_bounded,
        }

    @property
    def framework_overhead_small(self) -> bool:
        """Claim 1: hooks-only ≈ Android (within 1 ms median on every op)."""
        return all(
            abs(self.median(op, "eandroid_framework") - self.median(op, "android"))
            < 1.0
            for op in MICRO_OPERATIONS
        )

    @property
    def complete_overhead_bounded(self) -> bool:
        """Claim 2: complete E-Android within a few ms of Android."""
        return all(
            self.median(op, "eandroid_complete") - self.median(op, "android") < 5.0
            for op in MICRO_OPERATIONS
        )

    def render_table_i(self) -> str:
        """Table I (the operation definitions)."""
        rows = [
            (op, MICRO_OPERATION_DEFINITIONS[op]) for op in MICRO_OPERATIONS
        ]
        return render_table(
            ["notation", "definition"],
            rows,
            title="Table I — notations of micro operations",
        )

    def render_text(self) -> str:
        """Table I plus the Fig. 10 medians grid."""
        return self.render_table_i() + "\n\n" + self.result.render_text()


def run_fig10(iterations: int = 50) -> Fig10Result:
    """Run the 13x3 micro-benchmark grid."""
    return Fig10Result(
        result=MicroBenchmark(iterations=iterations).run_all(),
        params={"iterations": iterations},
    )


register(
    ExperimentSpec(
        name="fig10",
        runner=run_fig10,
        description="Table I / Fig. 10 micro-operation overhead grid",
        default_params={"iterations": 50},
        aliases=("fig10_table1", "table1"),
        order=8,
    )
)

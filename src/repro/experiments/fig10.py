"""Table I / Fig. 10 — micro-operation overhead.

The paper's claims: (1) the E-Android *framework* (hooks only) performs
like stock Android; (2) complete E-Android adds cost only on cross-app
operations, and that cost stays "the same order of magnitude with less
than few milliseconds"; (3) same-app operations are effectively free
because they never reach the accounting module.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.microbench import (
    MICRO_OPERATION_DEFINITIONS,
    MICRO_OPERATIONS,
    MicroBenchmark,
    MicrobenchResult,
)
from .tables import render_table

CROSS_APP_OPERATIONS = (
    "start_other_service",
    "stop_other_service",
    "bind_other_service",
    "unbind_other_service",
    "start_other_activity",
    "change_screen",
)


@dataclass
class Fig10Result:
    """The measured grid plus claim checks."""

    result: MicrobenchResult

    def median(self, operation: str, configuration: str) -> float:
        """Median latency (ms)."""
        return self.result.for_op(operation)[configuration].median

    @property
    def framework_overhead_small(self) -> bool:
        """Claim 1: hooks-only ≈ Android (within 1 ms median on every op)."""
        return all(
            abs(self.median(op, "eandroid_framework") - self.median(op, "android"))
            < 1.0
            for op in MICRO_OPERATIONS
        )

    @property
    def complete_overhead_bounded(self) -> bool:
        """Claim 2: complete E-Android within a few ms of Android."""
        return all(
            self.median(op, "eandroid_complete") - self.median(op, "android") < 5.0
            for op in MICRO_OPERATIONS
        )

    def render_table_i(self) -> str:
        """Table I (the operation definitions)."""
        rows = [
            (op, MICRO_OPERATION_DEFINITIONS[op]) for op in MICRO_OPERATIONS
        ]
        return render_table(
            ["notation", "definition"],
            rows,
            title="Table I — notations of micro operations",
        )

    def render_text(self) -> str:
        """Table I plus the Fig. 10 medians grid."""
        return self.render_table_i() + "\n\n" + self.result.render_text()


def run_fig10(iterations: int = 50) -> Fig10Result:
    """Run the 13x3 micro-benchmark grid."""
    return Fig10Result(result=MicroBenchmark(iterations=iterations).run_all())

"""The experiment registry — one :class:`ExperimentSpec` per figure/table.

Every experiment module registers itself here at import time, turning
the evaluation into a uniform, machine-drivable catalogue instead of a
hard-coded call list.  The registry is what the parallel execution
engine (:mod:`repro.exec`), the all-in-one runner, and the CLI consume:

* ``REGISTRY`` maps canonical names (``fig1`` .. ``fig11``,
  ``efficiency``) to specs;
* every result object follows a uniform protocol — ``name``, ``params``,
  ``claim_holds``, ``render_text()``, ``metrics()`` and a
  ``to_dict()``/``from_dict()`` round-trip (what the on-disk result
  cache serialises);
* :class:`ExperimentOutcome` is the flattened, JSON-ready record a
  finished experiment produces.

Typical use::

    from repro.experiments.registry import REGISTRY, ordered_specs

    spec = REGISTRY["fig10"]
    result = spec.run(iterations=10)      # a Fig10Result
    outcome = spec.outcome(result)        # flattened ExperimentOutcome
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple


class UnknownExperimentError(KeyError):
    """Raised when a selection names an experiment that is not registered."""

    def __init__(self, unknown: Sequence[str]) -> None:
        super().__init__(", ".join(unknown))
        self.unknown = list(unknown)

    def __str__(self) -> str:
        return f"unknown experiment(s): {', '.join(self.unknown)}"


# ----------------------------------------------------------------------
# uniform result protocol
# ----------------------------------------------------------------------
class ExperimentResultMixin:
    """Uniform protocol shared by every experiment's result object.

    Subclasses set ``experiment_name``, declare a ``params`` field, and
    provide ``claim_holds`` (the figure's pass/fail check),
    ``render_text()``, and optionally ``metrics()`` (the headline scalar
    numbers).  ``to_dict()``/``from_dict()`` give the JSON round-trip the
    on-disk cache relies on; the restored object is a render-equivalent
    replica (:class:`RestoredResult`), not a re-simulation.
    """

    experiment_name: ClassVar[str] = ""

    @property
    def name(self) -> str:
        """Canonical registry name of the experiment that produced this."""
        return self.experiment_name

    @property
    def claim_holds(self) -> bool:
        """Whether the paper claim this experiment reproduces holds."""
        raise NotImplementedError

    def render_text(self) -> str:
        """The figure/table as text."""
        raise NotImplementedError

    def metrics(self) -> Dict[str, Any]:
        """Headline scalar numbers (JSON-ready) for manifests and caching."""
        return {}

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot: name, params, verdict, rendered text, metrics."""
        return {
            "name": self.name,
            "params": dict(getattr(self, "params", {}) or {}),
            "claim_holds": bool(self.claim_holds),
            "text": self.render_text(),
            "metrics": self.metrics(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RestoredResult":
        """Rebuild a render-equivalent replica from :meth:`to_dict` data."""
        return RestoredResult(
            name=data["name"],
            params=dict(data.get("params", {})),
            _claim_holds=bool(data["claim_holds"]),
            text=data["text"],
            _metrics=dict(data.get("metrics", {})),
        )


@dataclass
class RestoredResult:
    """A deserialised experiment result: same protocol, no live sim objects."""

    name: str
    params: Dict[str, Any]
    _claim_holds: bool
    text: str
    _metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def claim_holds(self) -> bool:
        """The verdict recorded when the experiment actually ran."""
        return self._claim_holds

    def render_text(self) -> str:
        """The text rendered when the experiment actually ran."""
        return self.text

    def metrics(self) -> Dict[str, Any]:
        """The headline numbers recorded when the experiment actually ran."""
        return dict(self._metrics)

    def to_dict(self) -> Dict[str, Any]:
        """Round-trip back to the :meth:`ExperimentResultMixin.to_dict` shape."""
        return {
            "name": self.name,
            "params": dict(self.params),
            "claim_holds": self._claim_holds,
            "text": self.text,
            "metrics": dict(self._metrics),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RestoredResult":
        """Same constructor the mixin uses — restored results re-round-trip."""
        return ExperimentResultMixin.from_dict(data)


# ----------------------------------------------------------------------
# flattened outcome record
# ----------------------------------------------------------------------
@dataclass
class ExperimentOutcome:
    """One experiment's rendered output and pass/fail of its claim.

    The first three fields keep the historical positional constructor;
    the rest carry the execution metadata the engine and manifest use.
    """

    name: str
    claim_holds: bool
    text: str
    params: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    wall_time_s: float = 0.0
    cached: bool = False
    error: Optional[str] = None

    @property
    def status(self) -> str:
        """``REPRODUCED`` or ``DEVIATION``."""
        return "REPRODUCED" if self.claim_holds else "DEVIATION"

    def render_text(self) -> str:
        """The rendered figure/table (uniform with result objects)."""
        return self.text

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (what the cache stores)."""
        return {
            "name": self.name,
            "claim_holds": self.claim_holds,
            "text": self.text,
            "params": dict(self.params),
            "metrics": dict(self.metrics),
            "wall_time_s": self.wall_time_s,
            "cached": self.cached,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentOutcome":
        """Rebuild an outcome from :meth:`to_dict` data."""
        return cls(
            name=data["name"],
            claim_holds=bool(data["claim_holds"]),
            text=data["text"],
            params=dict(data.get("params", {})),
            metrics=dict(data.get("metrics", {})),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
            cached=bool(data.get("cached", False)),
            error=data.get("error"),
        )


def outcome_from_result(result: Any) -> ExperimentOutcome:
    """Flatten any protocol-conforming result into an outcome record."""
    return ExperimentOutcome(
        name=result.name,
        claim_holds=bool(result.claim_holds),
        text=result.render_text(),
        params=dict(getattr(result, "params", {}) or {}),
        metrics=result.metrics() if hasattr(result, "metrics") else {},
    )


# ----------------------------------------------------------------------
# specs and the registry proper
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentSpec:
    """A named, parameterised, independently-runnable experiment."""

    name: str
    runner: Callable[..., Any]
    description: str = ""
    default_params: Mapping[str, Any] = field(default_factory=dict)
    aliases: Tuple[str, ...] = ()
    order: int = 0  # position in the paper's evaluation section
    #: Auxiliary specs (e.g. the fuzz conformance batches) ride on the
    #: engine's caching/fan-out but are not part of the paper's
    #: evaluation: "run everything" selections skip them, explicit
    #: selection by name still works.
    auxiliary: bool = False

    def resolve_params(self, **overrides: Any) -> Dict[str, Any]:
        """Defaults merged with per-run overrides."""
        params = dict(self.default_params)
        params.update(overrides)
        return params

    def run(self, **overrides: Any) -> Any:
        """Run the experiment; returns its protocol-conforming result."""
        return self.runner(**self.resolve_params(**overrides))

    def outcome(self, result: Optional[Any] = None, **overrides: Any) -> ExperimentOutcome:
        """Run (unless given a result) and flatten to an outcome record."""
        if result is None:
            result = self.run(**overrides)
        return outcome_from_result(result)


REGISTRY: Dict[str, ExperimentSpec] = {}
_ALIASES: Dict[str, str] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec to :data:`REGISTRY`; re-registration replaces (idempotent)."""
    REGISTRY[spec.name] = spec
    for alias in spec.aliases:
        _ALIASES[alias] = spec.name
    return spec


def load_registry() -> Dict[str, ExperimentSpec]:
    """Import every experiment module, guaranteeing a populated registry.

    Safe to call from freshly-spawned worker processes.
    """
    import importlib

    importlib.import_module("repro.experiments")
    return REGISTRY


def get_spec(name: str) -> ExperimentSpec:
    """Look up a spec by canonical name or alias."""
    canonical = _ALIASES.get(name, name)
    try:
        return REGISTRY[canonical]
    except KeyError:
        raise UnknownExperimentError([name]) from None


def ordered_specs() -> List[ExperimentSpec]:
    """All registered specs in paper order."""
    return sorted(REGISTRY.values(), key=lambda s: (s.order, s.name))


def available_names() -> List[str]:
    """Canonical experiment names, in paper order."""
    return [spec.name for spec in ordered_specs()]


def resolve_selection(names: Optional[Sequence[str]] = None) -> List[ExperimentSpec]:
    """Turn a user selection into specs (empty = every non-auxiliary
    experiment, in paper order).

    Explicit selections keep the user's order (duplicates collapse to
    the first occurrence).

    Raises:
        UnknownExperimentError: listing every unrecognised name at once.
    """
    if not names:
        return [spec for spec in ordered_specs() if not spec.auxiliary]
    unknown = [n for n in names if _ALIASES.get(n, n) not in REGISTRY]
    if unknown:
        raise UnknownExperimentError(unknown)
    seen: Dict[str, ExperimentSpec] = {}
    for name in names:
        spec = get_spec(name)
        seen.setdefault(spec.name, spec)
    return list(seen.values())

"""Fig. 8 — sample energy-breakdown view (E-Android + revised PowerTutor).

The legitimate hybrid of §IV-B: "Bob opens the Message started by the
Contacts and sends a video taken by the Camera" — the Contacts' row must
itemise its own energy plus the Message/Camera collateral, and the
Message's row its Camera collateral.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict

from ..accounting.base import AppEnergyEntry
from ..workloads.scenarios import ScenarioRun, run_scene2
from .registry import ExperimentResultMixin, ExperimentSpec, register
from .tables import render_table


@dataclass
class Fig8Result(ExperimentResultMixin):
    """The two per-app inventories the figure shows."""

    run: ScenarioRun
    contacts: AppEnergyEntry
    message: AppEnergyEntry
    params: Dict[str, Any] = field(default_factory=dict)

    experiment_name: ClassVar[str] = "fig8"

    @property
    def breakdown_complete(self) -> bool:
        """Contacts itemises Message + Camera; Message itemises Camera."""
        return (
            {"Message", "Camera"} <= set(self.contacts.collateral_j)
            and "Camera" in self.message.collateral_j
        )

    @property
    def claim_holds(self) -> bool:
        """Registry claim check: both inventories itemise their collateral."""
        return self.breakdown_complete

    def metrics(self) -> Dict[str, Any]:
        """Totals and collateral for both panels."""
        return {
            "contacts_total_j": self.contacts.energy_j,
            "contacts_collateral_j": dict(self.contacts.collateral_j),
            "message_total_j": self.message.energy_j,
            "message_collateral_j": dict(self.message.collateral_j),
        }

    def render_text(self) -> str:
        """Fig. 8's two panels as tables."""
        panels = []
        for title, entry in (("(a) Contacts", self.contacts), ("(b) Message", self.message)):
            rows = [("own energy", f"{entry.own_energy_j:.2f} J")]
            rows += [
                (f"+ {label}", f"{joules:.2f} J")
                for label, joules in sorted(
                    entry.collateral_j.items(), key=lambda kv: -kv[1]
                )
            ]
            rows.append(("total", f"{entry.energy_j:.2f} J"))
            panels.append(
                render_table(
                    ["component", "energy"],
                    rows,
                    title=f"Fig. 8 {title} — E-Android (revised PowerTutor)",
                )
            )
        return "\n\n".join(panels)


def run_fig8() -> Fig8Result:
    """Run scene #2 under the revised-PowerTutor interface."""
    run = run_scene2(baseline="powertutor")
    contacts_uid = run.system.uid_of("com.app.contacts")
    message_uid = run.system.uid_of("com.app.message")
    interface = run.eandroid.interface
    return Fig8Result(
        run=run,
        contacts=interface.detailed_inventory(contacts_uid, run.start, run.end),
        message=interface.detailed_inventory(message_uid, run.start, run.end),
    )


register(
    ExperimentSpec(
        name="fig8",
        runner=run_fig8,
        description="sample energy-breakdown view (revised PowerTutor)",
        order=6,
    )
)

"""§VI-B energy efficiency — E-Android drains no extra battery.

"In all above experiments, the decreased energy level is the same
between Android and E-Android.  Since E-Android only takes additional
actions when collateral energy events are triggered, it will not drain
extra energy at other times."

In the simulator this is a strong property we can check exactly: we run
the same scenario twice — once bare, once with the full E-Android
monitor attached — and compare the total ground-truth energy (and the
battery level).  The monitor is pure observation, so the totals must be
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Dict, List, Tuple

from ..android import AndroidSystem, explicit
from ..apps import VICTIM_PACKAGE, build_camera_app, build_victim_app
from ..attacks import BIND_PACKAGE, build_bind_malware, build_hijack_malware
from ..attacks.hijack import HIJACK_PACKAGE
from ..core import attach_eandroid
from .registry import ExperimentResultMixin, ExperimentSpec, register
from .tables import render_table


def _scenario_hijack(system: AndroidSystem) -> None:
    system.launch_app(HIJACK_PACKAGE)
    system.run_for(60.0)


def _scenario_bind(system: AndroidSystem) -> None:
    system.launch_app(BIND_PACKAGE)
    system.press_home()
    victim = system.uid_of(VICTIM_PACKAGE)
    svc = explicit(VICTIM_PACKAGE, "VictimWorkService")
    system.am.start_service(victim, svc)
    system.run_for(1.0)
    system.am.stop_service(victim, svc)
    system.run_for(60.0)


def _scenario_idle(system: AndroidSystem) -> None:
    system.run_for(120.0)


SCENARIOS: Dict[str, Tuple[Tuple[Callable, ...], Callable[[AndroidSystem], None]]] = {
    "hijack_60s": ((build_camera_app, build_hijack_malware), _scenario_hijack),
    "bind_60s": ((build_victim_app, build_bind_malware), _scenario_bind),
    "idle_120s": ((build_victim_app,), _scenario_idle),
}


@dataclass
class EfficiencyRow:
    """Energy totals for one scenario under both configurations."""

    scenario: str
    android_j: float
    eandroid_j: float

    @property
    def identical(self) -> bool:
        """Exact energy parity."""
        return self.android_j == self.eandroid_j


@dataclass
class EfficiencyResult(ExperimentResultMixin):
    """The §VI-B comparison."""

    rows: List[EfficiencyRow]
    params: Dict[str, Any] = field(default_factory=dict)

    experiment_name: ClassVar[str] = "efficiency"

    @property
    def all_identical(self) -> bool:
        """True when every scenario drains identically."""
        return all(row.identical for row in self.rows)

    @property
    def claim_holds(self) -> bool:
        """Registry claim check: exact drain parity everywhere."""
        return self.all_identical

    def metrics(self) -> Dict[str, Any]:
        """Per-scenario joule totals for both configurations."""
        return {
            row.scenario: {"android_j": row.android_j, "eandroid_j": row.eandroid_j}
            for row in self.rows
        }

    def render_text(self) -> str:
        """The comparison as a table."""
        return render_table(
            ["scenario", "Android (J)", "E-Android (J)", "identical"],
            [
                (r.scenario, f"{r.android_j:.4f}", f"{r.eandroid_j:.4f}", r.identical)
                for r in self.rows
            ],
            title="§VI-B — energy efficiency: battery drain parity",
        )


def _run_once(builders, script, with_eandroid: bool) -> float:
    system = AndroidSystem()
    for build in builders:
        system.install(build())
    system.boot()
    if with_eandroid:
        attach_eandroid(system)
    script(system)
    return system.battery.energy_used_j()


def run_efficiency() -> EfficiencyResult:
    """Run every scenario bare and instrumented; compare the drain."""
    rows = []
    for name, (builders, script) in SCENARIOS.items():
        rows.append(
            EfficiencyRow(
                scenario=name,
                android_j=_run_once(builders, script, with_eandroid=False),
                eandroid_j=_run_once(builders, script, with_eandroid=True),
            )
        )
    return EfficiencyResult(rows=rows)


register(
    ExperimentSpec(
        name="efficiency",
        runner=run_efficiency,
        description="§VI-B energy efficiency: battery drain parity",
        order=10,
    )
)

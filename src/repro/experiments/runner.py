"""Run every experiment and emit the full evaluation report.

``python -m repro.experiments.runner`` regenerates every table and
figure of the paper's evaluation section and prints them in order; the
same entry point produced the measured numbers in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .efficiency import run_efficiency
from .fig1 import run_fig1
from .fig2 import run_fig2
from .fig3 import run_fig3
from .fig67 import run_fig6, run_fig7
from .fig8 import run_fig8
from .fig9 import run_fig9
from .fig10 import run_fig10
from .fig11 import run_fig11


@dataclass
class ExperimentOutcome:
    """One experiment's rendered output and pass/fail of its claim."""

    name: str
    claim_holds: bool
    text: str


def run_all(
    micro_iterations: int = 50, antutu_rounds: int = 40
) -> List[ExperimentOutcome]:
    """Run the whole evaluation; returns outcomes in paper order."""
    outcomes: List[ExperimentOutcome] = []

    fig1 = run_fig1()
    outcomes.append(ExperimentOutcome("fig1", fig1.camera_blamed, fig1.render_text()))

    fig2 = run_fig2()
    outcomes.append(
        ExperimentOutcome("fig2", fig2.max_deviation_pct() < 3.0, fig2.render_text())
    )

    fig3 = run_fig3()
    outcomes.append(ExperimentOutcome("fig3", fig3.ordering_holds, fig3.render_text()))

    fig6 = run_fig6()
    outcomes.append(ExperimentOutcome("fig6", fig6.union_not_sum, fig6.render_text()))

    fig7 = run_fig7()
    outcomes.append(ExperimentOutcome("fig7", fig7.chain_complete, fig7.render_text()))

    fig8 = run_fig8()
    outcomes.append(
        ExperimentOutcome("fig8", fig8.breakdown_complete, fig8.render_text())
    )

    fig9 = run_fig9()
    outcomes.append(
        ExperimentOutcome(
            "fig9",
            fig9.all_attacks_stealthy_on_android
            and fig9.all_attacks_detected_by_eandroid,
            fig9.render_text(),
        )
    )

    fig10 = run_fig10(iterations=micro_iterations)
    outcomes.append(
        ExperimentOutcome(
            "fig10_table1",
            fig10.framework_overhead_small and fig10.complete_overhead_bounded,
            fig10.render_text(),
        )
    )

    fig11 = run_fig11(rounds=antutu_rounds)
    outcomes.append(
        ExperimentOutcome("fig11", fig11.similar_performance, fig11.render_text())
    )

    efficiency = run_efficiency()
    outcomes.append(
        ExperimentOutcome(
            "efficiency", efficiency.all_identical, efficiency.render_text()
        )
    )
    return outcomes


def save_outcomes(outcomes: List[ExperimentOutcome], directory: str) -> List[str]:
    """Write each experiment's rendered output to ``directory``.

    Returns the written paths; a ``summary.txt`` records claim status.
    """
    from ..export import save_text

    written = []
    for outcome in outcomes:
        status = "REPRODUCED" if outcome.claim_holds else "DEVIATION"
        path = save_text(
            f"{directory}/{outcome.name}.txt",
            f"[{status}] {outcome.name}\n\n{outcome.text}\n",
        )
        written.append(str(path))
    summary = "\n".join(
        f"{'REPRODUCED' if o.claim_holds else 'DEVIATION':<10} {o.name}"
        for o in outcomes
    )
    written.append(str(save_text(f"{directory}/summary.txt", summary + "\n")))
    return written


def main() -> None:
    """CLI entry point."""
    import sys

    outcomes = run_all()
    if len(sys.argv) > 1:
        written = save_outcomes(outcomes, sys.argv[1])
        print(f"wrote {len(written)} artifact files to {sys.argv[1]}")
    for outcome in outcomes:
        status = "REPRODUCED" if outcome.claim_holds else "DEVIATION"
        print(f"\n{'=' * 72}\n[{status}] {outcome.name}\n{'=' * 72}")
        print(outcome.text)
    failed = [o.name for o in outcomes if not o.claim_holds]
    print(f"\n{len(outcomes) - len(failed)}/{len(outcomes)} experiment claims hold.")
    if failed:
        print("deviations:", ", ".join(failed))


if __name__ == "__main__":
    main()

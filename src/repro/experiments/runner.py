"""Run every experiment and emit the full evaluation report.

``python -m repro.experiments.runner`` regenerates every table and
figure of the paper's evaluation section and prints them in order; the
same entry point produced the measured numbers in EXPERIMENTS.md.

The heavy lifting lives in :mod:`repro.exec`: this module just maps the
registry (:data:`repro.experiments.REGISTRY`) onto the engine and keeps
the historical ``run_all()`` / ``save_outcomes()`` API as thin wrappers.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .registry import (
    ExperimentOutcome,
    UnknownExperimentError,
    resolve_selection,
)

PathLike = Union[str, Path]


def default_jobs(
    micro_iterations: int = 50,
    antutu_rounds: int = 40,
    only: Optional[Sequence[str]] = None,
) -> List[Tuple[str, Dict[str, Any]]]:
    """The evaluation as engine requests, in paper order.

    ``only`` restricts the selection (canonical names or aliases);
    the two sizing knobs map onto fig10/fig11 parameter overrides.
    """
    overrides: Dict[str, Dict[str, Any]] = {
        "fig10": {"iterations": micro_iterations},
        "fig11": {"rounds": antutu_rounds},
    }
    return [
        (spec.name, overrides.get(spec.name, {}))
        for spec in resolve_selection(only)
    ]


def run_evaluation(
    micro_iterations: int = 50,
    antutu_rounds: int = 40,
    only: Optional[Sequence[str]] = None,
    engine: Optional["ExperimentEngine"] = None,
) -> "EngineRun":
    """Run the (possibly restricted) evaluation; returns the full engine run.

    Without an explicit engine this runs serially with caching disabled —
    the exact historical ``run_all`` behaviour.
    """
    from ..exec import EngineConfig, ExperimentEngine

    if engine is None:
        engine = ExperimentEngine(EngineConfig(parallel=1, use_cache=False))
    return engine.run(default_jobs(micro_iterations, antutu_rounds, only))


def run_all(
    micro_iterations: int = 50, antutu_rounds: int = 40
) -> List[ExperimentOutcome]:
    """Run the whole evaluation; returns outcomes in paper order."""
    return run_evaluation(micro_iterations, antutu_rounds).outcomes()


def save_outcomes(
    outcomes: Sequence[ExperimentOutcome], directory: PathLike
) -> List[str]:
    """Write each experiment's rendered output to ``directory``.

    Returns the written paths; a ``summary.txt`` records claim status.
    The directory (and any missing parents) is created on demand.
    """
    from ..export import save_text

    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    written = []
    for outcome in outcomes:
        status = "REPRODUCED" if outcome.claim_holds else "DEVIATION"
        path = save_text(
            base / f"{outcome.name}.txt",
            f"[{status}] {outcome.name}\n\n{outcome.text}\n",
        )
        written.append(str(path))
    summary = "\n".join(
        f"{'REPRODUCED' if o.claim_holds else 'DEVIATION':<10} {o.name}"
        for o in outcomes
    )
    written.append(str(save_text(base / "summary.txt", summary + "\n")))
    return written


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``python -m repro.experiments.runner [DIR]``)."""
    import argparse

    from ..exec import EngineConfig, ExperimentEngine, write_manifest

    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate the full E-Android evaluation.",
    )
    parser.add_argument(
        "directory", nargs="?", default="", help="save artifacts + manifest here"
    )
    parser.add_argument(
        "--only", default="", help="comma-separated experiment names (default: all)"
    )
    parser.add_argument(
        "--parallel", type=int, default=1, help="worker processes (default: serial)"
    )
    parser.add_argument("--cache-dir", default="", help="result cache directory")
    parser.add_argument(
        "--no-cache", action="store_true", help="neither read nor write the cache"
    )
    parser.add_argument(
        "--refresh", action="store_true", help="recompute and overwrite cache entries"
    )
    args = parser.parse_args(argv)

    only = [n.strip() for n in args.only.split(",") if n.strip()] or None
    engine = ExperimentEngine(
        EngineConfig(
            parallel=args.parallel,
            cache_dir=args.cache_dir or None,
            use_cache=not args.no_cache,
            refresh=args.refresh,
        )
    )
    try:
        run = run_evaluation(only=only, engine=engine)
    except UnknownExperimentError as exc:
        parser.error(str(exc))
        return 2  # unreachable; parser.error exits
    outcomes = run.outcomes()
    if args.directory:
        written = save_outcomes(outcomes, args.directory)
        written.append(str(write_manifest(run, args.directory)))
        print(f"wrote {len(written)} artifact files to {args.directory}")
    for outcome in outcomes:
        print(f"\n{'=' * 72}\n[{outcome.status}] {outcome.name}\n{'=' * 72}")
        print(outcome.text)
    failed = [o.name for o in outcomes if not o.claim_holds]
    print(f"\n{len(outcomes) - len(failed)}/{len(outcomes)} experiment claims hold.")
    if failed:
        print("deviations:", ", ".join(failed))
    stats = run.cache_stats
    print(
        f"cache: {stats.hits} hit(s), {stats.misses} miss(es), "
        f"{stats.stores} store(s); wall time {run.total_wall_time_s:.2f}s"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

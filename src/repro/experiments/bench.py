"""``bench`` — one named benchmark as an engine-drivable experiment.

The benchmark suite (:mod:`repro.bench.suite`) submits each selected
benchmark through the parallel experiment engine as a ``bench`` job, the
same way the fuzz campaign submits seed batches — buying process
fan-out, retries, and telemetry for free.  Caching is intentionally
disabled by the suite (``use_cache=False``): a benchmark's value *is*
its fresh wall-clock samples.

Registers as *auxiliary*: it rides on the engine but is not part of the
paper's evaluation, so plain ``repro experiments`` skips it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Optional

from .registry import ExperimentResultMixin, ExperimentSpec, register


@dataclass
class BenchJobResult(ExperimentResultMixin):
    """One benchmark's raw samples and metrics."""

    bench_name: str
    kind: str
    times_s: List[float]
    bench_metrics: Dict[str, Any]
    params: Dict[str, Any] = field(default_factory=dict)

    experiment_name: ClassVar[str] = "bench"

    @property
    def claim_holds(self) -> bool:
        """A benchmark that ran to completion produced valid samples."""
        return bool(self.times_s) and all(t >= 0.0 for t in self.times_s)

    def metrics(self) -> Dict[str, Any]:
        """Everything the suite layer needs to build BENCH.json."""
        return {
            "bench": self.bench_name,
            "kind": self.kind,
            "times_s": list(self.times_s),
            "bench_metrics": dict(self.bench_metrics),
        }

    def render_text(self) -> str:
        """One-line summary (median over repeats)."""
        median = sorted(self.times_s)[len(self.times_s) // 2] if self.times_s else 0.0
        return (
            f"bench {self.bench_name} [{self.kind}]: "
            f"median {median * 1000.0:.3f} ms over {len(self.times_s)} repeat(s)"
        )


def run_bench_job(name: str = "calibration", repeats: Optional[int] = None) -> BenchJobResult:
    """Run one registered benchmark (worker entry point)."""
    from ..bench.registry import resolve_bench_selection

    spec = resolve_bench_selection([name])[0]
    effective_repeats = repeats if repeats is not None else spec.repeats
    measurement = spec.run(effective_repeats)
    return BenchJobResult(
        bench_name=spec.name,
        kind=spec.kind,
        times_s=measurement.times_s,
        bench_metrics=measurement.metrics,
        params={"name": name, "repeats": repeats},
    )


register(
    ExperimentSpec(
        name="bench",
        runner=run_bench_job,
        description="one named benchmark run (repro bench)",
        default_params={"name": "calibration", "repeats": None},
        order=100,
        auxiliary=True,
    )
)

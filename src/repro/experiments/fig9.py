"""Fig. 9 — effectiveness: Android vs E-Android on scenes and attacks.

Six panels: the two normal scenes (9a/9b) and attacks #3-#6 (9c-9f).
For each we tabulate the per-app energy under stock Android
(BatteryStats) and under E-Android, plus the key claim checks:

* under Android the malware's share is negligible (stealth);
* under E-Android the malware's total (own + collateral) reflects what
  its attack actually drained;
* attack energy is well above normal usage (9e/9f's upper vs lower).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Optional

from ..accounting.base import ProfilerReport
from ..workloads.scenarios import (
    ScenarioRun,
    run_attack3,
    run_attack4,
    run_attack5,
    run_attack6,
    run_scene1,
    run_scene2,
)
from .registry import ExperimentResultMixin, ExperimentSpec, register
from .tables import render_table


@dataclass
class PanelResult:
    """One Fig. 9 panel."""

    name: str
    run: ScenarioRun
    android: ProfilerReport
    eandroid: ProfilerReport
    malware_label: Optional[str] = None
    control: Optional["PanelResult"] = None  # 9e/9f upper halves

    @property
    def android_malware_percent(self) -> float:
        """The malware's share in the stock view (stealth check)."""
        if self.malware_label is None:
            return 0.0
        return self.android.percent_of(self.malware_label)

    @property
    def eandroid_malware_j(self) -> float:
        """The malware's total (own + collateral) under E-Android."""
        if self.malware_label is None:
            return 0.0
        return self.eandroid.energy_of(self.malware_label)

    @property
    def attack_detected(self) -> bool:
        """E-Android exposes the attack: collateral present on the malware."""
        if self.malware_label is None:
            return False
        entry = self.eandroid.entry_for(self.malware_label)
        return entry is not None and bool(entry.collateral_j)

    def render_text(self) -> str:
        """The panel as an Android-vs-E-Android table."""
        labels = []
        for report in (self.android, self.eandroid):
            for entry in report.entries:
                if entry.label not in labels:
                    labels.append(entry.label)
        rows = []
        for label in labels:
            a = self.android.entry_for(label)
            e = self.eandroid.entry_for(label)
            rows.append(
                (
                    label,
                    f"{a.energy_j:.2f} J" if a else "-",
                    f"{e.energy_j:.2f} J" if e else "-",
                    f"{sum(e.collateral_j.values()):.2f} J" if e and e.collateral_j else "",
                )
            )
        return render_table(
            ["app", "Android (A)", "E-Android (E)", "of which collateral (+)"],
            rows,
            title=f"Fig. 9 ({self.name})",
        )


@dataclass
class Fig9Result(ExperimentResultMixin):
    """All six panels."""

    panels: Dict[str, PanelResult] = field(default_factory=dict)
    params: Dict[str, Any] = field(default_factory=dict)

    experiment_name: ClassVar[str] = "fig9"

    @property
    def claim_holds(self) -> bool:
        """Registry claim check: stealthy on Android, exposed by E-Android."""
        return (
            self.all_attacks_stealthy_on_android
            and self.all_attacks_detected_by_eandroid
        )

    def metrics(self) -> Dict[str, Any]:
        """Per-attack-panel stealth share and exposed energy."""
        return {
            name: {
                "android_malware_percent": panel.android_malware_percent,
                "eandroid_malware_j": panel.eandroid_malware_j,
                "attack_detected": panel.attack_detected,
            }
            for name, panel in sorted(self.panels.items())
            if panel.malware_label is not None
        }

    @property
    def all_attacks_stealthy_on_android(self) -> bool:
        """Every attack panel: malware share < 2% under stock Android."""
        return all(
            p.android_malware_percent < 2.0
            for p in self.panels.values()
            if p.malware_label is not None
        )

    @property
    def all_attacks_detected_by_eandroid(self) -> bool:
        """Every attack panel: E-Android shows collateral on the malware."""
        return all(
            p.attack_detected
            for p in self.panels.values()
            if p.malware_label is not None
        )

    def render_text(self) -> str:
        """All panels concatenated."""
        return "\n\n".join(
            self.panels[name].render_text() for name in sorted(self.panels)
        )


def _panel(
    name: str, run: ScenarioRun, malware_label: Optional[str] = None
) -> PanelResult:
    return PanelResult(
        name=name,
        run=run,
        android=run.android_report(),
        eandroid=run.eandroid_report(),
        malware_label=malware_label,
    )


def run_fig9(attack_duration: float = 60.0) -> Fig9Result:
    """Run all six panels (plus the 9e/9f normal-usage controls)."""
    result = Fig9Result(params={"attack_duration": attack_duration})
    result.panels["9a_scene1"] = _panel("9a scene #1", run_scene1())
    result.panels["9b_scene2"] = _panel("9b scene #2", run_scene2())
    result.panels["9c_attack3"] = _panel(
        "9c attack #3", run_attack3(attack_duration), malware_label="Cleaner"
    )
    result.panels["9d_attack4"] = _panel(
        "9d attack #4", run_attack4(attack_duration), malware_label="Compass"
    )
    attack5 = _panel(
        "9e attack #5", run_attack5(attack_duration), malware_label="Torch"
    )
    attack5.control = _panel(
        "9e normal", run_attack5(attack_duration, attack=False)
    )
    result.panels["9e_attack5"] = attack5
    attack6 = _panel(
        "9f attack #6", run_attack6(attack_duration), malware_label="Qrscanner"
    )
    attack6.control = _panel(
        "9f normal", run_attack6(attack_duration, attack=False)
    )
    result.panels["9f_attack6"] = attack6
    return result


register(
    ExperimentSpec(
        name="fig9",
        runner=run_fig9,
        description="effectiveness: Android vs E-Android on scenes and attacks",
        default_params={"attack_duration": 60.0},
        order=7,
    )
)

"""Fig. 2 — the Google-Play census of attack preconditions.

Paper numbers: 1,124 apps, 28 categories; 72% contain an exported
component, 81% request WAKE_LOCK, 21% request WRITE_SETTINGS (§III-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict

from ..apps.apktool import CensusResult, run_census
from ..apps.corpus import generate_corpus
from .registry import ExperimentResultMixin, ExperimentSpec, register
from .tables import render_table

PAPER_EXPORTED_PCT = 72.0
PAPER_WAKE_LOCK_PCT = 81.0
PAPER_WRITE_SETTINGS_PCT = 21.0


@dataclass
class Fig2Result(ExperimentResultMixin):
    """Census outcome with the paper's targets alongside."""

    census: CensusResult
    params: Dict[str, Any] = field(default_factory=dict)

    experiment_name: ClassVar[str] = "fig2"

    @property
    def claim_holds(self) -> bool:
        """Registry claim check: within 3 points of the paper's numbers."""
        return self.max_deviation_pct() < 3.0

    def metrics(self) -> Dict[str, Any]:
        """The three census percentages plus the worst gap to the paper."""
        return {
            "exported_pct": self.exported_pct,
            "wake_lock_pct": self.wake_lock_pct,
            "write_settings_pct": self.write_settings_pct,
            "max_deviation_pct": self.max_deviation_pct(),
        }

    @property
    def exported_pct(self) -> float:
        """Measured share with exported components."""
        return self.census.overall.exported_pct

    @property
    def wake_lock_pct(self) -> float:
        """Measured share requesting WAKE_LOCK."""
        return self.census.overall.wake_lock_pct

    @property
    def write_settings_pct(self) -> float:
        """Measured share requesting WRITE_SETTINGS."""
        return self.census.overall.write_settings_pct

    def max_deviation_pct(self) -> float:
        """Largest absolute gap to the paper's three numbers."""
        return max(
            abs(self.exported_pct - PAPER_EXPORTED_PCT),
            abs(self.wake_lock_pct - PAPER_WAKE_LOCK_PCT),
            abs(self.write_settings_pct - PAPER_WRITE_SETTINGS_PCT),
        )

    def render_text(self) -> str:
        """Fig. 2 as a table (overall + per-category detail)."""
        rows = [
            ("exported component", f"{self.exported_pct:.1f}%", f"{PAPER_EXPORTED_PCT:.0f}%"),
            ("WAKE_LOCK", f"{self.wake_lock_pct:.1f}%", f"{PAPER_WAKE_LOCK_PCT:.0f}%"),
            ("WRITE_SETTINGS", f"{self.write_settings_pct:.1f}%", f"{PAPER_WRITE_SETTINGS_PCT:.0f}%"),
        ]
        overall = render_table(
            ["property", "measured", "paper"],
            rows,
            title=(
                f"Fig. 2 — census of {self.census.overall.total} apps in "
                f"{len(self.census.by_category)} categories"
            ),
        )
        detail_rows = [
            (
                row.category,
                row.total,
                f"{row.exported_pct:.0f}%",
                f"{row.wake_lock_pct:.0f}%",
                f"{row.write_settings_pct:.0f}%",
            )
            for row in sorted(
                self.census.by_category.values(), key=lambda r: -r.total
            )
        ]
        detail = render_table(
            ["category", "apps", "exported", "WAKE_LOCK", "WRITE_SETTINGS"],
            detail_rows,
        )
        return overall + "\n\n" + detail


def run_fig2(seed: int = 7) -> Fig2Result:
    """Generate the corpus, reverse-engineer it, and census it."""
    return Fig2Result(
        census=run_census(generate_corpus(seed=seed)), params={"seed": seed}
    )


register(
    ExperimentSpec(
        name="fig2",
        runner=run_fig2,
        description="Google-Play census of attack preconditions",
        default_params={"seed": 7},
        order=2,
    )
)

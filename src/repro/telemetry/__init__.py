"""repro.telemetry — the unified telemetry spine.

One typed event bus carries every observable event in the system: the
Android framework services publish activity/service/wakelock/screen
events, the sim kernel publishes dispatch/timer spans, the hardware
meter publishes draw changes, E-Android's accounting publishes attack
windows, and scenario runners publish phase marks.  Subscribers (the
E-Android monitor, test recorders, exporters) attach by category with
typed filters; fan-out is error-isolated and per-category counters stay
on by default.  See ``docs/OBSERVABILITY.md``.
"""

from .bus import (
    CategoryStats,
    Subscription,
    SubscriberError,
    TelemetryBus,
    TelemetryRecorder,
    TelemetrySubscriberWarning,
    capture,
)
from .events import (
    ActivityFinishedEvent,
    ActivityMoveToFrontEvent,
    ActivityStartEvent,
    ArtifactStoredEvent,
    AttackWindowBeginEvent,
    AttackWindowEndEvent,
    BrightnessChangeEvent,
    BrightnessModeChangeEvent,
    CacheCorruptionEvent,
    Category,
    DrawChangeEvent,
    FRAMEWORK_CATEGORIES,
    ForegroundChangedEvent,
    KernelDispatchEvent,
    PackageStoppedEvent,
    PhaseBeginEvent,
    PhaseEndEvent,
    QueryServedEvent,
    QueryShedEvent,
    ScreenStateEvent,
    ServiceBindEvent,
    ServiceStartEvent,
    ServiceStopEvent,
    ServiceStopSelfEvent,
    ServiceUnbindEvent,
    SessionIngestedEvent,
    TelemetryEvent,
    TimerFiredEvent,
    WakelockAcquireEvent,
    WakelockReleaseEvent,
)
from .export import (
    chrome_trace_json,
    events_to_jsonl,
    metrics_summary,
    render_metrics_text,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "ActivityFinishedEvent",
    "ActivityMoveToFrontEvent",
    "ActivityStartEvent",
    "ArtifactStoredEvent",
    "AttackWindowBeginEvent",
    "AttackWindowEndEvent",
    "BrightnessChangeEvent",
    "BrightnessModeChangeEvent",
    "CacheCorruptionEvent",
    "Category",
    "CategoryStats",
    "DrawChangeEvent",
    "FRAMEWORK_CATEGORIES",
    "ForegroundChangedEvent",
    "KernelDispatchEvent",
    "PackageStoppedEvent",
    "PhaseBeginEvent",
    "PhaseEndEvent",
    "QueryServedEvent",
    "QueryShedEvent",
    "ScreenStateEvent",
    "ServiceBindEvent",
    "ServiceStartEvent",
    "ServiceStopEvent",
    "ServiceStopSelfEvent",
    "ServiceUnbindEvent",
    "SessionIngestedEvent",
    "SubscriberError",
    "Subscription",
    "TelemetryBus",
    "TelemetryEvent",
    "TelemetryRecorder",
    "TelemetrySubscriberWarning",
    "TimerFiredEvent",
    "WakelockAcquireEvent",
    "WakelockReleaseEvent",
    "capture",
    "chrome_trace_json",
    "events_to_jsonl",
    "metrics_summary",
    "render_metrics_text",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]

"""The typed telemetry bus — single publication path for every layer.

A :class:`TelemetryBus` fans typed :class:`~repro.telemetry.events.
TelemetryEvent` instances out to subscribers.  Design points:

* **Error isolation** — one raising subscriber never prevents delivery
  to the others.  The failure is surfaced exactly once per subscriber
  (a :class:`TelemetrySubscriberWarning` naming the offender) and kept
  in :attr:`TelemetryBus.errors` for inspection.
* **Category subscriptions with typed filters** — subscribe to one
  :class:`~repro.telemetry.events.Category`, optionally narrowed to a
  single event class, or to everything (``category=None``).
* **Cheap default-on counters** — every publication updates per-category
  count/first/last statistics whether or not anyone is subscribed, so
  run summaries are free.  Hot-path producers (the sim kernel, the
  energy meter) gate full event construction on :meth:`TelemetryBus.
  wants` and fall back to :meth:`TelemetryBus.tick` so an unobserved
  device pays only a counter increment.
* **Process-wide capture** — :func:`capture` installs a bus-creation
  hook so telemetry from devices built *inside* a scenario runner can
  be recorded without threading a bus through every constructor.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Type

from .events import Category, TelemetryEvent

Subscriber = Callable[[TelemetryEvent], None]


class TelemetrySubscriberWarning(UserWarning):
    """A telemetry subscriber (or legacy observer) raised during fan-out."""


@dataclass
class CategoryStats:
    """Running per-category counters (always on)."""

    count: int = 0
    first_time: Optional[float] = None
    last_time: Optional[float] = None

    def note(self, time: float) -> None:
        """Fold one event at virtual ``time`` into the stats."""
        self.count += 1
        if self.first_time is None:
            self.first_time = time
        self.last_time = time

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "count": self.count,
            "first_time": self.first_time,
            "last_time": self.last_time,
        }


@dataclass
class SubscriberError:
    """One recorded fan-out failure."""

    subscriber: str
    event_name: str
    error: str


@dataclass
class Subscription:
    """Handle returned by :meth:`TelemetryBus.subscribe`."""

    callback: Subscriber
    category: Optional[Category]
    event_type: Optional[Type[TelemetryEvent]]
    name: str
    active: bool = True

    def matches(self, event: TelemetryEvent) -> bool:
        """Whether this subscription wants ``event``."""
        if self.event_type is not None and not isinstance(event, self.event_type):
            return False
        return True

    @property
    def label(self) -> str:
        """Human-readable subscriber name for error surfacing."""
        return self.name or getattr(
            self.callback, "__qualname__", repr(self.callback)
        )


# Hooks applied to every newly created bus (used by capture()).
_bus_hooks: List[Callable[["TelemetryBus"], None]] = []


class TelemetryBus:
    """Typed event fan-out with per-category stats and error isolation."""

    def __init__(self) -> None:
        self._by_category: Dict[Category, List[Subscription]] = {}
        self._wildcard: List[Subscription] = []
        self._stats: Dict[Category, CategoryStats] = {}
        self.errors: List[SubscriberError] = []
        self._warned: set = set()
        for hook in list(_bus_hooks):
            hook(self)

    # ------------------------------------------------------------------
    # subscriptions
    # ------------------------------------------------------------------
    def subscribe(
        self,
        callback: Subscriber,
        category: Optional[Category] = None,
        event_type: Optional[Type[TelemetryEvent]] = None,
        name: str = "",
    ) -> Subscription:
        """Attach ``callback``; returns the handle for :meth:`unsubscribe`.

        ``category=None`` receives every event; ``event_type`` narrows
        further to one event class (isinstance check, so base classes
        match their subclasses).
        """
        if category is None and event_type is not None:
            category = event_type.category
        subscription = Subscription(callback, category, event_type, name)
        if category is None:
            self._wildcard.append(subscription)
        else:
            self._by_category.setdefault(category, []).append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> bool:
        """Detach a subscription; returns whether it was attached."""
        pools = (
            [self._wildcard]
            if subscription.category is None
            else [self._by_category.get(subscription.category, [])]
        )
        for pool in pools:
            if subscription in pool:
                pool.remove(subscription)
                subscription.active = False
                return True
        return False

    def wants(self, category: Category) -> bool:
        """Whether any subscriber would receive events of ``category``.

        Hot-path producers use this to skip event construction entirely
        (calling :meth:`tick` instead), keeping default-on telemetry at
        counter-increment cost.
        """
        return bool(self._wildcard) or bool(self._by_category.get(category))

    def subscriber_count(self) -> int:
        """Total attached subscriptions."""
        return len(self._wildcard) + sum(
            len(pool) for pool in self._by_category.values()
        )

    # ------------------------------------------------------------------
    # publication
    # ------------------------------------------------------------------
    def publish(self, event: TelemetryEvent) -> None:
        """Deliver ``event`` to every matching subscriber, error-isolated."""
        category = event.category
        stats = self._stats.get(category)
        if stats is None:
            stats = self._stats[category] = CategoryStats()
        stats.note(event.time)
        subscribers = self._by_category.get(category)
        if subscribers:
            self._deliver(subscribers, event)
        if self._wildcard:
            self._deliver(self._wildcard, event)

    def tick(self, category: Category, time: float) -> None:
        """Counter-only fast path for gated hot-path producers."""
        stats = self._stats.get(category)
        if stats is None:
            stats = self._stats[category] = CategoryStats()
        stats.note(time)

    def _deliver(
        self, subscribers: List[Subscription], event: TelemetryEvent
    ) -> None:
        for subscription in list(subscribers):
            if not subscription.matches(event):
                continue
            try:
                subscription.callback(event)
            except Exception as exc:  # noqa: BLE001 - isolation by design
                self.report_subscriber_error(subscription.label, event.name, exc)

    def report_subscriber_error(
        self, subscriber: str, event_name: str, exc: Exception
    ) -> None:
        """Record a fan-out failure; warn once per subscriber.

        Also used by the legacy ``ObserverRegistry`` shim so shim and
        bus failures surface through one channel.
        """
        self.errors.append(
            SubscriberError(subscriber=subscriber, event_name=event_name, error=repr(exc))
        )
        if subscriber not in self._warned:
            self._warned.add(subscriber)
            warnings.warn(
                f"telemetry subscriber {subscriber!r} raised "
                f"{exc!r} on {event_name!r}; delivery to other "
                "subscribers continued",
                TelemetrySubscriberWarning,
                stacklevel=3,
            )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def counters(self) -> Dict[Category, CategoryStats]:
        """A copy of the per-category statistics."""
        return {
            category: CategoryStats(s.count, s.first_time, s.last_time)
            for category, s in self._stats.items()
        }

    def total_events(self) -> int:
        """Total events published (including counter-only ticks)."""
        return sum(s.count for s in self._stats.values())

    def stats_dict(self) -> Dict[str, Any]:
        """JSON-ready summary of the bus's lifetime activity."""
        return {
            "total_events": self.total_events(),
            "by_category": {
                category.value: stats.as_dict()
                for category, stats in sorted(
                    self._stats.items(), key=lambda kv: kv[0].value
                )
            },
            "subscriber_errors": len(self.errors),
        }


# ----------------------------------------------------------------------
# process-wide capture
# ----------------------------------------------------------------------
class TelemetryRecorder:
    """Records events (and tracks buses) for later export.

    Attach to a single bus with :meth:`attach`, or use :func:`capture`
    to hook every bus created while the context is open (scenario
    runners build their devices internally).
    """

    def __init__(self, record_events: bool = True) -> None:
        self.record_events = record_events
        self.events: List[TelemetryEvent] = []
        self.buses: List[TelemetryBus] = []
        self._subscriptions: List[tuple] = []

    def attach(
        self, bus: TelemetryBus, categories: Optional[List[Category]] = None
    ) -> None:
        """Subscribe to ``bus`` (all categories unless narrowed)."""
        self.buses.append(bus)
        if not self.record_events:
            return
        if categories is None:
            sub = bus.subscribe(self.events.append, name="telemetry-recorder")
            self._subscriptions.append((bus, sub))
        else:
            for category in categories:
                sub = bus.subscribe(
                    self.events.append, category=category, name="telemetry-recorder"
                )
                self._subscriptions.append((bus, sub))

    def detach(self) -> None:
        """Unsubscribe from every attached bus."""
        for bus, sub in self._subscriptions:
            bus.unsubscribe(sub)
        self._subscriptions.clear()

    def stats(self) -> Dict[str, Any]:
        """Aggregate counter summary across every tracked bus."""
        total = 0
        by_category: Dict[str, int] = {}
        errors = 0
        for bus in self.buses:
            for category, stats in bus.counters().items():
                by_category[category.value] = (
                    by_category.get(category.value, 0) + stats.count
                )
                total += stats.count
            errors += len(bus.errors)
        return {
            "total_events": total,
            "by_category": dict(sorted(by_category.items())),
            "subscriber_errors": errors,
            "buses": len(self.buses),
            "recorded_events": len(self.events),
        }


@contextmanager
def capture(
    categories: Optional[List[Category]] = None, record_events: bool = True
) -> Iterator[TelemetryRecorder]:
    """Record telemetry from every bus created inside the context.

    ``record_events=False`` only tracks buses for :meth:`TelemetryRecorder.
    stats` (used by the exec engine, where retaining every event across a
    whole evaluation would be wasteful).
    """
    recorder = TelemetryRecorder(record_events=record_events)

    def hook(bus: TelemetryBus) -> None:
        recorder.attach(bus, categories)

    _bus_hooks.append(hook)
    try:
        yield recorder
    finally:
        _bus_hooks.remove(hook)
        recorder.detach()

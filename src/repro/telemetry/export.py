"""Telemetry exporters: Chrome trace-event JSON, JSONL, metrics summary.

The Chrome trace export loads directly in Perfetto / ``chrome://tracing``:

* every telemetry event appears as an **instant** event (``ph: "i"``) on
  a per-uid track;
* collateral **attack windows** become duration events (``ph: "X"``) on
  a dedicated per-(uid, kind) track, so overlapping attacks from one
  malware (Fig. 6) render side by side instead of partially nested;
* experiment **phases** (measurement windows) become balanced ``B``/``E``
  duration events on the device timeline track.

Timestamps are virtual seconds converted to trace microseconds.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .bus import TelemetryBus, TelemetryRecorder
from .events import (
    AttackWindowBeginEvent,
    AttackWindowEndEvent,
    PhaseBeginEvent,
    PhaseEndEvent,
    TelemetryEvent,
)

PathLike = Union[str, Path]

DEVICE_PID = 1
TIMELINE_TRACK = "timeline"

_SCREEN_TARGET = -100  # matches repro.core.links.SCREEN_TARGET


def _us(seconds: float) -> int:
    """Virtual seconds -> integer trace microseconds."""
    return int(round(seconds * 1_000_000))


def _target_label(target: int, labels: Dict[int, str]) -> str:
    if target == _SCREEN_TARGET:
        return "screen"
    return labels.get(target, f"uid {target}")


class _TidAllocator:
    """Stable small-int thread ids keyed by logical track."""

    def __init__(self) -> None:
        self._tids: Dict[Any, int] = {}
        self._names: Dict[int, str] = {}

    def tid(self, key: Any, name: str) -> int:
        tid = self._tids.get(key)
        if tid is None:
            tid = len(self._tids)
            self._tids[key] = tid
            self._names[tid] = name
        return tid

    def thread_metadata(self, pid: int) -> List[Dict[str, Any]]:
        return [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
            for tid, name in sorted(self._names.items())
        ]


def to_chrome_trace(
    events: Sequence[TelemetryEvent],
    labels: Optional[Dict[int, str]] = None,
    end_time: Optional[float] = None,
    pid: int = DEVICE_PID,
    process_name: str = "device",
) -> Dict[str, Any]:
    """Build a Chrome trace-event document from recorded events.

    Args:
        events: the recorded stream (any order; sorted internally).
        labels: uid -> display label, used for track names.
        end_time: clamp for still-open attack windows / phases
            (defaults to the latest event time).
        pid: the process id to file every track under.
        process_name: the ``process_name`` metadata for ``pid``.
    """
    labels = labels or {}
    ordered = sorted(events, key=lambda e: e.time)
    if end_time is None:
        end_time = ordered[-1].time if ordered else 0.0

    tids = _TidAllocator()
    timeline_tid = tids.tid(TIMELINE_TRACK, "device timeline")
    trace_events: List[Dict[str, Any]] = []

    open_attacks: Dict[int, AttackWindowBeginEvent] = {}
    open_phases: List[Tuple[str, float]] = []

    def uid_track(uid: Optional[int]) -> int:
        if uid is None:
            return timeline_tid
        return tids.tid(("uid", uid), labels.get(uid, f"uid {uid}"))

    def attack_track(uid: int, kind: str) -> int:
        base = labels.get(uid, f"uid {uid}")
        return tids.tid(("attack", uid, kind), f"{base} · {kind} attacks")

    def emit_attack_span(begin: AttackWindowBeginEvent, end_s: float) -> None:
        trace_events.append(
            {
                "name": f"attack:{begin.kind}",
                "cat": "attack",
                "ph": "X",
                "ts": _us(begin.time),
                "dur": max(0, _us(end_s) - _us(begin.time)),
                "pid": pid,
                "tid": attack_track(begin.attacker_uid, begin.kind),
                "args": {
                    "link_id": begin.link_id,
                    "attacker": _target_label(begin.attacker_uid, labels),
                    "target": _target_label(begin.target, labels),
                    "detail": begin.detail,
                },
            }
        )

    for event in ordered:
        if isinstance(event, AttackWindowBeginEvent):
            open_attacks[event.link_id] = event
            continue
        if isinstance(event, AttackWindowEndEvent):
            begin = open_attacks.pop(event.link_id, None)
            if begin is not None:
                emit_attack_span(begin, event.time)
            continue
        if isinstance(event, PhaseBeginEvent):
            open_phases.append((event.phase, event.time))
            trace_events.append(
                {
                    "name": event.phase,
                    "cat": "phase",
                    "ph": "B",
                    "ts": _us(event.time),
                    "pid": pid,
                    "tid": timeline_tid,
                }
            )
            continue
        if isinstance(event, PhaseEndEvent):
            # Close the innermost matching open phase (LIFO discipline
            # keeps B/E nesting monotonic even with repeated names).
            for index in range(len(open_phases) - 1, -1, -1):
                if open_phases[index][0] == event.phase:
                    del open_phases[index]
                    break
            trace_events.append(
                {
                    "name": event.phase,
                    "cat": "phase",
                    "ph": "E",
                    "ts": _us(event.time),
                    "pid": pid,
                    "tid": timeline_tid,
                }
            )
            continue
        trace_events.append(
            {
                "name": event.name,
                "cat": event.category.value,
                "ph": "i",
                "s": "t",
                "ts": _us(event.time),
                "pid": pid,
                "tid": uid_track(event.driving_uid),
                "args": _json_safe(event.payload()),
            }
        )

    # Still-open windows/phases clamp to the capture end.
    for begin in open_attacks.values():
        emit_attack_span(begin, max(end_time, begin.time))
    for phase, _opened in reversed(open_phases):
        trace_events.append(
            {
                "name": phase,
                "cat": "phase",
                "ph": "E",
                "ts": _us(end_time),
                "pid": pid,
                "tid": timeline_tid,
            }
        )

    metadata: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": process_name},
        }
    ]
    metadata.extend(tids.thread_metadata(pid))
    # Stable ordering: metadata first, then by timestamp (ties keep
    # B-before-E emission order because sort is stable).
    trace_events.sort(key=lambda e: e.get("ts", -1))
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.telemetry", "event_count": len(ordered)},
    }


def chrome_trace_json(
    events: Sequence[TelemetryEvent],
    labels: Optional[Dict[int, str]] = None,
    end_time: Optional[float] = None,
    indent: Optional[int] = None,
) -> str:
    """The Chrome trace document as JSON text."""
    return json.dumps(
        to_chrome_trace(events, labels=labels, end_time=end_time), indent=indent
    )


def write_chrome_trace(
    path: PathLike,
    events: Sequence[TelemetryEvent],
    labels: Optional[Dict[int, str]] = None,
    end_time: Optional[float] = None,
) -> Path:
    """Write a Chrome trace JSON file; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        chrome_trace_json(events, labels=labels, end_time=end_time, indent=None),
        encoding="utf-8",
    )
    return target


# ----------------------------------------------------------------------
# JSONL stream
# ----------------------------------------------------------------------
def events_to_jsonl(events: Iterable[TelemetryEvent]) -> str:
    """One JSON object per line, in event order."""
    return "\n".join(json.dumps(_json_safe(e.to_dict())) for e in events)


def write_jsonl(path: PathLike, events: Iterable[TelemetryEvent]) -> Path:
    """Write the JSONL stream to a file; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    text = events_to_jsonl(events)
    target.write_text(text + ("\n" if text else ""), encoding="utf-8")
    return target


# ----------------------------------------------------------------------
# metrics summary
# ----------------------------------------------------------------------
def metrics_summary(source: Union[TelemetryBus, TelemetryRecorder]) -> Dict[str, Any]:
    """A JSON-ready counters/timings summary for a bus or recorder."""
    if isinstance(source, TelemetryRecorder):
        return source.stats()
    return source.stats_dict()


def render_metrics_text(summary: Dict[str, Any]) -> str:
    """The metrics summary as human-readable text."""
    lines = [f"telemetry: {summary.get('total_events', 0)} event(s)"]
    by_category = summary.get("by_category", {})
    for category, stats in by_category.items():
        count = stats["count"] if isinstance(stats, dict) else stats
        lines.append(f"  {category:<10} {count}")
    errors = summary.get("subscriber_errors", 0)
    if errors:
        lines.append(f"  subscriber errors: {errors}")
    return "\n".join(lines)


def _json_safe(value: Any) -> Any:
    """Best-effort conversion of payload values to JSON-ready data."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)

"""Typed telemetry events — the vocabulary of the telemetry spine.

E-Android's framework extension "record[s] all events that potentially
invoke collateral energy bugs" (§IV).  Historically this reproduction
scattered that recording across four unrelated mechanisms (a
stringly-typed observer fan-out, the core event journal, raw meter
listeners, and the exec manifest); every layer now speaks one language:
frozen dataclass events sharing a common envelope —

* ``time`` — virtual seconds on the device's kernel clock;
* ``category`` — the coarse stream the event belongs to (class-level);
* ``driving_uid`` / ``driven_uid`` — who caused / who was affected
  (``None`` when not applicable, e.g. user input or hardware events);
* ``payload()`` — the event-specific details as JSON-ready data.

Framework events additionally carry ``hook`` / ``hook_args()``, the
bridge used by the deprecated :class:`~repro.android.observers.
ObserverRegistry` shim to keep legacy ``FrameworkObserver`` subclasses
working during the migration.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from enum import Enum
from typing import Any, ClassVar, Dict, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..android.activity import ActivityRecord
    from ..android.intent import Intent
    from ..android.service import ServiceRecord


class Category(Enum):
    """Coarse event streams; subscriptions filter on these."""

    ACTIVITY = "activity"    # activity lifecycle + foreground changes
    SERVICE = "service"      # service lifecycle (start/stop/bind/unbind)
    WAKELOCK = "wakelock"    # wakelock acquire/release
    SCREEN = "screen"        # brightness, mode, panel state
    POWER = "power"          # hardware meter draw changes
    SIM = "sim"              # kernel dispatch / timer spans
    ATTACK = "attack"        # collateral attack-window begin/end
    PHASE = "phase"          # experiment / scenario phase marks
    SERVE = "serve"          # query service: ingests, serves, sheds
    STORE = "store"          # artifact store / cache health
    FAULT = "fault"          # chaos plane: injections + retry attempts
    AGGREGATE = "aggregate"  # fleet aggregation: scatter + gather


# Categories the Android framework services publish on — what the
# legacy ObserverRegistry shim bridges to FrameworkObserver hooks.
FRAMEWORK_CATEGORIES: Tuple[Category, ...] = (
    Category.ACTIVITY,
    Category.SERVICE,
    Category.WAKELOCK,
    Category.SCREEN,
)


@dataclass(frozen=True)
class TelemetryEvent:
    """Shared envelope every telemetry event carries."""

    time: float

    category: ClassVar[Category]
    name: ClassVar[str] = "event"
    #: Legacy ``FrameworkObserver`` method this event maps to (shim only).
    hook: ClassVar[Optional[str]] = None

    @property
    def driving_uid(self) -> Optional[int]:
        """The uid that caused the event (None for user/hardware)."""
        return None

    @property
    def driven_uid(self) -> Optional[int]:
        """The uid affected by the event (None when not applicable)."""
        return None

    def payload(self) -> Dict[str, Any]:
        """Event-specific details as JSON-ready data."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "time"
        }

    def hook_args(self) -> tuple:
        """Positional args for the legacy observer hook (shim only)."""
        raise NotImplementedError(f"{type(self).__name__} has no legacy hook")

    def to_dict(self) -> Dict[str, Any]:
        """The full envelope + payload as one JSON-ready mapping."""
        return {
            "t": self.time,
            "category": self.category.value,
            "name": self.name,
            "driving_uid": self.driving_uid,
            "driven_uid": self.driven_uid,
            "payload": self.payload(),
        }


# ----------------------------------------------------------------------
# activities / foreground
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ActivityStartEvent(TelemetryEvent):
    """An activity was started (explicit or resolved implicit intent)."""

    caller_uid: int
    target_uid: int
    record: "ActivityRecord"
    intent: "Intent"
    user_initiated: bool

    category: ClassVar[Category] = Category.ACTIVITY
    name: ClassVar[str] = "activity_start"
    hook: ClassVar[Optional[str]] = "on_activity_start"

    @property
    def driving_uid(self) -> Optional[int]:
        return self.caller_uid

    @property
    def driven_uid(self) -> Optional[int]:
        return self.target_uid

    def payload(self) -> Dict[str, Any]:
        return {
            "component": self.record.component_name,
            "package": self.record.package,
            "user_initiated": self.user_initiated,
        }

    def hook_args(self) -> tuple:
        return (
            self.time,
            self.caller_uid,
            self.target_uid,
            self.record,
            self.intent,
            self.user_initiated,
        )


@dataclass(frozen=True)
class ActivityMoveToFrontEvent(TelemetryEvent):
    """An existing task was reordered to the front without a start."""

    caller_uid: int
    target_uid: int
    user_initiated: bool

    category: ClassVar[Category] = Category.ACTIVITY
    name: ClassVar[str] = "activity_move_to_front"
    hook: ClassVar[Optional[str]] = "on_activity_move_to_front"

    @property
    def driving_uid(self) -> Optional[int]:
        return self.caller_uid

    @property
    def driven_uid(self) -> Optional[int]:
        return self.target_uid

    def payload(self) -> Dict[str, Any]:
        return {"user_initiated": self.user_initiated}

    def hook_args(self) -> tuple:
        return (self.time, self.caller_uid, self.target_uid, self.user_initiated)


@dataclass(frozen=True)
class ActivityFinishedEvent(TelemetryEvent):
    """An activity was destroyed."""

    record: "ActivityRecord"

    category: ClassVar[Category] = Category.ACTIVITY
    name: ClassVar[str] = "activity_finished"
    hook: ClassVar[Optional[str]] = "on_activity_finished"

    @property
    def driven_uid(self) -> Optional[int]:
        return self.record.uid

    def payload(self) -> Dict[str, Any]:
        return {
            "component": self.record.component_name,
            "package": self.record.package,
        }

    def hook_args(self) -> tuple:
        return (self.time, self.record)


@dataclass(frozen=True)
class PackageStoppedEvent(TelemetryEvent):
    """A package's process and components were force-stopped.

    Published once per ``ActivityManager.force_stop`` after every
    component of the app has been torn down — the package-level death
    notification that per-component events (activity finished, service
    stop) cannot convey on their own.
    """

    uid: int
    package: str

    category: ClassVar[Category] = Category.ACTIVITY
    name: ClassVar[str] = "package_stopped"
    hook: ClassVar[Optional[str]] = "on_package_stopped"

    @property
    def driven_uid(self) -> Optional[int]:
        return self.uid

    def hook_args(self) -> tuple:
        return (self.time, self.uid, self.package)


@dataclass(frozen=True)
class ForegroundChangedEvent(TelemetryEvent):
    """The foreground app changed.

    ``cause`` is one of ``start``, ``finish``, ``home``, ``back``,
    ``move_front``, ``screen_off``; ``initiator_uid`` is who drove the
    change (None for direct user input).
    """

    previous_uid: Optional[int]
    new_uid: Optional[int]
    cause: str
    initiator_uid: Optional[int]

    category: ClassVar[Category] = Category.ACTIVITY
    name: ClassVar[str] = "foreground_changed"
    hook: ClassVar[Optional[str]] = "on_foreground_changed"

    @property
    def driving_uid(self) -> Optional[int]:
        return self.initiator_uid

    @property
    def driven_uid(self) -> Optional[int]:
        return self.new_uid

    def hook_args(self) -> tuple:
        return (
            self.time,
            self.previous_uid,
            self.new_uid,
            self.cause,
            self.initiator_uid,
        )


# ----------------------------------------------------------------------
# services
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ServiceEvent(TelemetryEvent):
    """Common shape of the caller->target service events."""

    caller_uid: int
    target_uid: int
    record: "ServiceRecord"

    category: ClassVar[Category] = Category.SERVICE

    @property
    def driving_uid(self) -> Optional[int]:
        return self.caller_uid

    @property
    def driven_uid(self) -> Optional[int]:
        return self.target_uid

    def payload(self) -> Dict[str, Any]:
        return {
            "component": self.record.component_name,
            "package": self.record.package,
        }

    def hook_args(self) -> tuple:
        return (self.time, self.caller_uid, self.target_uid, self.record)


@dataclass(frozen=True)
class ServiceStartEvent(_ServiceEvent):
    """startService() reached a service."""

    name: ClassVar[str] = "service_start"
    hook: ClassVar[Optional[str]] = "on_service_start"


@dataclass(frozen=True)
class ServiceStopEvent(_ServiceEvent):
    """stopService() was called."""

    name: ClassVar[str] = "service_stop"
    hook: ClassVar[Optional[str]] = "on_service_stop"


@dataclass(frozen=True)
class ServiceBindEvent(_ServiceEvent):
    """bindService() created a connection."""

    name: ClassVar[str] = "service_bind"
    hook: ClassVar[Optional[str]] = "on_service_bind"


@dataclass(frozen=True)
class ServiceUnbindEvent(_ServiceEvent):
    """A connection was unbound (explicitly or by client death)."""

    name: ClassVar[str] = "service_unbind"
    hook: ClassVar[Optional[str]] = "on_service_unbind"


@dataclass(frozen=True)
class ServiceStopSelfEvent(TelemetryEvent):
    """The service stopped itself."""

    record: "ServiceRecord"

    category: ClassVar[Category] = Category.SERVICE
    name: ClassVar[str] = "service_stop_self"
    hook: ClassVar[Optional[str]] = "on_service_stop_self"

    @property
    def driving_uid(self) -> Optional[int]:
        return self.record.uid

    @property
    def driven_uid(self) -> Optional[int]:
        return self.record.uid

    def payload(self) -> Dict[str, Any]:
        return {
            "component": self.record.component_name,
            "package": self.record.package,
        }

    def hook_args(self) -> tuple:
        return (self.time, self.record)


# ----------------------------------------------------------------------
# wakelocks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WakelockAcquireEvent(TelemetryEvent):
    """A wakelock was acquired."""

    uid: int
    lock_type: str
    tag: str

    category: ClassVar[Category] = Category.WAKELOCK
    name: ClassVar[str] = "wakelock_acquire"
    hook: ClassVar[Optional[str]] = "on_wakelock_acquire"

    @property
    def driving_uid(self) -> Optional[int]:
        return self.uid

    def hook_args(self) -> tuple:
        return (self.time, self.uid, self.lock_type, self.tag)


@dataclass(frozen=True)
class WakelockReleaseEvent(TelemetryEvent):
    """A wakelock was released (possibly by link-to-death)."""

    uid: int
    lock_type: str
    tag: str
    by_death: bool

    category: ClassVar[Category] = Category.WAKELOCK
    name: ClassVar[str] = "wakelock_release"
    hook: ClassVar[Optional[str]] = "on_wakelock_release"

    @property
    def driving_uid(self) -> Optional[int]:
        return self.uid

    def hook_args(self) -> tuple:
        return (self.time, self.uid, self.lock_type, self.tag, self.by_death)


# ----------------------------------------------------------------------
# screen
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BrightnessChangeEvent(TelemetryEvent):
    """Effective brightness changed. ``via``: settings/systemui/window/auto."""

    caller_uid: Optional[int]
    old_level: int
    new_level: int
    via: str

    category: ClassVar[Category] = Category.SCREEN
    name: ClassVar[str] = "brightness_change"
    hook: ClassVar[Optional[str]] = "on_brightness_change"

    @property
    def driving_uid(self) -> Optional[int]:
        return self.caller_uid

    def hook_args(self) -> tuple:
        return (self.time, self.caller_uid, self.old_level, self.new_level, self.via)


@dataclass(frozen=True)
class BrightnessModeChangeEvent(TelemetryEvent):
    """Auto/manual brightness mode toggled."""

    caller_uid: Optional[int]
    manual: bool
    via: str

    category: ClassVar[Category] = Category.SCREEN
    name: ClassVar[str] = "brightness_mode_change"
    hook: ClassVar[Optional[str]] = "on_brightness_mode_change"

    @property
    def driving_uid(self) -> Optional[int]:
        return self.caller_uid

    def hook_args(self) -> tuple:
        return (self.time, self.caller_uid, self.manual, self.via)


@dataclass(frozen=True)
class ScreenStateEvent(TelemetryEvent):
    """The panel turned on or off."""

    is_on: bool

    category: ClassVar[Category] = Category.SCREEN
    name: ClassVar[str] = "screen_state"
    hook: ClassVar[Optional[str]] = "on_screen_state"

    def hook_args(self) -> tuple:
        return (self.time, self.is_on)


# ----------------------------------------------------------------------
# power (hardware meter)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DrawChangeEvent(TelemetryEvent):
    """One channel's instantaneous draw changed (meter breakpoint)."""

    owner: int
    component: str
    power_mw: float

    category: ClassVar[Category] = Category.POWER
    name: ClassVar[str] = "draw_change"

    @property
    def driving_uid(self) -> Optional[int]:
        return self.owner if self.owner >= 0 else None


# ----------------------------------------------------------------------
# sim kernel
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KernelDispatchEvent(TelemetryEvent):
    """One kernel event callback ran (a dispatch span).

    ``wall_us`` is the host wall-clock cost of the callback; ``time`` is
    the virtual instant it fired at.  Only published while something is
    subscribed to :data:`Category.SIM` (hot path, gated by
    ``TelemetryBus.wants``).
    """

    event_name: str
    seq: int
    wall_us: float

    category: ClassVar[Category] = Category.SIM
    name: ClassVar[str] = "kernel_dispatch"


@dataclass(frozen=True)
class TimerFiredEvent(TelemetryEvent):
    """A repeating timer fired."""

    timer_name: str
    fire_count: int
    interval_s: float

    category: ClassVar[Category] = Category.SIM
    name: ClassVar[str] = "timer_fired"


# ----------------------------------------------------------------------
# attack windows (E-Android accounting)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AttackWindowBeginEvent(TelemetryEvent):
    """An attack link opened (collateral window begins)."""

    kind: str
    attacker_uid: int
    target: int
    link_id: int
    detail: str = ""

    category: ClassVar[Category] = Category.ATTACK
    name: ClassVar[str] = "attack_window_begin"

    @property
    def driving_uid(self) -> Optional[int]:
        return self.attacker_uid

    @property
    def driven_uid(self) -> Optional[int]:
        return self.target if self.target >= 0 else None


@dataclass(frozen=True)
class AttackWindowEndEvent(TelemetryEvent):
    """An attack link closed (collateral window ends)."""

    kind: str
    attacker_uid: int
    target: int
    link_id: int
    duration_s: float = 0.0

    category: ClassVar[Category] = Category.ATTACK
    name: ClassVar[str] = "attack_window_end"

    @property
    def driving_uid(self) -> Optional[int]:
        return self.attacker_uid

    @property
    def driven_uid(self) -> Optional[int]:
        return self.target if self.target >= 0 else None


# ----------------------------------------------------------------------
# query service (repro.serve)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SessionIngestedEvent(TelemetryEvent):
    """A trace became a queryable session in the profiling service.

    ``time`` is the trace's ``captured_at`` (the service has no device
    clock of its own); ``source`` records where the trace came from
    (file path, stream name, or ``corpus``).
    """

    session: str
    source: str
    channels: int
    links: int

    category: ClassVar[Category] = Category.SERVE
    name: ClassVar[str] = "session_ingested"


@dataclass(frozen=True)
class QueryServedEvent(TelemetryEvent):
    """One report query was answered (from cache or computed)."""

    session: str
    backend: str
    status: str
    cached: bool
    latency_us: float

    category: ClassVar[Category] = Category.SERVE
    name: ClassVar[str] = "query_served"


@dataclass(frozen=True)
class QueryShedEvent(TelemetryEvent):
    """One query was refused by admission control (queue full)."""

    session: str
    backend: str
    queue_depth: int

    category: ClassVar[Category] = Category.SERVE
    name: ClassVar[str] = "query_shed"


@dataclass(frozen=True)
class ConnectionOpenedEvent(TelemetryEvent):
    """A TCP client connected to the network front-end.

    ``time`` is always 0.0 — the transport has no device clock;
    ``open_connections`` is the count *after* admitting this one.
    """

    peer: str
    open_connections: int

    category: ClassVar[Category] = Category.SERVE
    name: ClassVar[str] = "connection_opened"


@dataclass(frozen=True)
class ConnectionClosedEvent(TelemetryEvent):
    """A TCP connection finished (EOF, disconnect, or shutdown).

    ``lines`` / ``responses`` are that connection's lifetime counts —
    per-connection accounting for the transport-level invariants.
    """

    peer: str
    lines: int
    responses: int

    category: ClassVar[Category] = Category.SERVE
    name: ClassVar[str] = "connection_closed"


@dataclass(frozen=True)
class QueryDeadlineExceededEvent(TelemetryEvent):
    """A network query missed its deadline and was answered ``error``."""

    session: str
    backend: str
    deadline_s: float

    category: ClassVar[Category] = Category.SERVE
    name: ClassVar[str] = "query_deadline_exceeded"


# ----------------------------------------------------------------------
# fleet aggregation (repro.aggregate)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AggregateIssuedEvent(TelemetryEvent):
    """A fleet aggregate started its scatter phase.

    ``time`` is always 0.0 — the aggregation layer has no device clock;
    ``sessions`` is how many sessions the request's selector matched.
    """

    backend: str
    op: str
    group_by: str
    sessions: int

    category: ClassVar[Category] = Category.AGGREGATE
    name: ClassVar[str] = "aggregate_issued"


@dataclass(frozen=True)
class AggregatePartialEvent(TelemetryEvent):
    """One session's partial became available to the gather step.

    ``memoized`` distinguishes a store memo hit from a fresh compute —
    the signal the re-aggregation-only-recomputes-dirty-sessions
    contract is monitored by.
    """

    session: str
    memoized: bool

    category: ClassVar[Category] = Category.AGGREGATE
    name: ClassVar[str] = "aggregate_partial"


@dataclass(frozen=True)
class AggregateMergedEvent(TelemetryEvent):
    """The gather step finished reducing one aggregate.

    A ``partial=True`` merge means ``missing`` sessions dropped out of
    the answer (the graceful-degradation path) — never silently.
    """

    op: str
    merged: int
    missing: int
    partial: bool

    category: ClassVar[Category] = Category.AGGREGATE
    name: ClassVar[str] = "aggregate_merged"


# ----------------------------------------------------------------------
# artifact store / cache health (repro.store, repro.exec.cache)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArtifactStoredEvent(TelemetryEvent):
    """An artifact entered the store (new blob or idempotent re-put).

    ``time`` is always 0.0 — the store has no device clock; host
    timestamps live in the artifact manifest's ``created_at``.
    """

    digest: str
    kind: str
    codec: str
    size: int

    category: ClassVar[Category] = Category.STORE
    name: ClassVar[str] = "artifact_stored"


@dataclass(frozen=True)
class CacheCorruptionEvent(TelemetryEvent):
    """A cache/store entry existed but could not be read back.

    Published when a lookup finds an entry on disk that is truncated,
    garbled, or fails its digest check.  The entry degrades to a miss
    (the result is recomputed), but the bad path is named so operators
    see the corruption instead of a silent cache-hit-rate drop.
    """

    path: str
    reason: str

    category: ClassVar[Category] = Category.STORE
    name: ClassVar[str] = "cache_corruption"


# ----------------------------------------------------------------------
# chaos plane (repro.faults)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultInjectedEvent(TelemetryEvent):
    """The armed fault plane fired one fault at an injection site.

    ``time`` is always 0.0 — the plane has no device clock; ``count``
    is the running total of this ``site:kind`` pair within the plane,
    so a recorder can reconstruct the full injection sequence.
    """

    site: str
    kind: str
    count: int

    category: ClassVar[Category] = Category.FAULT
    name: ClassVar[str] = "fault_injected"


@dataclass(frozen=True)
class RetryAttemptEvent(TelemetryEvent):
    """A retry policy is about to back off and try a site again.

    Published once per *retry* (never for a first-attempt success), so
    a quiet system emits nothing.
    """

    site: str
    attempt: int
    delay_s: float
    error: str

    category: ClassVar[Category] = Category.FAULT
    name: ClassVar[str] = "retry_attempt"


# ----------------------------------------------------------------------
# experiment phases
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PhaseBeginEvent(TelemetryEvent):
    """An experiment/scenario phase opened (e.g. a measurement window)."""

    phase: str

    category: ClassVar[Category] = Category.PHASE
    name: ClassVar[str] = "phase_begin"


@dataclass(frozen=True)
class PhaseEndEvent(TelemetryEvent):
    """An experiment/scenario phase closed."""

    phase: str

    category: ClassVar[Category] = Category.PHASE
    name: ClassVar[str] = "phase_end"

"""Collateral-energy suspect ranking.

The paper is explicit that collateral energy is not proof of malice —
"it is entirely possible that an app consuming much collateral energy is
still welcomed by mobile users.  From the perspective of energy
profiling, the key is to accurately and comprehensively profile the
energy consumption so that users can understand where energy goes and
make their own decisions" (§IV).  This module is that decision aid: it
ranks apps by collateral burden and annotates each with the evidence a
user (or an automated policy) would act on — how much, through which
mechanisms, and whether any of it was user-initiated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from .accounting import EAndroidAccounting
from .links import SCREEN_TARGET

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..android.framework import AndroidSystem


@dataclass
class Suspicion:
    """One app's collateral dossier over a report window."""

    uid: int
    label: str
    collateral_j: float
    own_j: float
    device_total_j: float
    mechanisms: List[str] = field(default_factory=list)
    targets: Dict[str, float] = field(default_factory=dict)
    live_attacks: int = 0

    @property
    def collateral_share(self) -> float:
        """Collateral as a fraction of whole-device energy."""
        if self.device_total_j <= 0:
            return 0.0
        return self.collateral_j / self.device_total_j

    @property
    def stealth_ratio(self) -> float:
        """Hidden energy per visible joule (∞-ish when own ≈ 0).

        A high ratio is the signature of a collateral energy attack:
        the app drains much while *showing* little — exactly how the
        paper's malware sidesteps the battery interface.
        """
        return self.collateral_j / max(self.own_j, 1e-9)

    def render_text(self) -> str:
        """One dossier as text."""
        lines = [
            f"{self.label} (uid {self.uid}): {self.collateral_j:.2f} J collateral "
            f"({100 * self.collateral_share:.1f}% of device), "
            f"{self.own_j:.2f} J own, {self.live_attacks} live attack(s)",
            f"  mechanisms: {', '.join(self.mechanisms) or '-'}",
        ]
        for target, joules in sorted(self.targets.items(), key=lambda kv: -kv[1]):
            lines.append(f"  <- {target}: {joules:.2f} J")
        return "\n".join(lines)


class CollateralEnergyDetector:
    """Ranks apps by collateral burden and flags heavy offenders."""

    def __init__(
        self,
        system: "AndroidSystem",
        accounting: EAndroidAccounting,
        min_collateral_j: float = 1.0,
        min_share: float = 0.05,
    ) -> None:
        self._system = system
        self._accounting = accounting
        self.min_collateral_j = min_collateral_j
        self.min_share = min_share

    def rank_suspects(
        self, start: float = 0.0, end: Optional[float] = None
    ) -> List[Suspicion]:
        """Every app with collateral charge, heaviest first."""
        meter = self._system.hardware.meter
        pm = self._system.package_manager
        window_end = self._system.kernel.now if end is None else end
        device_total = meter.total_energy_j(start=start, end=window_end)
        suspicions: List[Suspicion] = []
        for host in self._accounting.hosts():
            breakdown = self._accounting.collateral_breakdown(host, start, window_end)
            if not breakdown:
                continue
            kinds = sorted(
                {
                    link.kind.value
                    for link in self._accounting.attack_log()
                    if link.driving_uid == host
                }
            )
            targets = {
                (
                    "Screen"
                    if target == SCREEN_TARGET
                    else pm.label_for_uid(target)
                ): joules
                for target, joules in breakdown.items()
            }
            suspicions.append(
                Suspicion(
                    uid=host,
                    label=pm.label_for_uid(host),
                    collateral_j=sum(breakdown.values()),
                    own_j=meter.energy_j(owner=host, start=start, end=window_end),
                    device_total_j=device_total,
                    mechanisms=kinds,
                    targets=targets,
                    live_attacks=len(self._accounting.graph.live_from(host)),
                )
            )
        suspicions.sort(key=lambda s: s.collateral_j, reverse=True)
        return suspicions

    def flag(
        self, start: float = 0.0, end: Optional[float] = None
    ) -> List[Suspicion]:
        """Suspects exceeding both the absolute and share thresholds."""
        return [
            suspicion
            for suspicion in self.rank_suspects(start, end)
            if suspicion.collateral_j >= self.min_collateral_j
            and suspicion.collateral_share >= self.min_share
        ]

    def render_text(self, start: float = 0.0, end: Optional[float] = None) -> str:
        """The ranking as text."""
        suspects = self.rank_suspects(start, end)
        if not suspects:
            return "no collateral energy recorded"
        return "\n".join(s.render_text() for s in suspects)

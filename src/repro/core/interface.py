"""E-Android's revised battery interface.

The third of the paper's three components.  It wraps either baseline
profiler ("We include the collateral attack modeling features to both
Android official battery interface and PowerTutor", §V) and superimposes
each app's collateral energy onto its row:

* apps rank "by total energy consumptions including collateral energy";
* each row keeps "a detailed inventory specifying contributions of all
  attack related apps", with "the apps' original energy ... also listed"
  (§IV-C / Fig. 8).

Percentages are computed against the device's ground-truth total for the
window, so a malware row can legitimately show a large share while the
direct consumers still appear — collateral energy is *superimposed*, not
moved (§IV-B).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..accounting.base import AppEnergyEntry, EnergyProfiler, ProfilerReport, ReportCache
from .accounting import EAndroidAccounting
from .links import SCREEN_TARGET

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..android.framework import AndroidSystem

SCREEN_SOURCE_LABEL = "Screen"


class EAndroidBatteryInterface(EnergyProfiler):
    """Baseline profiler + collateral superimposition."""

    backend = "eandroid"

    def __init__(
        self,
        system: "AndroidSystem",
        baseline: EnergyProfiler,
        accounting: EAndroidAccounting,
    ) -> None:
        self._system = system
        self._baseline = baseline
        self._accounting = accounting
        self._cache = ReportCache()
        self.name = f"E-Android (revised {baseline.name})"

    def _version(self) -> tuple:
        """Everything the revised view depends on: the meter's append
        epoch, the foreground timeline (for the PowerTutor baseline),
        the collateral window set, and the charge policy."""
        return (
            self._system.hardware.meter.epoch,
            self._system.am.timeline.version,
            self._accounting.maps.version,
            self._accounting._policy_token,
        )

    def report(self, start: float = 0.0, end: Optional[float] = None) -> ProfilerReport:
        """Baseline view with collateral charges added to driving apps.

        Incremental: the finalized superimposed rows are memoized on
        :meth:`_version`, so an unchanged window replays the cached
        entries; on a miss the baseline rows and every unchanged
        collateral charge still come from the lower-level caches.
        """
        window_end = self._system.kernel.now if end is None else end
        version = self._version()
        cached = self._cache.get(version, start, window_end)
        if cached is not None:
            return ProfilerReport(
                profiler=self.name, start=start, end=window_end, entries=cached
            )
        report = self._baseline.report(start, window_end)
        report.profiler = self.name
        pm = self._system.package_manager

        for host in self._accounting.hosts():
            breakdown = self._accounting.collateral_breakdown(host, start, window_end)
            if not breakdown:
                continue
            entry = report.entry_for_uid(host)
            if entry is None:
                entry = AppEnergyEntry(
                    uid=host, label=pm.label_for_uid(host), energy_j=0.0
                )
                report.entries.append(entry)
            for target, joules in breakdown.items():
                label = (
                    SCREEN_SOURCE_LABEL
                    if target == SCREEN_TARGET
                    else pm.label_for_uid(target)
                )
                entry.collateral_j[label] = entry.collateral_j.get(label, 0.0) + joules
                entry.energy_j += joules

        # Re-rank including collateral; percentages against ground truth.
        report.entries.sort(key=lambda e: e.energy_j, reverse=True)
        ground_truth = self._system.hardware.meter.total_energy_j(
            start=start, end=window_end
        )
        for entry in report.entries:
            entry.percent = (
                100.0 * entry.energy_j / ground_truth if ground_truth > 0 else 0.0
            )
        self._cache.store(version, start, window_end, report.entries)
        return report

    def detailed_inventory(
        self, uid: int, start: float = 0.0, end: Optional[float] = None
    ) -> AppEnergyEntry:
        """One app's row with its full collateral breakdown (Fig. 8)."""
        report = self.report(start, end)
        entry = report.entry_for_uid(uid)
        if entry is None:
            entry = AppEnergyEntry(
                uid=uid,
                label=self._system.package_manager.label_for_uid(uid),
                energy_j=0.0,
            )
        return entry

    def component_inventory(
        self, uid: int, start: float = 0.0, end: Optional[float] = None
    ) -> dict:
        """eprof-style hardware-component split of an app's *own* energy.

        The related-work profilers the paper builds on (eprof, AppScope)
        decompose a single app's energy by component; E-Android keeps
        that view for the "own energy" part of a row, alongside the
        collateral inventory.
        """
        window_end = self._system.kernel.now if end is None else end
        return self._system.hardware.meter.energy_by_component(
            uid, start=start, end=window_end
        )

    def render_app_detail(
        self, uid: int, start: float = 0.0, end: Optional[float] = None
    ) -> str:
        """Full drill-down for one app: components + collateral."""
        entry = self.detailed_inventory(uid, start, end)
        lines = [f"=== {entry.label} (uid {uid}) — E-Android detail ==="]
        components = self.component_inventory(uid, start, end)
        if components:
            lines.append("  own energy by component:")
            for component, joules in sorted(
                components.items(), key=lambda kv: -kv[1]
            ):
                lines.append(f"    {component:<8} {joules:8.2f} J")
        else:
            lines.append("  own energy: none recorded")
        if entry.collateral_j:
            lines.append("  collateral energy by source:")
            for source, joules in sorted(
                entry.collateral_j.items(), key=lambda kv: -kv[1]
            ):
                lines.append(f"    {source:<8} {joules:8.2f} J")
        lines.append(f"  total: {entry.energy_j:.2f} J")
        return "\n".join(lines)

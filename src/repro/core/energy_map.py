"""Collateral energy maps.

"E-Android maintains a collateral energy map for fine grained collateral
energy accounting" (§I): for each app, a map whose elements are the
apps/screen currently (or previously) charged to it, each with the exact
time windows during which the charge accrues.

The map layer is deliberately dumb about *why* windows open and close —
that is the link graph's job.  :class:`CollateralMapSet.sync` diffs the
reachability of every host against the currently-open elements and
opens/closes windows accordingly, which realises Algorithm 1's
``AddElement`` / attack-state updates including chain propagation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .links import LinkGraph


@dataclass
class ElementWindow:
    """Charge windows for one (host, target) map element."""

    target: int
    closed: List[Tuple[float, float]] = field(default_factory=list)
    open_since: Optional[float] = None
    #: Monotonic change counter (bumped on open/close); keys the
    #: accounting layer's per-element charge memoization.
    version: int = 0

    @property
    def is_open(self) -> bool:
        """Whether the element is currently accruing charge."""
        return self.open_since is not None

    def open(self, time: float) -> bool:
        """Start accruing (no-op while already open)."""
        if self.open_since is None:
            self.open_since = time
            self.version += 1
            return True
        return False

    def close(self, time: float) -> bool:
        """Stop accruing; the window is archived."""
        if self.open_since is not None:
            if time > self.open_since:
                self.closed.append((self.open_since, time))
            self.open_since = None
            self.version += 1
            return True
        return False

    def intervals(self, until: float) -> List[Tuple[float, float]]:
        """All windows, the open one truncated at ``until``."""
        result = list(self.closed)
        if self.open_since is not None and until > self.open_since:
            result.append((self.open_since, until))
        return result

    def total_duration(self, until: float) -> float:
        """Summed window length."""
        return sum(end - start for start, end in self.intervals(until))

    def clipped_intervals(
        self, start: float, end: float
    ) -> List[Tuple[float, float]]:
        """Windows intersected with [start, end)."""
        clipped = []
        for seg_start, seg_end in self.intervals(end):
            lo, hi = max(seg_start, start), min(seg_end, end)
            if hi > lo:
                clipped.append((lo, hi))
        return clipped


class CollateralEnergyMap:
    """One app's map: target -> charge windows."""

    def __init__(self, host_uid: int) -> None:
        self.host_uid = host_uid
        self._elements: Dict[int, ElementWindow] = {}

    def element(self, target: int) -> ElementWindow:
        """The window record for a target (created on demand)."""
        window = self._elements.get(target)
        if window is None:
            window = ElementWindow(target=target)
            self._elements[target] = window
        return window

    def open_targets(self) -> Set[int]:
        """Targets currently accruing charge."""
        return {t for t, w in self._elements.items() if w.is_open}

    def all_targets(self) -> Set[int]:
        """Every target that ever appeared in the map."""
        return set(self._elements)

    def items(self) -> Iterable[Tuple[int, ElementWindow]]:
        """(target, window) pairs."""
        return self._elements.items()

    def __contains__(self, target: int) -> bool:
        return target in self._elements

    def __len__(self) -> int:
        return len(self._elements)


class CollateralMapSet:
    """All apps' collateral energy maps, kept in lockstep with the links."""

    def __init__(self) -> None:
        self._maps: Dict[int, CollateralEnergyMap] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic counter of window open/close events across all maps.

        Keys the E-Android interface's report cache: an unchanged
        version (plus an unchanged meter epoch) means every collateral
        charge is bit-identical to the previous snapshot of the window.
        """
        return self._version

    def map_for(self, host_uid: int) -> CollateralEnergyMap:
        """The map of one host (created on demand)."""
        existing = self._maps.get(host_uid)
        if existing is None:
            existing = CollateralEnergyMap(host_uid)
            self._maps[host_uid] = existing
        return existing

    def hosts(self) -> Set[int]:
        """Every uid that has (or had) a non-empty map."""
        return {uid for uid, m in self._maps.items() if len(m)}

    def maps_containing(self, target: int) -> List[CollateralEnergyMap]:
        """Maps whose *open* elements include ``target`` (Algorithm 1's Mp)."""
        return [
            m for m in self._maps.values() if target in m.open_targets()
        ]

    def sync(self, now: float, graph: LinkGraph) -> None:
        """Diff reachability against open elements for every host.

        For each host: targets newly reachable over live links open a
        window; open targets no longer reachable close theirs.  Running
        this after every link begin/end implements Algorithm 1 — the
        parent-map additions (lines 8-10) and the service back-
        propagation (lines 11-15) are both just reachability.
        """
        for host in graph.hosts():
            host_map = self.map_for(host)
            reachable = graph.reachable_from(host)
            open_now = host_map.open_targets()
            for target in reachable - open_now:
                if host_map.element(target).open(now):
                    self._version += 1
            for target in open_now - reachable:
                if host_map.element(target).close(now):
                    self._version += 1

"""The E-Android framework monitor.

The first of the paper's three components: a framework extension that
observes every potentially-collateral event, journals it, and drives the
attack-lifecycle state machines of Fig. 5, opening/closing attack links
in the accounting module:

* Fig. 5a (activity): a start by another app opens a window that lasts
  until the driven app is started again or moved to front;
* Fig. 5b (interrupting activity): an app forcing the foreground app to
  background opens a window until the victim is back in front;
* Fig. 5c (service): start..stop/stopSelf and bind..unbind windows;
* Fig. 5d (screen): brightness raised in manual mode / auto→manual
  switch, ended by the attacker decreasing it, a SystemUI (user) change,
  or a switch back to auto;
* Fig. 5e (wakelock): a screen wakelock acquired while not foreground,
  or held while the app leaves the foreground, ended on release (or when
  the holder legitimately returns to the foreground).

System apps (launcher, SystemUI, resolver) never *drive* attacks and are
never charged as *targets* — but their events are still journaled
(§IV-A).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ..android.observers import FrameworkObserver
from ..android.power_manager import SCREEN_LOCK_TYPES
from ..telemetry import FRAMEWORK_CATEGORIES, Subscription, TelemetryBus
from ..telemetry.events import TelemetryEvent
from .accounting import EAndroidAccounting
from .events import CollateralEvent, CollateralEventType, EventLog
from .links import SCREEN_TARGET, AttackKind, AttackLink

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..android.activity import ActivityRecord
    from ..android.framework import AndroidSystem
    from ..android.intent import Intent
    from ..android.service import ServiceRecord


class EAndroidMonitor(FrameworkObserver):
    """Telemetry-bus subscriber → event journal + attack tracking.

    The monitor subscribes to the device bus's framework categories
    (:meth:`attach`) and dispatches each typed event to the matching
    ``on_*`` handler below.  The handlers keep the legacy
    :class:`~repro.android.observers.FrameworkObserver` signatures, so
    the monitor can still be driven directly in unit tests.
    """

    def __init__(
        self,
        system: "AndroidSystem",
        accounting: EAndroidAccounting,
        accounting_enabled: bool = True,
    ) -> None:
        self._system = system
        self._accounting = accounting
        # §VI-B's "framework-only" configuration: events are journaled
        # (the framework extension is active) but the enhanced energy
        # accounting module is disabled — used to separate hook overhead
        # from accounting overhead in the Fig. 10 micro-benchmark.
        self.accounting_enabled = accounting_enabled
        self.log = EventLog()
        # Fig. 5a: at most one live activity link per driven app.
        self._activity_links: Dict[int, AttackLink] = {}
        # Fig. 5b: at most one live interrupt link per interrupted app.
        self._interrupt_links: Dict[int, AttackLink] = {}
        # Fig. 5c: start link per service record; bind links per
        # (record, client) with a connection refcount.
        self._service_start_links: Dict[int, AttackLink] = {}
        self._service_bind_links: Dict[Tuple[int, int], AttackLink] = {}
        self._service_bind_counts: Dict[Tuple[int, int], int] = {}
        # Fig. 5d: at most one live screen link per attacking app.
        self._screen_links: Dict[int, AttackLink] = {}
        # Fig. 5e: screen-wakelock held counts and live links per app.
        self._wakelock_links: Dict[int, AttackLink] = {}
        self._screen_lock_counts: Dict[int, int] = {}
        self._subscriptions: List[Subscription] = []
        self._bus: Optional[TelemetryBus] = None
        # Attaching mid-run (the real deployment case: E-Android boots
        # with the device, but tests/tools may attach late): prime the
        # wakelock census from PowerManagerService so Fig. 5e tracking
        # doesn't start blind.
        for lock in system.power_manager.held_locks():
            if lock.lock_type in SCREEN_LOCK_TYPES:
                self._screen_lock_counts[lock.uid] = (
                    self._screen_lock_counts.get(lock.uid, 0) + 1
                )

    # ------------------------------------------------------------------
    # bus subscription
    # ------------------------------------------------------------------
    def attach(self, bus: TelemetryBus) -> None:
        """Subscribe to the device bus's framework categories."""
        if self._subscriptions:
            raise RuntimeError("monitor is already attached")
        self._subscriptions = [
            bus.subscribe(self._on_event, category=category, name="eandroid-monitor")
            for category in FRAMEWORK_CATEGORIES
        ]
        self._bus = bus

    def detach(self) -> None:
        """Unsubscribe (used by the overhead ablations); idempotent."""
        for subscription in self._subscriptions:
            self._bus.unsubscribe(subscription)
        self._subscriptions = []

    @property
    def attached(self) -> bool:
        """Whether the monitor is currently subscribed to a bus."""
        return bool(self._subscriptions)

    def _on_event(self, event: TelemetryEvent) -> None:
        """Dispatch one typed event to its legacy-signature handler."""
        hook = event.hook
        if hook is not None:
            getattr(self, hook)(*event.hook_args())

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _is_system(self, uid: Optional[int]) -> bool:
        return uid is None or self._system.package_manager.is_system_uid(uid)

    def _cross_app_attackable(self, driving: Optional[int], driven: Optional[int]) -> bool:
        """Both real apps, distinct, neither a system app."""
        return (
            driving is not None
            and driven is not None
            and driving != driven
            and not self._is_system(driving)
            and not self._is_system(driven)
        )

    def _journal(
        self,
        time: float,
        event_type: CollateralEventType,
        driving: Optional[int] = None,
        driven: Optional[int] = None,
        **details,
    ) -> None:
        self.log.record(
            CollateralEvent(
                time=time,
                event_type=event_type,
                driving_uid=driving,
                driven_uid=driven,
                details=details,
            )
        )

    def _begin(
        self, kind: AttackKind, driving: int, target: int, detail: str = ""
    ) -> Optional[AttackLink]:
        """Open a link unless the accounting module is disabled."""
        if not self.accounting_enabled:
            return None
        return self._accounting.begin_attack(kind, driving, target, detail=detail)

    def _end(self, link: Optional[AttackLink]) -> None:
        if link is not None and link.alive:
            self._accounting.end_attack(link)

    # ------------------------------------------------------------------
    # Fig. 5a / 5b — activities
    # ------------------------------------------------------------------
    def on_activity_start(
        self,
        time: float,
        caller_uid: int,
        target_uid: int,
        record: "ActivityRecord",
        intent: "Intent",
        user_initiated: bool,
    ) -> None:
        self._journal(
            time,
            CollateralEventType.ACTIVITY_START,
            caller_uid,
            target_uid,
            component=record.component_name,
            user_initiated=user_initiated,
        )
        # "Attack ends when the app is started again" — whoever starts it.
        self._end(self._activity_links.pop(target_uid, None))
        self._end(self._interrupt_links.pop(target_uid, None))
        if not user_initiated and self._cross_app_attackable(caller_uid, target_uid):
            self._activity_links[target_uid] = self._begin(
                AttackKind.ACTIVITY,
                caller_uid,
                target_uid,
                detail=f"start {record.package}/{record.component_name}",
            )

    def on_activity_move_to_front(
        self, time: float, caller_uid: int, target_uid: int, user_initiated: bool
    ) -> None:
        self._journal(
            time,
            CollateralEventType.ACTIVITY_MOVE_TO_FRONT,
            caller_uid,
            target_uid,
            user_initiated=user_initiated,
        )
        # "Attack ends when the app is moved to front."
        self._end(self._activity_links.pop(target_uid, None))
        self._end(self._interrupt_links.pop(target_uid, None))
        if not user_initiated and self._cross_app_attackable(caller_uid, target_uid):
            self._activity_links[target_uid] = self._begin(
                AttackKind.ACTIVITY, caller_uid, target_uid, detail="move_to_front"
            )

    def on_activity_finished(self, time: float, record: "ActivityRecord") -> None:
        self._journal(
            time,
            CollateralEventType.ACTIVITY_FINISHED,
            None,
            record.uid,
            component=record.component_name,
        )

    def on_package_stopped(self, time: float, uid: int, package: str) -> None:
        self._journal(
            time,
            CollateralEventType.PACKAGE_STOPPED,
            None,
            uid,
            package=package,
        )
        # Force Stop kills every component, so attacks *against* this app
        # are physically over: its next life is a fresh, user-initiated
        # start, and Fig. 5a/5b windows must not span the death.  Links
        # the dead app *drives* stay open — a brightness setting or a
        # started-elsewhere activity outlives its driver's process.
        self._end(self._activity_links.pop(uid, None))
        self._end(self._interrupt_links.pop(uid, None))

    def on_foreground_changed(
        self,
        time: float,
        previous_uid: Optional[int],
        new_uid: Optional[int],
        cause: str,
        initiator_uid: Optional[int],
    ) -> None:
        self._journal(
            time,
            CollateralEventType.FOREGROUND_CHANGED,
            initiator_uid,
            new_uid,
            previous_uid=previous_uid,
            cause=cause,
        )
        # The app back in front is no longer "interrupted" (Fig. 5b) and
        # legitimately owns the screen again (Fig. 5e end-by-return).
        if new_uid is not None:
            self._end(self._interrupt_links.pop(new_uid, None))
            self._end(self._wakelock_links.pop(new_uid, None))
        # Fig. 5b begin: an app (not the user) pushed the previous
        # foreground app to the background.
        if (
            initiator_uid is not None
            and not self._is_system(initiator_uid)
            and previous_uid is not None
            and previous_uid != new_uid
            and self._cross_app_attackable(initiator_uid, previous_uid)
        ):
            self._end(self._interrupt_links.pop(previous_uid, None))
            self._interrupt_links[previous_uid] = self._begin(
                AttackKind.INTERRUPT,
                initiator_uid,
                previous_uid,
                detail=f"interrupted via {cause}",
            )
        # Fig. 5e begin: previous foreground app left the screen while
        # still holding a screen wakelock.
        if (
            previous_uid is not None
            and previous_uid != new_uid
            and not self._is_system(previous_uid)
            and self._screen_lock_counts.get(previous_uid, 0) > 0
            and previous_uid not in self._wakelock_links
        ):
            self._wakelock_links[previous_uid] = self._begin(
                AttackKind.WAKELOCK,
                previous_uid,
                SCREEN_TARGET,
                detail="screen wakelock held after entering background",
            )

    # ------------------------------------------------------------------
    # Fig. 5c — services
    # ------------------------------------------------------------------
    def on_service_start(
        self, time: float, caller_uid: int, target_uid: int, record: "ServiceRecord"
    ) -> None:
        self._journal(
            time,
            CollateralEventType.SERVICE_START,
            caller_uid,
            target_uid,
            component=record.component_name,
        )
        if self._cross_app_attackable(caller_uid, target_uid):
            self._end(self._service_start_links.pop(record.record_id, None))
            self._service_start_links[record.record_id] = self._begin(
                AttackKind.SERVICE_START,
                caller_uid,
                target_uid,
                detail=f"startService {record.component_name}",
            )

    def on_service_stop(
        self, time: float, caller_uid: int, target_uid: int, record: "ServiceRecord"
    ) -> None:
        self._journal(
            time,
            CollateralEventType.SERVICE_STOP,
            caller_uid,
            target_uid,
            component=record.component_name,
        )
        self._end(self._service_start_links.pop(record.record_id, None))

    def on_service_stop_self(self, time: float, record: "ServiceRecord") -> None:
        self._journal(
            time,
            CollateralEventType.SERVICE_STOP_SELF,
            record.uid,
            record.uid,
            component=record.component_name,
        )
        self._end(self._service_start_links.pop(record.record_id, None))

    def on_service_bind(
        self, time: float, caller_uid: int, target_uid: int, record: "ServiceRecord"
    ) -> None:
        self._journal(
            time,
            CollateralEventType.SERVICE_BIND,
            caller_uid,
            target_uid,
            component=record.component_name,
        )
        if not self._cross_app_attackable(caller_uid, target_uid):
            return
        key = (record.record_id, caller_uid)
        self._service_bind_counts[key] = self._service_bind_counts.get(key, 0) + 1
        if key not in self._service_bind_links:
            self._service_bind_links[key] = self._begin(
                AttackKind.SERVICE_BIND,
                caller_uid,
                target_uid,
                detail=f"bindService {record.component_name}",
            )

    def on_service_unbind(
        self, time: float, caller_uid: int, target_uid: int, record: "ServiceRecord"
    ) -> None:
        self._journal(
            time,
            CollateralEventType.SERVICE_UNBIND,
            caller_uid,
            target_uid,
            component=record.component_name,
        )
        key = (record.record_id, caller_uid)
        count = self._service_bind_counts.get(key, 0)
        if count <= 1:
            self._service_bind_counts.pop(key, None)
            self._end(self._service_bind_links.pop(key, None))
        else:
            self._service_bind_counts[key] = count - 1

    # ------------------------------------------------------------------
    # Fig. 5e — wakelocks
    # ------------------------------------------------------------------
    def on_wakelock_acquire(
        self, time: float, uid: int, lock_type: str, tag: str
    ) -> None:
        self._journal(
            time,
            CollateralEventType.WAKELOCK_ACQUIRE,
            uid,
            None,
            lock_type=lock_type,
            tag=tag,
        )
        if lock_type not in SCREEN_LOCK_TYPES:
            return
        self._screen_lock_counts[uid] = self._screen_lock_counts.get(uid, 0) + 1
        # "E-Android starts the wakelock collateral attack when the
        # foreground app is not the app acquiring the wakelock."
        if (
            not self._is_system(uid)
            and self._system.foreground_uid() != uid
            and uid not in self._wakelock_links
        ):
            self._wakelock_links[uid] = self._begin(
                AttackKind.WAKELOCK,
                uid,
                SCREEN_TARGET,
                detail=f"screen wakelock {tag!r} acquired in background",
            )

    def on_wakelock_release(
        self, time: float, uid: int, lock_type: str, tag: str, by_death: bool
    ) -> None:
        self._journal(
            time,
            CollateralEventType.WAKELOCK_RELEASE,
            uid,
            None,
            lock_type=lock_type,
            tag=tag,
            by_death=by_death,
        )
        if lock_type not in SCREEN_LOCK_TYPES:
            return
        count = self._screen_lock_counts.get(uid, 0)
        if count <= 1:
            self._screen_lock_counts.pop(uid, None)
            # "E-Android marks the end of the attack when the wakelock
            # is released."
            self._end(self._wakelock_links.pop(uid, None))
        else:
            self._screen_lock_counts[uid] = count - 1

    # ------------------------------------------------------------------
    # Fig. 5d — screen
    # ------------------------------------------------------------------
    def on_brightness_change(
        self,
        time: float,
        caller_uid: Optional[int],
        old_level: int,
        new_level: int,
        via: str,
    ) -> None:
        self._journal(
            time,
            CollateralEventType.BRIGHTNESS_CHANGE,
            caller_uid,
            None,
            old=old_level,
            new=new_level,
            via=via,
        )
        if via == "settings" and self._is_system(caller_uid):
            # "Brightness changed by system UI (i.e., operated by users)"
            # terminates every screen attack window.
            self._end_all_screen_links()
            return
        if via not in ("settings", "window") or self._is_system(caller_uid):
            return
        assert caller_uid is not None
        if new_level > old_level:
            if caller_uid not in self._screen_links:
                self._screen_links[caller_uid] = self._begin(
                    AttackKind.SCREEN,
                    caller_uid,
                    SCREEN_TARGET,
                    detail=f"brightness {old_level} -> {new_level} via {via}",
                )
        elif new_level < old_level:
            # "Brightness decreasing by the attacking app" ends its window.
            self._end(self._screen_links.pop(caller_uid, None))

    def on_brightness_mode_change(
        self, time: float, caller_uid: Optional[int], manual: bool, via: str
    ) -> None:
        self._journal(
            time,
            CollateralEventType.BRIGHTNESS_MODE_CHANGE,
            caller_uid,
            None,
            manual=manual,
            via=via,
        )
        if not manual:
            # "Switching into the auto mode" ends every screen window.
            self._end_all_screen_links()
            return
        # "Apps attempt to switch the auto mode to the manual mode" is a
        # begin event (the stored brightness now takes effect).
        if caller_uid is not None and not self._is_system(caller_uid):
            if caller_uid not in self._screen_links:
                self._screen_links[caller_uid] = self._begin(
                    AttackKind.SCREEN,
                    caller_uid,
                    SCREEN_TARGET,
                    detail="switched brightness mode to manual",
                )

    def on_screen_state(self, time: float, is_on: bool) -> None:
        self._journal(time, CollateralEventType.SCREEN_STATE, None, None, on=is_on)

    def _end_all_screen_links(self) -> None:
        for uid in list(self._screen_links):
            self._end(self._screen_links.pop(uid))

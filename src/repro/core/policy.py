"""Collateral charge policies.

"While a sophisticated policy could be easily applied, currently the
strategy handling basic collateral attacks is straightforward:
E-Android counts the driven app's energy consumption in the attack
period to the driving app." (§IV-B)

The paper's strategy is :class:`FullCharge`.  This module makes the
policy pluggable and ships two of the "sophisticated" alternatives the
paper gestures at:

* :class:`ProportionalSplit` — charge the driving app only a fraction,
  acknowledging the driven app still chose to do the work;
* :class:`ScreenDelta` — for screen windows, charge only the draw
  *above* what the user-chosen baseline brightness would have cost,
  i.e. the energy the manipulation actually added.
"""

from __future__ import annotations

from typing import List, Tuple, TYPE_CHECKING

from ..power.meter import EnergyMeter
from .links import SCREEN_TARGET

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..power.profiles import ScreenPowerProfile

Interval = Tuple[float, float]


class ChargePolicy:
    """Strategy deciding how much window energy lands on the driving app."""

    name = "abstract"

    def charged_energy(
        self,
        meter: EnergyMeter,
        target: int,
        intervals: List[Interval],
    ) -> float:
        """Joules charged to the driving app for one map element."""
        raise NotImplementedError

    def _raw_energy(
        self, meter: EnergyMeter, target: int, intervals: List[Interval]
    ) -> float:
        if target == SCREEN_TARGET:
            return sum(meter.screen_energy_j(start=s, end=e) for s, e in intervals)
        return sum(meter.energy_j(owner=target, start=s, end=e) for s, e in intervals)


class FullCharge(ChargePolicy):
    """The paper's policy: the whole window energy."""

    name = "full"

    def charged_energy(self, meter, target, intervals):
        return self._raw_energy(meter, target, intervals)


class ProportionalSplit(ChargePolicy):
    """Charge only ``fraction`` of the window energy to the driver."""

    def __init__(self, fraction: float = 0.5) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction {fraction!r} outside [0, 1]")
        self.fraction = fraction
        self.name = f"split({fraction:g})"

    def charged_energy(self, meter, target, intervals):
        return self.fraction * self._raw_energy(meter, target, intervals)


class ScreenDelta(ChargePolicy):
    """Charge only the screen draw above the user's baseline.

    App targets are charged in full (as in :class:`FullCharge`); screen
    windows are discounted by what the panel would have drawn anyway at
    ``baseline_brightness`` while on.
    """

    def __init__(
        self, screen_profile: "ScreenPowerProfile", baseline_brightness: int = 102
    ) -> None:
        self._profile = screen_profile
        self.baseline_brightness = baseline_brightness
        self.name = f"screen-delta(base={baseline_brightness})"

    def charged_energy(self, meter, target, intervals):
        raw = self._raw_energy(meter, target, intervals)
        if target != SCREEN_TARGET:
            return raw
        baseline_mw = self._profile.power_mw(self.baseline_brightness)
        discount = sum(
            baseline_mw * (end - start) / 1000.0 for start, end in intervals
        )
        return max(0.0, raw - discount)

"""Collateral-event taxonomy and the E-Android event log.

E-Android's framework extension "record[s] all events that potentially
invoke collateral energy bugs" (§IV).  Every framework notification the
monitor receives is journaled as a :class:`CollateralEvent` — including
same-app and system-app events, which are excluded from attack tracking
but "still logged ... as a vital factor to correctly calculate
collateral energy consumption" (§IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional


class CollateralEventType(Enum):
    """Every event class the E-Android framework extension records."""

    ACTIVITY_START = "activity_start"
    ACTIVITY_MOVE_TO_FRONT = "activity_move_to_front"
    ACTIVITY_FINISHED = "activity_finished"
    PACKAGE_STOPPED = "package_stopped"
    FOREGROUND_CHANGED = "foreground_changed"
    SERVICE_START = "service_start"
    SERVICE_STOP = "service_stop"
    SERVICE_STOP_SELF = "service_stop_self"
    SERVICE_BIND = "service_bind"
    SERVICE_UNBIND = "service_unbind"
    WAKELOCK_ACQUIRE = "wakelock_acquire"
    WAKELOCK_RELEASE = "wakelock_release"
    BRIGHTNESS_CHANGE = "brightness_change"
    BRIGHTNESS_MODE_CHANGE = "brightness_mode_change"
    SCREEN_STATE = "screen_state"


@dataclass(frozen=True)
class CollateralEvent:
    """One journaled framework event."""

    time: float
    event_type: CollateralEventType
    driving_uid: Optional[int] = None
    driven_uid: Optional[int] = None
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_cross_app(self) -> bool:
        """Whether driving and driven apps differ."""
        return (
            self.driving_uid is not None
            and self.driven_uid is not None
            and self.driving_uid != self.driven_uid
        )


class EventLog:
    """Append-only journal of collateral events.

    Maintains a per-type index so :meth:`of_type` is O(matches) rather
    than a scan of the whole journal — profiler report paths query the
    log once per event type per report.
    """

    def __init__(self) -> None:
        self._events: List[CollateralEvent] = []
        self._by_type: Dict[CollateralEventType, List[CollateralEvent]] = {}

    def record(self, event: CollateralEvent) -> None:
        """Append one event."""
        self._events.append(event)
        self._by_type.setdefault(event.event_type, []).append(event)

    def all(self) -> List[CollateralEvent]:
        """Every event (copy)."""
        return list(self._events)

    def of_type(self, event_type: CollateralEventType) -> List[CollateralEvent]:
        """Events of one type (copy, in journal order)."""
        return list(self._by_type.get(event_type, ()))

    def __len__(self) -> int:
        return len(self._events)

"""The assembled E-Android profiler.

:func:`attach_eandroid` is the public one-call entry point: given a
simulated device and a baseline interface choice, it builds the
accounting module, subscribes the monitor to the device's telemetry
bus, and returns an :class:`EAndroid` bundle exposing the revised
battery interface — the same "modify the framework, keep the interface" shape
as the paper's implementation on Android 5.0.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from ..accounting.base import EnergyProfiler
from ..accounting.batterystats import BatteryStats
from ..accounting.powertutor import PowerTutor
from .accounting import EAndroidAccounting
from .interface import EAndroidBatteryInterface
from .policy import ChargePolicy
from .monitor import EAndroidMonitor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..android.framework import AndroidSystem


@dataclass
class EAndroid:
    """A live E-Android installation on one simulated device."""

    system: "AndroidSystem"
    accounting: EAndroidAccounting
    monitor: EAndroidMonitor
    interface: EAndroidBatteryInterface

    def report(self, start: float = 0.0, end: Optional[float] = None):
        """The revised battery interface's snapshot."""
        return self.interface.report(start, end)

    def detach(self) -> None:
        """Unhook the monitor (used by the overhead ablations)."""
        self.monitor.detach()


def attach_eandroid(
    system: "AndroidSystem",
    baseline: Optional[EnergyProfiler] = None,
    policy: Optional[ChargePolicy] = None,
) -> EAndroid:
    """Install E-Android onto a simulated device.

    Args:
        system: the device to instrument.
        baseline: the interface to revise; defaults to the Android
            official BatteryStats policy (pass a
            :class:`~repro.accounting.PowerTutor` instance for the
            revised-PowerTutor variant of Fig. 8).
        policy: the collateral charge policy; defaults to the paper's
            full-charge strategy (see :mod:`repro.core.policy`).
    """
    if baseline is None:
        baseline = BatteryStats(system)
    accounting = EAndroidAccounting(
        system.kernel,
        system.hardware.meter,
        policy=policy,
        telemetry=system.telemetry,
    )
    monitor = EAndroidMonitor(system, accounting)
    monitor.attach(system.telemetry)
    interface = EAndroidBatteryInterface(system, baseline, accounting)
    return EAndroid(
        system=system, accounting=accounting, monitor=monitor, interface=interface
    )


def attach_eandroid_powertutor(system: "AndroidSystem") -> EAndroid:
    """E-Android revising PowerTutor (the Fig. 8 configuration)."""
    return attach_eandroid(system, baseline=PowerTutor(system))

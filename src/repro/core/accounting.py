"""E-Android's enhanced energy accounting module.

The second of the paper's three components: it receives attack-link
begin/end notifications from the monitor, maintains the collateral
energy maps (Algorithm 1, via the link graph + map-set sync), and — on
demand — converts charge windows into joules against the hardware
meter's ground truth.

"Note that only the part of energy consumption during the attack
lifecycle would be superimposed to the collateral energy of the driving
app" (§IV-B): energy is integrated strictly over the recorded windows,
clipped to the report interval.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ..power.meter import SCREEN_OWNER, EnergyMeter
from ..telemetry import AttackWindowBeginEvent, AttackWindowEndEvent, TelemetryBus
from .energy_map import CollateralEnergyMap, CollateralMapSet
from .links import SCREEN_TARGET, AttackKind, AttackLink, LinkGraph
from .policy import ChargePolicy, FullCharge

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.kernel import Kernel


class EAndroidAccounting:
    """Collateral energy bookkeeping over the link graph."""

    def __init__(
        self,
        kernel: "Kernel",
        meter: EnergyMeter,
        policy: Optional[ChargePolicy] = None,
        telemetry: Optional[TelemetryBus] = None,
    ) -> None:
        self._kernel = kernel
        self._meter = meter
        self._telemetry = telemetry
        self._policy = policy if policy is not None else FullCharge()
        self._policy_token = 0
        self.graph = LinkGraph()
        self.maps = CollateralMapSet()
        # (host, start, end) -> per-target charge memo.  Each target's
        # joules are keyed on (element version, target trace epoch,
        # policy identity), so reconciliation passes reuse every charge
        # whose windows and underlying trace did not change instead of
        # rescanning unrelated apps.
        self._breakdown_cache: "OrderedDict[Tuple[int, float, float], Dict[int, Tuple]]" = (
            OrderedDict()
        )

    @property
    def policy(self) -> ChargePolicy:
        """The active collateral charge policy."""
        return self._policy

    @policy.setter
    def policy(self, policy: ChargePolicy) -> None:
        self._policy = policy
        self._policy_token += 1  # invalidate every memoized charge

    # ------------------------------------------------------------------
    # link lifecycle (driven by the monitor)
    # ------------------------------------------------------------------
    def begin_attack(
        self, kind: AttackKind, driving_uid: int, target: int, detail: str = ""
    ) -> AttackLink:
        """Open an attack link and update every affected map."""
        link = self.graph.begin(
            kind, driving_uid, target, self._kernel.now, detail=detail
        )
        self.maps.sync(self._kernel.now, self.graph)
        if self._telemetry is not None:
            self._telemetry.publish(
                AttackWindowBeginEvent(
                    time=link.begin_time,
                    kind=kind.value,
                    attacker_uid=driving_uid,
                    target=target,
                    link_id=link.link_id,
                    detail=detail,
                )
            )
        return link

    def end_attack(self, link: AttackLink) -> None:
        """Close an attack link and update every affected map."""
        self.graph.end(link, self._kernel.now)
        self.maps.sync(self._kernel.now, self.graph)
        if self._telemetry is not None:
            self._telemetry.publish(
                AttackWindowEndEvent(
                    time=self._kernel.now,
                    kind=link.kind.value,
                    attacker_uid=link.driving_uid,
                    target=link.target,
                    link_id=link.link_id,
                    duration_s=link.duration(self._kernel.now),
                )
            )

    # ------------------------------------------------------------------
    # energy queries
    # ------------------------------------------------------------------
    def hosts(self) -> List[int]:
        """Apps with any collateral charge, past or present."""
        return sorted(self.maps.hosts())

    def map_for(self, host_uid: int) -> CollateralEnergyMap:
        """One app's collateral energy map."""
        return self.maps.map_for(host_uid)

    def collateral_breakdown(
        self, host_uid: int, start: float = 0.0, end: Optional[float] = None
    ) -> Dict[int, float]:
        """target -> joules charged to ``host_uid`` over [start, end).

        Each target's charge is its ground-truth energy integrated over
        the (clipped) windows its map element was open.  Windows within
        one element never overlap, so no double counting occurs per
        (host, target) pair even under multi-collateral attack (Fig. 6).
        """
        window_end = self._kernel.now if end is None else end
        cache_key = (host_uid, start, window_end)
        memo = self._breakdown_cache.get(cache_key)
        if memo is None:
            memo = {}
            self._breakdown_cache[cache_key] = memo
            if len(self._breakdown_cache) > 16:
                self._breakdown_cache.popitem(last=False)
        else:
            self._breakdown_cache.move_to_end(cache_key)
        breakdown: Dict[int, float] = {}
        for target, element in self.maps.map_for(host_uid).items():
            trace_owner = SCREEN_OWNER if target == SCREEN_TARGET else target
            charge_version = (
                element.version,
                self._meter.owner_epoch(trace_owner),
                self._policy_token,
            )
            cached = memo.get(target)
            if cached is not None and cached[0] == charge_version:
                total = cached[1]
            else:
                intervals = element.clipped_intervals(start, window_end)
                total = (
                    self.policy.charged_energy(self._meter, target, intervals)
                    if intervals
                    else 0.0
                )
                memo[target] = (charge_version, total)
            if total > 0:
                breakdown[target] = total
        return breakdown

    def collateral_total(
        self, host_uid: int, start: float = 0.0, end: Optional[float] = None
    ) -> float:
        """Total collateral joules charged to an app."""
        return sum(self.collateral_breakdown(host_uid, start, end).values())

    def _target_energy(self, target: int, start: float, end: float) -> float:
        if target == SCREEN_TARGET:
            return self._meter.screen_energy_j(start=start, end=end)
        return self._meter.energy_j(owner=target, start=start, end=end)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def live_attacks(self) -> List[AttackLink]:
        """Currently live attack links."""
        return self.graph.live_links()

    def attack_log(self) -> List[AttackLink]:
        """Every attack link ever recorded."""
        return self.graph.all_links()

    def attacks_by_kind(self, kind: AttackKind) -> List[AttackLink]:
        """Every link of one mechanism."""
        return [l for l in self.graph.all_links() if l.kind == kind]

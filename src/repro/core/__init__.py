"""E-Android — the paper's primary contribution.

Collateral-energy monitoring (framework hooks), attack-lifecycle
tracking (Fig. 5), collateral energy maps with chain propagation
(Algorithm 1, Figs. 6-7), and the revised battery interface (Fig. 8).
"""

from .accounting import EAndroidAccounting
from .analysis import AttackGraphAnalyzer, ChainReport
from .eandroid import EAndroid, attach_eandroid, attach_eandroid_powertutor
from .energy_map import CollateralEnergyMap, CollateralMapSet, ElementWindow
from .events import CollateralEvent, CollateralEventType, EventLog
from .interface import EAndroidBatteryInterface
from .links import SCREEN_TARGET, AttackKind, AttackLink, LinkGraph
from .monitor import EAndroidMonitor
from .detector import CollateralEnergyDetector, Suspicion
from .policy import ChargePolicy, FullCharge, ProportionalSplit, ScreenDelta

__all__ = [
    "EAndroid",
    "attach_eandroid",
    "attach_eandroid_powertutor",
    "EAndroidAccounting",
    "AttackGraphAnalyzer",
    "ChainReport",
    "EAndroidMonitor",
    "CollateralEnergyDetector",
    "Suspicion",
    "ChargePolicy",
    "FullCharge",
    "ProportionalSplit",
    "ScreenDelta",
    "EAndroidBatteryInterface",
    "CollateralEnergyMap",
    "CollateralMapSet",
    "ElementWindow",
    "CollateralEvent",
    "CollateralEventType",
    "EventLog",
    "AttackKind",
    "AttackLink",
    "LinkGraph",
    "SCREEN_TARGET",
]

"""Attack-graph analysis.

The paper warns that "the intricate IPC communications in Android easily
lead to collateral attack chains" (§IV-B); once E-Android has recorded a
run's attack links, natural questions follow: how deep did chains get,
who were the most-targeted victims, which malware is the root of the
largest blast radius?  This module answers them over the link log using
a directed multigraph (networkx under the hood).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

import networkx as nx

from .accounting import EAndroidAccounting
from .links import SCREEN_TARGET

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..android.framework import AndroidSystem


@dataclass
class ChainReport:
    """Structural summary of a run's attack graph."""

    node_count: int
    edge_count: int
    longest_chain: List[int] = field(default_factory=list)
    roots: List[int] = field(default_factory=list)
    top_targets: List[Tuple[int, int]] = field(default_factory=list)  # (node, in-degree)
    blast_radius: Dict[int, int] = field(default_factory=dict)  # root -> |reachable|

    @property
    def max_chain_depth(self) -> int:
        """Edges along the longest chain."""
        return max(0, len(self.longest_chain) - 1)


class AttackGraphAnalyzer:
    """Builds and queries the attack graph of a run."""

    def __init__(self, accounting: EAndroidAccounting) -> None:
        self._accounting = accounting

    def build_graph(self, live_only: bool = False) -> "nx.MultiDiGraph":
        """The attack graph: one edge per link, annotated with its data."""
        graph = nx.MultiDiGraph()
        for link in self._accounting.attack_log():
            if live_only and not link.alive:
                continue
            graph.add_edge(
                link.driving_uid,
                link.target,
                kind=link.kind.value,
                begin=link.begin_time,
                end=link.end_time,
                alive=link.alive,
            )
        return graph

    def analyze(self, live_only: bool = False) -> ChainReport:
        """Full structural report over the (live or historical) graph."""
        graph = self.build_graph(live_only=live_only)
        if graph.number_of_nodes() == 0:
            return ChainReport(node_count=0, edge_count=0)
        simple = nx.DiGraph(graph)  # collapse parallel edges for paths
        longest = self._longest_path(simple)
        roots = sorted(
            node
            for node in simple.nodes
            if simple.in_degree(node) == 0 and simple.out_degree(node) > 0
        )
        targets = sorted(
            ((node, simple.in_degree(node)) for node in simple.nodes),
            key=lambda pair: -pair[1],
        )
        blast = {
            root: len(nx.descendants(simple, root)) for root in roots
        }
        return ChainReport(
            node_count=graph.number_of_nodes(),
            edge_count=graph.number_of_edges(),
            longest_chain=longest,
            roots=roots,
            top_targets=[(n, d) for n, d in targets if d > 0][:5],
            blast_radius=blast,
        )

    @staticmethod
    def _longest_path(simple: "nx.DiGraph") -> List[int]:
        """Longest simple chain; exact on DAGs, greedy if cyclic."""
        if nx.is_directed_acyclic_graph(simple):
            return nx.dag_longest_path(simple)
        # Cycles (A attacks B, B attacks A) are possible; fall back to
        # the longest shortest-path chain, which is enough for reporting.
        best: List[int] = []
        for source in simple.nodes:
            lengths = nx.single_source_shortest_path(simple, source)
            candidate = max(lengths.values(), key=len)
            if len(candidate) > len(best):
                best = candidate
        return best

    def render_text(
        self, system: Optional["AndroidSystem"] = None, live_only: bool = False
    ) -> str:
        """Human-readable chain report."""
        report = self.analyze(live_only=live_only)

        def name(node: int) -> str:
            if node == SCREEN_TARGET:
                return "Screen"
            if system is not None:
                return system.package_manager.label_for_uid(node)
            return f"uid:{node}"

        lines = [
            "=== attack-graph analysis ===",
            f"nodes={report.node_count} edges={report.edge_count} "
            f"max chain depth={report.max_chain_depth}",
        ]
        if report.longest_chain:
            lines.append(
                "longest chain: " + " -> ".join(name(n) for n in report.longest_chain)
            )
        if report.roots:
            lines.append("roots: " + ", ".join(name(r) for r in report.roots))
        for node, degree in report.top_targets:
            lines.append(f"target {name(node)}: attacked via {degree} distinct source(s)")
        for root, radius in sorted(report.blast_radius.items(), key=lambda kv: -kv[1]):
            lines.append(f"blast radius of {name(root)}: {radius} node(s)")
        return "\n".join(lines)

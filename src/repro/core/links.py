"""Attack links — live edges in the collateral energy graph.

Each mechanism of Fig. 5 opens an :class:`AttackLink` from a *driving*
app to a *target* (another app's uid, or the screen) when its begin
condition fires and closes it on its end condition.  The set of live
links forms a directed graph; an app's collateral energy map contains
every target *reachable* from it through live links, which is how the
multi-collateral (Fig. 6) and hybrid-chain (Fig. 7) cases fall out of
one rule.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Set

SCREEN_TARGET = -100
"""Pseudo-target for screen-directed attacks (same id as the meter's
SCREEN_OWNER, so energy lookups are uniform)."""


class AttackKind(Enum):
    """The five attack-lifecycle machines of Fig. 5."""

    ACTIVITY = "activity"              # Fig. 5a — started by another app
    INTERRUPT = "interrupt"            # Fig. 5b — forced to background
    SERVICE_START = "service_start"    # Fig. 5c — startService
    SERVICE_BIND = "service_bind"      # Fig. 5c — bindService
    SCREEN = "screen"                  # Fig. 5d — brightness manipulation
    WAKELOCK = "wakelock"              # Fig. 5e — screen wakelock misuse


@dataclass
class AttackLink:
    """One live (or ended) collateral attack edge."""

    link_id: int
    kind: AttackKind
    driving_uid: int
    target: int  # uid, or SCREEN_TARGET
    begin_time: float
    end_time: Optional[float] = None
    detail: str = ""

    @property
    def alive(self) -> bool:
        """Whether the end condition has not fired yet."""
        return self.end_time is None

    def duration(self, now: float) -> float:
        """Length of the attack window so far."""
        end = now if self.end_time is None else self.end_time
        return max(0.0, end - self.begin_time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        target = "SCREEN" if self.target == SCREEN_TARGET else f"uid:{self.target}"
        state = "alive" if self.alive else f"ended@{self.end_time:.1f}"
        return (
            f"AttackLink(#{self.link_id} {self.kind.value} "
            f"uid:{self.driving_uid} -> {target}, {state})"
        )


class LinkGraph:
    """The set of all attack links, live and ended."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._links: List[AttackLink] = []
        self._live: Dict[int, AttackLink] = {}

    def begin(
        self,
        kind: AttackKind,
        driving_uid: int,
        target: int,
        time: float,
        detail: str = "",
    ) -> AttackLink:
        """Open a new attack link."""
        link = AttackLink(
            link_id=next(self._ids),
            kind=kind,
            driving_uid=driving_uid,
            target=target,
            begin_time=time,
            detail=detail,
        )
        self._links.append(link)
        self._live[link.link_id] = link
        return link

    def end(self, link: AttackLink, time: float) -> None:
        """Close a link (idempotent for already-ended links)."""
        if link.alive:
            link.end_time = time
            self._live.pop(link.link_id, None)

    def live_links(self) -> List[AttackLink]:
        """All currently live links."""
        return list(self._live.values())

    def all_links(self) -> List[AttackLink]:
        """Every link ever opened."""
        return list(self._links)

    def live_from(self, driving_uid: int) -> List[AttackLink]:
        """Live links driven by one uid."""
        return [l for l in self._live.values() if l.driving_uid == driving_uid]

    def live_targeting(self, target: int) -> List[AttackLink]:
        """Live links pointing at one target."""
        return [l for l in self._live.values() if l.target == target]

    def hosts(self) -> Set[int]:
        """Every uid that has ever driven a link."""
        return {link.driving_uid for link in self._links}

    def reachable_from(self, host: int) -> Set[int]:
        """Targets transitively reachable from ``host`` over live links.

        This is the membership rule of Algorithm 1: the host's map
        contains every driven app/screen its live attack chain reaches
        (excluding the host itself, so cycles don't self-charge).
        """
        reached: Set[int] = set()
        frontier = [host]
        seen = {host}
        while frontier:
            node = frontier.pop()
            for link in self._live.values():
                if link.driving_uid != node:
                    continue
                target = link.target
                if target == host or target in reached:
                    continue
                reached.add(target)
                if target not in seen and target != SCREEN_TARGET:
                    seen.add(target)
                    frontier.append(target)
        return reached

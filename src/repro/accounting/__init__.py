"""Baseline energy profilers the paper compares E-Android against."""

from .base import AppEnergyEntry, EnergyProfiler, ProfilerReport
from .batterystats import SCREEN_LABEL, SYSTEM_LABEL, BatteryStats
from .power_signature import (
    PowerSignature,
    PowerSignatureDetector,
    SignatureVerdict,
)
from .powertutor import PowerTutor

__all__ = [
    "AppEnergyEntry",
    "EnergyProfiler",
    "ProfilerReport",
    "BatteryStats",
    "PowerTutor",
    "PowerSignatureDetector",
    "PowerSignature",
    "SignatureVerdict",
    "SCREEN_LABEL",
    "SYSTEM_LABEL",
]

"""Profiler interfaces and report structures.

A *profiler* is an attribution policy over the hardware meter's ground
truth.  The meter never lies about how much energy each hardware channel
drew; the profilers differ only in **who they blame** — which is the
paper's entire subject:

* BatteryStats (Android official): screen is its own line item;
* PowerTutor: screen energy goes to the foreground app;
* E-Android (:mod:`repro.core`): either baseline plus collateral
  attribution.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..reports.request import ReportRequest
    from ..reports.view import ProfilerReportView


@dataclass
class AppEnergyEntry:
    """One row in a battery interface."""

    uid: Optional[int]
    label: str
    energy_j: float
    percent: float = 0.0
    is_screen: bool = False
    is_system: bool = False
    # E-Android extension: collateral contributions keyed by contributor
    # label ("Camera", "Screen", ...) -> joules.
    collateral_j: Dict[str, float] = field(default_factory=dict)

    @property
    def own_energy_j(self) -> float:
        """Energy minus collateral additions."""
        return self.energy_j - sum(self.collateral_j.values())

    def copy(self) -> "AppEnergyEntry":
        """An independent replica (callers may mutate report rows)."""
        return AppEnergyEntry(
            uid=self.uid,
            label=self.label,
            energy_j=self.energy_j,
            percent=self.percent,
            is_screen=self.is_screen,
            is_system=self.is_system,
            collateral_j=dict(self.collateral_j),
        )


@dataclass
class ProfilerReport:
    """A battery-interface snapshot over a time window."""

    profiler: str
    start: float
    end: float
    entries: List[AppEnergyEntry] = field(default_factory=list)

    def finalize(self) -> "ProfilerReport":
        """Sort rows by energy and compute percentages."""
        self.entries.sort(key=lambda e: e.energy_j, reverse=True)
        total = sum(e.energy_j for e in self.entries)
        for entry in self.entries:
            entry.percent = 100.0 * entry.energy_j / total if total > 0 else 0.0
        return self

    def entry_for(self, label: str) -> Optional[AppEnergyEntry]:
        """Row lookup by label."""
        for entry in self.entries:
            if entry.label == label:
                return entry
        return None

    def entry_for_uid(self, uid: int) -> Optional[AppEnergyEntry]:
        """Row lookup by uid."""
        for entry in self.entries:
            if entry.uid == uid:
                return entry
        return None

    def energy_of(self, label: str) -> float:
        """Energy of a row (0 if absent)."""
        entry = self.entry_for(label)
        return entry.energy_j if entry else 0.0

    def percent_of(self, label: str) -> float:
        """Percentage of a row (0 if absent)."""
        entry = self.entry_for(label)
        return entry.percent if entry else 0.0

    def total_energy_j(self) -> float:
        """Sum over all rows."""
        return sum(e.energy_j for e in self.entries)

    def render_text(self, top: int = 12) -> str:
        """ASCII battery-interface view (the figures' textual twin)."""
        lines = [
            f"=== {self.profiler} battery view "
            f"[{self.start:.0f}s, {self.end:.0f}s] ===",
        ]
        for entry in self.entries[:top]:
            lines.append(
                f"  {entry.label:<24} {entry.energy_j:>9.2f} J  {entry.percent:5.1f}%"
            )
            for source, joules in sorted(
                entry.collateral_j.items(), key=lambda kv: -kv[1]
            ):
                lines.append(f"      +{source:<20} {joules:>9.2f} J (collateral)")
        return "\n".join(lines)


class ReportCache:
    """Finalized-entry memoization shared by every profiler.

    Reports are pure functions of (underlying data version, query
    window); profilers describe their data dependencies as a hashable
    ``version`` (meter append epoch, foreground-timeline version,
    collateral map-set version, ...) and the cache replays the finalized
    entry rows when nothing they depend on has changed.  Entries are
    copied in both directions, so callers may freely mutate the reports
    they receive (E-Android's interface superimposes collateral onto the
    baseline rows in place).
    """

    def __init__(self, max_windows: int = 8) -> None:
        self._entries: "OrderedDict[Tuple[float, float], Tuple[Hashable, List[AppEnergyEntry]]]" = (
            OrderedDict()
        )
        self._max_windows = max_windows
        self.hits = 0
        self.misses = 0

    def get(
        self, version: Hashable, start: float, end: float
    ) -> Optional[List[AppEnergyEntry]]:
        """Fresh copies of the cached rows, or None on miss/staleness."""
        cached = self._entries.get((start, end))
        if cached is None or cached[0] != version:
            self.misses += 1
            return None
        self._entries.move_to_end((start, end))
        self.hits += 1
        return [entry.copy() for entry in cached[1]]

    def store(
        self,
        version: Hashable,
        start: float,
        end: float,
        entries: List[AppEnergyEntry],
    ) -> None:
        """Record finalized rows for one (version, window)."""
        self._entries[(start, end)] = (version, [entry.copy() for entry in entries])
        self._entries.move_to_end((start, end))
        if len(self._entries) > self._max_windows:
            self._entries.popitem(last=False)


class EnergyProfiler:
    """Interface every profiler implements."""

    name = "abstract"
    #: Which :data:`repro.reports.BACKENDS` name this profiler answers.
    backend = "energy"

    def report(self, start: float = 0.0, end: Optional[float] = None) -> ProfilerReport:
        """Produce a battery-interface snapshot for [start, end)."""
        raise NotImplementedError

    def report_view(
        self, start: float = 0.0, end: Optional[float] = None
    ) -> "ProfilerReportView":
        """The unified-API form of :meth:`report` (a ReportView)."""
        from ..reports.view import ProfilerReportView

        return ProfilerReportView(backend=self.backend, report=self.report(start, end))

    def describe(self, request: "ReportRequest") -> "ProfilerReportView":
        """Answer a typed :class:`~repro.reports.ReportRequest`.

        Live profilers answer exactly one backend — the one they embody;
        the offline analyzer overrides this to dispatch all of them.
        """
        from ..reports.request import UnknownBackendError
        from ..reports.view import view_from_report

        if request.backend != self.backend:
            raise UnknownBackendError(request.backend)
        report = self.report(request.start, request.end)
        return view_from_report(report, self.backend, request)

"""Power-signature anomaly detection (the Kim et al. baseline).

Related work (§VII): "Kim et al. proposed power signatures to detect
energy malware.  While they achieved promising results ... power
signature cannot tackle collateral energy malware that drains energy via
an indirect approach."

This module implements that baseline so the claim is demonstrable: a
per-app *power signature* is the distribution of the app's own
instantaneous draw over time; an app is flagged when its draw
persistently exceeds a trained threshold.  Collateral malware defeats it
by construction — its own draw is negligible; everything it causes lands
on other apps' signatures.  See ``tests/test_signature_baseline.py`` for
the head-to-head with E-Android's detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from ..power.meter import SCREEN_OWNER, SYSTEM_OWNER

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..android.framework import AndroidSystem


@dataclass
class PowerSignature:
    """One app's observed own-draw statistics over a window."""

    uid: int
    label: str
    mean_mw: float
    peak_mw: float
    duty_cycle: float  # fraction of sampled time with any draw

    def exceeds(self, threshold_mw: float) -> bool:
        """The baseline's alarm condition."""
        return self.mean_mw > threshold_mw


@dataclass
class SignatureVerdict:
    """The baseline detector's output."""

    flagged: List[PowerSignature] = field(default_factory=list)
    signatures: Dict[int, PowerSignature] = field(default_factory=dict)

    def is_flagged(self, uid: int) -> bool:
        """Whether the baseline flagged this uid."""
        return any(s.uid == uid for s in self.flagged)


class PowerSignatureDetector:
    """Flags apps whose *own* draw looks anomalous.

    ``threshold_mw`` plays the role of the trained normal-behaviour
    envelope; apps whose mean own draw over the analysis window exceeds
    it are reported as energy-greedy.
    """

    def __init__(
        self,
        system: "AndroidSystem",
        threshold_mw: float = 150.0,
        sample_period_s: float = 1.0,
    ) -> None:
        self._system = system
        self.threshold_mw = threshold_mw
        self.sample_period_s = sample_period_s
        # (window, knobs) -> (meter epoch, uid tuple, verdict); scanning
        # samples every app's draw over the whole window, so replaying
        # an unchanged scan is the detector's biggest saving.
        self._scan_cache: Dict[tuple, tuple] = {}

    def signature_of(
        self, uid: int, start: float = 0.0, end: Optional[float] = None
    ) -> PowerSignature:
        """Build one app's signature from the meter's trace history."""
        meter = self._system.hardware.meter
        window_end = self._system.kernel.now if end is None else end
        duration = max(window_end - start, self.sample_period_s)
        mean_mw = meter.energy_j(owner=uid, start=start, end=window_end) / duration * 1000.0
        peak = 0.0
        active = 0.0
        steps = max(1, int(duration / self.sample_period_s))
        step = duration / steps
        # The owner->channels index keeps sampling proportional to the
        # app's own channel count instead of the whole device's.
        traces = [
            meter.trace(*key)
            for key in meter.channels_of(uid)
        ]
        for i in range(steps):
            t = start + (i + 0.5) * step
            draw = sum(trace.power_at(t) for trace in traces if trace is not None)
            peak = max(peak, draw)
            if draw > 0:
                active += step
        return PowerSignature(
            uid=uid,
            label=self._system.package_manager.label_for_uid(uid),
            mean_mw=mean_mw,
            peak_mw=peak,
            duty_cycle=active / duration,
        )

    def scan(
        self, start: float = 0.0, end: Optional[float] = None
    ) -> SignatureVerdict:
        """Signature every app uid that ever drew power; flag outliers.

        Incremental: verdicts are memoized on the meter's append epoch
        (plus the scanned uid set), so repeated scans of an unchanged
        window skip the per-app sampling sweep entirely.
        """
        meter = self._system.hardware.meter
        window_end = self._system.kernel.now if end is None else end
        cache_key = (start, window_end, self.threshold_mw, self.sample_period_s)
        verdict = SignatureVerdict()
        # Every installed app gets a signature (a silent app's flat
        # signature is the interesting case), plus any uid the meter saw.
        app_uids = {
            owner
            for owner in meter.owners()
            if owner not in (SCREEN_OWNER, SYSTEM_OWNER)
            and not self._system.package_manager.is_system_uid(owner)
        }
        for app in self._system.package_manager.installed_apps():
            if app.uid is not None and not self._system.package_manager.is_system_uid(
                app.uid
            ):
                app_uids.add(app.uid)
        uids = tuple(sorted(app_uids))
        cached = self._scan_cache.get(cache_key)
        if cached is not None and cached[0] == meter.epoch and cached[1] == uids:
            previous = cached[2]
            verdict.signatures = dict(previous.signatures)
            verdict.flagged = list(previous.flagged)
            return verdict
        for uid in uids:
            signature = self.signature_of(uid, start, window_end)
            verdict.signatures[uid] = signature
            if signature.exceeds(self.threshold_mw):
                verdict.flagged.append(signature)
        verdict.flagged.sort(key=lambda s: s.mean_mw, reverse=True)
        if len(self._scan_cache) > 8:
            self._scan_cache.clear()
        snapshot = SignatureVerdict(
            flagged=list(verdict.flagged), signatures=dict(verdict.signatures)
        )
        self._scan_cache[cache_key] = (meter.epoch, uids, snapshot)
        return verdict

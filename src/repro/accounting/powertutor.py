"""PowerTutor's attribution policy.

"The first [policy] is always to allocate the energy of screen to the
foreground app, which is the center of interacting with users." (§II)

Screen energy is split over time by the foreground timeline: each app is
charged the panel energy drawn during the intervals it held the
foreground.  All other channels attribute as in BatteryStats.  This is
the policy attack #6 defeats — a background service's wakelock keeps the
screen burning, and PowerTutor taxes the *foreground* app for it.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from ..power.components import SCREEN
from ..power.meter import SCREEN_OWNER, SYSTEM_OWNER
from .base import AppEnergyEntry, EnergyProfiler, ProfilerReport, ReportCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..android.framework import AndroidSystem

SYSTEM_LABEL = "System"
UNATTRIBUTED_SCREEN_LABEL = "Screen (no foreground)"


class PowerTutor(EnergyProfiler):
    """Screen-to-foreground attribution."""

    name = "PowerTutor"
    backend = "powertutor"

    def __init__(self, system: "AndroidSystem") -> None:
        self._system = system
        self._cache = ReportCache()

    def report(self, start: float = 0.0, end: Optional[float] = None) -> ProfilerReport:
        """Per-app direct energy plus foreground-interval screen shares.

        Incremental: finalized rows are memoized on (meter append epoch,
        foreground-timeline version) — the two inputs the attribution
        depends on — so unchanged windows replay instead of rescanning
        every channel and foreground interval.
        """
        meter = self._system.hardware.meter
        pm = self._system.package_manager
        timeline = self._system.am.timeline
        window_end = self._system.kernel.now if end is None else end
        version = (meter.epoch, timeline.version)
        cached = self._cache.get(version, start, window_end)
        if cached is not None:
            return ProfilerReport(
                profiler=self.name, start=start, end=window_end, entries=cached
            )

        energies: Dict[int, float] = {}
        system_energy = 0.0
        for owner, energy in meter.energy_by_owner(start, window_end).items():
            if energy <= 0:
                continue
            if owner == SYSTEM_OWNER:
                system_energy += energy
            elif owner != SCREEN_OWNER:
                energies[owner] = energies.get(owner, 0.0) + energy

        # Distribute screen energy over foreground intervals.
        screen_trace = meter.trace(SCREEN_OWNER, SCREEN)
        unattributed_screen = 0.0
        if screen_trace is not None:
            total_screen = screen_trace.energy_j(start, window_end)
            attributed = 0.0
            foreground_uids = {
                uid for _, uid in timeline.changes() if uid is not None
            }
            for uid in foreground_uids:
                share = sum(
                    screen_trace.energy_j(seg_start, seg_end)
                    for seg_start, seg_end in timeline.intervals(
                        uid, start, window_end
                    )
                )
                if share > 0:
                    energies[uid] = energies.get(uid, 0.0) + share
                    attributed += share
            unattributed_screen = max(0.0, total_screen - attributed)

        report = ProfilerReport(profiler=self.name, start=start, end=window_end)
        for uid, energy in energies.items():
            report.entries.append(
                AppEnergyEntry(
                    uid=uid,
                    label=pm.label_for_uid(uid),
                    energy_j=energy,
                    is_system=pm.is_system_uid(uid),
                )
            )
        if system_energy > 0:
            report.entries.append(
                AppEnergyEntry(
                    uid=None, label=SYSTEM_LABEL, energy_j=system_energy, is_system=True
                )
            )
        if unattributed_screen > 0:
            report.entries.append(
                AppEnergyEntry(
                    uid=None,
                    label=UNATTRIBUTED_SCREEN_LABEL,
                    energy_j=unattributed_screen,
                    is_screen=True,
                )
            )
        report.finalize()
        self._cache.store(version, start, window_end, report.entries)
        return report

"""Android's official BatteryStats attribution policy.

"Another policy is to treat screen as an independent part, where the
energy consumed by screen is always displayed in total.  Such a method
is used by the Android official battery interface." (§II)

Per-app rows carry only the hardware energy the kernel can attribute to
the uid (CPU time, radio traffic, camera/GPS/audio sessions).  Screen is
one aggregate row; platform base draw is an "Android OS" row.  No IPC
awareness whatsoever — which is what every attack in §III exploits.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..power.meter import SCREEN_OWNER, SYSTEM_OWNER
from .base import AppEnergyEntry, EnergyProfiler, ProfilerReport, ReportCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..android.framework import AndroidSystem

SCREEN_LABEL = "Screen"
SYSTEM_LABEL = "Android OS"


class BatteryStats(EnergyProfiler):
    """The stock Android battery interface."""

    name = "BatteryStats (Android)"
    backend = "batterystats"

    def __init__(self, system: "AndroidSystem") -> None:
        self._system = system
        self._cache = ReportCache()

    def report(self, start: float = 0.0, end: Optional[float] = None) -> ProfilerReport:
        """Per-app direct energy; screen and OS as standalone rows.

        Incremental: finalized rows are memoized on the meter's append
        epoch, so repeated snapshots of an unchanged window replay the
        cached entries instead of re-integrating every channel.
        """
        meter = self._system.hardware.meter
        pm = self._system.package_manager
        window_end = self._system.kernel.now if end is None else end
        cached = self._cache.get(meter.epoch, start, window_end)
        if cached is not None:
            return ProfilerReport(
                profiler=self.name, start=start, end=window_end, entries=cached
            )
        report = ProfilerReport(profiler=self.name, start=start, end=window_end)
        for owner, energy in meter.energy_by_owner(start, window_end).items():
            if energy <= 0:
                continue
            if owner == SCREEN_OWNER:
                report.entries.append(
                    AppEnergyEntry(
                        uid=None, label=SCREEN_LABEL, energy_j=energy, is_screen=True
                    )
                )
            elif owner == SYSTEM_OWNER:
                report.entries.append(
                    AppEnergyEntry(
                        uid=None, label=SYSTEM_LABEL, energy_j=energy, is_system=True
                    )
                )
            else:
                report.entries.append(
                    AppEnergyEntry(
                        uid=owner,
                        label=pm.label_for_uid(owner),
                        energy_j=energy,
                        is_system=pm.is_system_uid(owner),
                    )
                )
        report.finalize()
        self._cache.store(meter.epoch, start, window_end, report.entries)
        return report

"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiments [NAME ...]`` — regenerate evaluation tables/figures
  through the registry + parallel engine (default: all, in paper order;
  ``--only fig9,fig10`` selects, ``--parallel N`` fans out,
  ``--cache-dir``/``--no-cache``/``--refresh`` control the result cache,
  ``--save DIR`` writes text artifacts plus ``manifest.json``);
* ``check`` — fuzz generated device scenarios against the conformance
  oracles (``--fuzz N --seed S --jobs J``; ``--corpus DIR`` shrinks
  failures into a replayable corpus, ``--replay FILE`` re-runs one
  corpus entry, ``--save DIR`` writes ``manifest.json`` +
  ``BENCH_fuzz.json``);
* ``bench [NAME ...]`` — run named performance benchmarks through the
  registry + engine, write schema-versioned ``BENCH.json``
  (``--out FILE``), and optionally gate against a committed baseline
  (``--compare BASELINE --max-regress 1.25`` exits 1 on regression;
  ``--write-baseline FILE`` records a new baseline, ``--list`` shows
  the registry);
* ``attack NAME`` — run one attack scenario and print the Android vs
  E-Android views plus the detector's verdict (``--trace-out FILE``
  additionally writes a Chrome trace-event JSON of the run,
  ``--telemetry`` prints the event-bus metrics summary);
* ``census [--seed N]`` — the Fig. 2 corpus census;
* ``drain`` — the Fig. 3 battery study;
* ``dumpsys`` — boot a demo device, run scene #1, dump all services;
* ``trace NAME --out FILE`` — run an attack, capture the device trace to
  JSON, and verify the offline analyzer reproduces the live report
  (``--trace-out FILE`` writes the Chrome trace-event view,
  ``--telemetry`` prints bus metrics);
* ``chains NAME`` — run an attack and print the attack-graph analysis.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .exec import EngineConfig, ExperimentEngine, write_manifest
    from .experiments.registry import (
        UnknownExperimentError,
        available_names,
        load_registry,
        resolve_selection,
    )
    from .experiments.runner import save_outcomes

    load_registry()
    names = list(args.names)
    if args.only:
        names += [n.strip() for n in args.only.split(",") if n.strip()]
    try:
        specs = resolve_selection(names)
    except UnknownExperimentError as exc:
        print(str(exc), file=sys.stderr)
        print(f"available: {', '.join(available_names())}", file=sys.stderr)
        return 2
    if args.list:
        for spec in specs:
            print(f"{spec.name:<12} {spec.description}")
        return 0

    engine = ExperimentEngine(
        EngineConfig(
            parallel=args.parallel,
            cache_dir=args.cache_dir or None,
            use_cache=not args.no_cache,
            refresh=args.refresh,
            telemetry=args.telemetry,
        )
    )
    run = engine.run([spec.name for spec in specs])
    for result in run.results:
        print(f"\n=== {result.name} ===")
        print(result.outcome.text)

    if args.telemetry:
        for result in run.results:
            stats = result.telemetry or {}
            print(
                f"[telemetry] {result.name}: "
                f"{stats.get('total_events', 0)} event(s) "
                f"across {stats.get('buses', 0)} bus(es)"
            )

    outcomes = run.outcomes()
    failed = [o.name for o in outcomes if not o.claim_holds]
    stats = run.cache_stats
    print(
        f"\n{len(outcomes) - len(failed)}/{len(outcomes)} claims hold; "
        f"cache: {stats.hits} hit(s), {stats.misses} miss(es); "
        f"wall time {run.total_wall_time_s:.2f}s"
    )
    if failed:
        print("deviations:", ", ".join(failed))
    if args.save:
        written = save_outcomes(outcomes, args.save)
        written.append(str(write_manifest(run, args.save)))
        print(f"wrote {len(written)} artifact files to {args.save}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .check import CampaignConfig, load_corpus_entry, run_campaign, run_scenario
    from .check.scenario import Scenario

    if args.replay:
        document = load_corpus_entry(args.replay)
        scenario = Scenario.from_dict(document["scenario"])
        report = run_scenario(scenario, stride=args.stride, metamorphic=not args.no_metamorphic)
        print(
            f"replayed {args.replay}: seed {scenario.seed}, "
            f"{len(scenario.ops)} op(s), "
            f"{'PASS' if report.passed else 'FAIL'}"
        )
        for violation in report.violations:
            print(f"  {violation}")
        return 0 if report.passed else 1

    config = CampaignConfig(
        fuzz=args.fuzz,
        seed=args.seed,
        jobs=args.jobs,
        ops=args.ops,
        stride=args.stride,
        metamorphic=not args.no_metamorphic,
        corpus_dir=args.corpus or None,
        save_dir=args.save or None,
        cache_dir=args.cache_dir or None,
        use_cache=not args.no_cache,
        refresh=args.refresh,
        telemetry=args.telemetry,
    )
    report = run_campaign(config)
    print(report.render_text())
    stats = report.cache_stats
    print(
        f"cache: {stats.get('hits', 0)} hit(s), "
        f"{stats.get('misses', 0)} miss(es)"
    )
    return 0 if report.passed else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        SuiteConfig,
        UnknownBenchError,
        available_bench_names,
        compare_benchmarks,
        load_bench_json,
        resolve_bench_selection,
        run_suite,
        write_bench_json,
    )

    try:
        specs = resolve_bench_selection(list(args.names) or None)
    except UnknownBenchError as exc:
        print(str(exc), file=sys.stderr)
        print(f"available: {', '.join(available_bench_names())}", file=sys.stderr)
        return 2
    if args.list:
        for spec in specs:
            print(f"{spec.name:<22} [{spec.kind}] {spec.description}")
        return 0

    report = run_suite(
        SuiteConfig(
            names=[spec.name for spec in specs],
            repeats=args.repeats,
            parallel=args.parallel,
        )
    )
    print(report.render_text())
    if not report.passed:
        failed = [r.name for r in report.results if not r.ok]
        print(f"benchmark failure(s): {', '.join(failed)}", file=sys.stderr)
        return 1

    if args.out:
        print(f"wrote {write_bench_json(report, args.out)}")
    if args.write_baseline:
        print(f"baseline written to {write_bench_json(report, args.write_baseline)}")

    if args.compare:
        try:
            baseline = load_bench_json(args.compare)
        except (OSError, ValueError) as exc:
            print(f"cannot load baseline: {exc}", file=sys.stderr)
            return 2
        gate = compare_benchmarks(
            report.to_dict(), baseline, max_regress=args.max_regress
        )
        print()
        print(gate.render_text())
        return 0 if gate.passed else 1
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from .core import CollateralEnergyDetector

    runners = _attack_runners()
    if args.name not in runners:
        print(f"unknown attack {args.name!r}; available: {', '.join(runners)}",
              file=sys.stderr)
        return 2
    run, recorder = _run_with_telemetry(runners[args.name], args)
    print(f"--- stock Android view ({run.name}) ---")
    print(run.android_report().render_text())
    print("\n--- E-Android view ---")
    print(run.eandroid_report().render_text())
    print("\n--- detector ---")
    detector = CollateralEnergyDetector(run.system, run.eandroid.accounting)
    print(detector.render_text(run.start, run.end))
    _finish_telemetry(run, recorder, args)
    return 0


def _run_with_telemetry(runner, args):
    """Run a scenario, recording bus events when the flags ask for it."""
    from .telemetry import capture

    if getattr(args, "trace_out", "") or getattr(args, "telemetry", False):
        with capture() as recorder:
            run = runner(args.duration)
        return run, recorder
    return runner(args.duration), None


def _finish_telemetry(run, recorder, args) -> None:
    """Write ``--trace-out`` / print ``--telemetry`` for a recorded run."""
    from .telemetry import render_metrics_text, write_chrome_trace

    if recorder is None:
        return
    if getattr(args, "trace_out", ""):
        path = write_chrome_trace(
            args.trace_out,
            recorder.events,
            labels=_uid_labels(run.system),
            end_time=run.system.now,
        )
        print(f"\nchrome trace written to {path} "
              f"({len(recorder.events)} event(s))")
    if getattr(args, "telemetry", False):
        print()
        print(render_metrics_text(recorder.stats()))


def _uid_labels(system) -> dict:
    """uid -> display label for trace track names."""
    return {
        app.uid: app.label
        for app in system.package_manager.installed_apps()
        if app.uid is not None
    }


def _attack_runners():
    from .workloads import ALL_ATTACKS, run_hybrid_attack, run_multi_attack

    runners = dict(ALL_ATTACKS)
    runners["multi"] = run_multi_attack
    runners["hybrid"] = run_hybrid_attack
    return runners


def _cmd_trace(args: argparse.Namespace) -> int:
    from .offline import OfflineAnalyzer, DeviceTrace, capture_trace

    runners = _attack_runners()
    if args.name not in runners:
        print(f"unknown attack {args.name!r}; available: {', '.join(runners)}",
              file=sys.stderr)
        return 2
    run, recorder = _run_with_telemetry(runners[args.name], args)
    trace = capture_trace(run.system, run.eandroid)
    text = trace.to_json(indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"trace written to {args.out} ({len(text)} bytes)")
    analyzer = OfflineAnalyzer(DeviceTrace.from_json(text))
    print("\n--- offline E-Android reconstruction ---")
    print(analyzer.eandroid_report(run.start, run.end).render_text())
    _finish_telemetry(run, recorder, args)
    return 0


def _cmd_chains(args: argparse.Namespace) -> int:
    from .core import AttackGraphAnalyzer

    runners = _attack_runners()
    if args.name not in runners:
        print(f"unknown attack {args.name!r}; available: {', '.join(runners)}",
              file=sys.stderr)
        return 2
    run = runners[args.name](args.duration)
    analyzer = AttackGraphAnalyzer(run.eandroid.accounting)
    print(analyzer.render_text(system=run.system))
    return 0


def _cmd_census(args: argparse.Namespace) -> int:
    from .apps import generate_corpus, run_census

    print(run_census(generate_corpus(seed=args.seed)).render_text())
    return 0


def _cmd_drain(args: argparse.Namespace) -> int:
    from .experiments import run_fig3

    print(run_fig3().render_text())
    return 0


def _cmd_dumpsys(args: argparse.Namespace) -> int:
    from .android import dumpsys
    from .workloads import run_scene1

    run = run_scene1()
    print(dumpsys(run.system))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="E-Android reproduction: run experiments, attacks, and tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    experiments = sub.add_parser(
        "experiments", help="regenerate evaluation tables/figures"
    )
    experiments.add_argument("names", nargs="*", help="fig1..fig11, efficiency")
    experiments.add_argument(
        "--only",
        default="",
        help="comma-separated selection, e.g. --only fig9,fig10",
    )
    experiments.add_argument(
        "--parallel",
        type=int,
        default=1,
        help="run up to N experiments in worker processes (default: serial)",
    )
    experiments.add_argument(
        "--cache-dir",
        default="",
        help="result cache directory (default: ~/.cache/repro or $REPRO_CACHE_DIR)",
    )
    experiments.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the on-disk result cache",
    )
    experiments.add_argument(
        "--refresh",
        action="store_true",
        help="recompute every experiment and overwrite its cache entry",
    )
    experiments.add_argument(
        "--save", default="", help="write text artifacts + manifest.json here"
    )
    experiments.add_argument(
        "--telemetry",
        action="store_true",
        help="collect per-experiment event-bus stats into the manifest",
    )
    experiments.add_argument(
        "--list", action="store_true", help="list the selection and exit"
    )
    experiments.set_defaults(func=_cmd_experiments)

    check = sub.add_parser(
        "check", help="fuzz the device against the conformance oracles"
    )
    check.add_argument(
        "--fuzz", type=int, default=50, help="number of scenarios (default 50)"
    )
    check.add_argument(
        "--seed", type=int, default=7, help="campaign base seed (default 7)"
    )
    check.add_argument(
        "--jobs", type=int, default=1, help="engine worker processes"
    )
    check.add_argument(
        "--ops", type=int, default=40, help="body ops per scenario (default 40)"
    )
    check.add_argument(
        "--stride",
        type=int,
        default=1,
        help="run step oracles every Nth op (default: every op)",
    )
    check.add_argument(
        "--no-metamorphic",
        action="store_true",
        help="skip the replay-based metamorphic oracles (3x faster)",
    )
    check.add_argument(
        "--corpus",
        default="",
        help="write shrunk failing scripts into this corpus directory",
    )
    check.add_argument(
        "--replay",
        default="",
        help="replay one corpus entry instead of fuzzing",
    )
    check.add_argument(
        "--save", default="", help="write manifest.json + BENCH_fuzz.json here"
    )
    check.add_argument(
        "--cache-dir",
        default="",
        help="result cache directory (default: ~/.cache/repro or $REPRO_CACHE_DIR)",
    )
    check.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the on-disk result cache",
    )
    check.add_argument(
        "--refresh",
        action="store_true",
        help="recompute every batch and overwrite its cache entry",
    )
    check.add_argument(
        "--telemetry",
        action="store_true",
        help="collect per-batch event-bus stats into the manifest",
    )
    check.set_defaults(func=_cmd_check)

    bench = sub.add_parser(
        "bench", help="run performance benchmarks / gate against a baseline"
    )
    bench.add_argument(
        "names", nargs="*", help="benchmark names (default: the full registry)"
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="override every benchmark's repeat count",
    )
    bench.add_argument(
        "--parallel",
        type=int,
        default=1,
        help="run up to N benchmarks in worker processes (default: serial)",
    )
    bench.add_argument(
        "--out", default="", help="write the BENCH.json document here"
    )
    bench.add_argument(
        "--compare",
        default="",
        help="baseline BENCH.json to gate against (exit 1 on regression)",
    )
    bench.add_argument(
        "--max-regress",
        type=float,
        default=1.25,
        help="max allowed calibration-normalized slowdown (default 1.25)",
    )
    bench.add_argument(
        "--write-baseline",
        default="",
        help="record this run as the new baseline BENCH.json",
    )
    bench.add_argument(
        "--list", action="store_true", help="list the selection and exit"
    )
    bench.set_defaults(func=_cmd_bench)

    attack = sub.add_parser("attack", help="run one attack scenario")
    attack.add_argument(
        "name", help="attack1..attack6, multi, hybrid"
    )
    attack.add_argument(
        "--duration", type=float, default=60.0, help="attack window (virtual s)"
    )
    attack.add_argument(
        "--trace-out", default="", help="write a Chrome trace-event JSON here"
    )
    attack.add_argument(
        "--telemetry", action="store_true", help="print event-bus metrics"
    )
    attack.set_defaults(func=_cmd_attack)

    census = sub.add_parser("census", help="the Fig. 2 corpus census")
    census.add_argument("--seed", type=int, default=7)
    census.set_defaults(func=_cmd_census)

    drain = sub.add_parser("drain", help="the Fig. 3 battery study")
    drain.set_defaults(func=_cmd_drain)

    dump = sub.add_parser("dumpsys", help="dump a demo device's state")
    dump.set_defaults(func=_cmd_dumpsys)

    trace = sub.add_parser("trace", help="capture a device trace to JSON")
    trace.add_argument("name", help="attack1..attack6, multi, hybrid")
    trace.add_argument("--duration", type=float, default=60.0)
    trace.add_argument("--out", default="", help="write the JSON trace here")
    trace.add_argument(
        "--trace-out", default="", help="write a Chrome trace-event JSON here"
    )
    trace.add_argument(
        "--telemetry", action="store_true", help="print event-bus metrics"
    )
    trace.set_defaults(func=_cmd_trace)

    chains = sub.add_parser("chains", help="attack-graph analysis of a run")
    chains.add_argument("name", help="attack1..attack6, multi, hybrid")
    chains.add_argument("--duration", type=float, default=60.0)
    chains.set_defaults(func=_cmd_chains)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)

"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiments [NAME ...]`` — regenerate evaluation tables/figures
  (default: all, in paper order);
* ``attack NAME`` — run one attack scenario and print the Android vs
  E-Android views plus the detector's verdict;
* ``census [--seed N]`` — the Fig. 2 corpus census;
* ``drain`` — the Fig. 3 battery study;
* ``dumpsys`` — boot a demo device, run scene #1, dump all services;
* ``trace NAME --out FILE`` — run an attack, capture the device trace to
  JSON, and verify the offline analyzer reproduces the live report;
* ``chains NAME`` — run an attack and print the attack-graph analysis.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

EXPERIMENT_RUNNERS: Dict[str, Callable[[], object]] = {}


def _experiment_runners() -> Dict[str, Callable[[], object]]:
    from .experiments import (
        run_efficiency,
        run_fig1,
        run_fig2,
        run_fig3,
        run_fig6,
        run_fig7,
        run_fig8,
        run_fig9,
        run_fig10,
        run_fig11,
    )

    return {
        "fig1": run_fig1,
        "fig2": run_fig2,
        "fig3": run_fig3,
        "fig6": run_fig6,
        "fig7": run_fig7,
        "fig8": run_fig8,
        "fig9": run_fig9,
        "fig10": run_fig10,
        "fig11": run_fig11,
        "efficiency": run_efficiency,
    }


def _cmd_experiments(args: argparse.Namespace) -> int:
    runners = _experiment_runners()
    names = args.names or list(runners)
    unknown = [name for name in names if name not in runners]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(runners)}", file=sys.stderr)
        return 2
    for name in names:
        print(f"\n=== {name} ===")
        result = runners[name]()
        print(result.render_text())
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from .core import CollateralEnergyDetector

    runners = _attack_runners()
    if args.name not in runners:
        print(f"unknown attack {args.name!r}; available: {', '.join(runners)}",
              file=sys.stderr)
        return 2
    run = runners[args.name](args.duration)
    print(f"--- stock Android view ({run.name}) ---")
    print(run.android_report().render_text())
    print("\n--- E-Android view ---")
    print(run.eandroid_report().render_text())
    print("\n--- detector ---")
    detector = CollateralEnergyDetector(run.system, run.eandroid.accounting)
    print(detector.render_text(run.start, run.end))
    return 0


def _attack_runners():
    from .workloads import ALL_ATTACKS, run_hybrid_attack, run_multi_attack

    runners = dict(ALL_ATTACKS)
    runners["multi"] = run_multi_attack
    runners["hybrid"] = run_hybrid_attack
    return runners


def _cmd_trace(args: argparse.Namespace) -> int:
    from .offline import OfflineAnalyzer, DeviceTrace, capture_trace

    runners = _attack_runners()
    if args.name not in runners:
        print(f"unknown attack {args.name!r}; available: {', '.join(runners)}",
              file=sys.stderr)
        return 2
    run = runners[args.name](args.duration)
    trace = capture_trace(run.system, run.eandroid)
    text = trace.to_json(indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"trace written to {args.out} ({len(text)} bytes)")
    analyzer = OfflineAnalyzer(DeviceTrace.from_json(text))
    print("\n--- offline E-Android reconstruction ---")
    print(analyzer.eandroid_report(run.start, run.end).render_text())
    return 0


def _cmd_chains(args: argparse.Namespace) -> int:
    from .core import AttackGraphAnalyzer

    runners = _attack_runners()
    if args.name not in runners:
        print(f"unknown attack {args.name!r}; available: {', '.join(runners)}",
              file=sys.stderr)
        return 2
    run = runners[args.name](args.duration)
    analyzer = AttackGraphAnalyzer(run.eandroid.accounting)
    print(analyzer.render_text(system=run.system))
    return 0


def _cmd_census(args: argparse.Namespace) -> int:
    from .apps import generate_corpus, run_census

    print(run_census(generate_corpus(seed=args.seed)).render_text())
    return 0


def _cmd_drain(args: argparse.Namespace) -> int:
    from .experiments import run_fig3

    print(run_fig3().render_text())
    return 0


def _cmd_dumpsys(args: argparse.Namespace) -> int:
    from .android import dumpsys
    from .workloads import run_scene1

    run = run_scene1()
    print(dumpsys(run.system))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="E-Android reproduction: run experiments, attacks, and tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    experiments = sub.add_parser(
        "experiments", help="regenerate evaluation tables/figures"
    )
    experiments.add_argument("names", nargs="*", help="fig1..fig11, efficiency")
    experiments.set_defaults(func=_cmd_experiments)

    attack = sub.add_parser("attack", help="run one attack scenario")
    attack.add_argument(
        "name", help="attack1..attack6, multi, hybrid"
    )
    attack.add_argument(
        "--duration", type=float, default=60.0, help="attack window (virtual s)"
    )
    attack.set_defaults(func=_cmd_attack)

    census = sub.add_parser("census", help="the Fig. 2 corpus census")
    census.add_argument("--seed", type=int, default=7)
    census.set_defaults(func=_cmd_census)

    drain = sub.add_parser("drain", help="the Fig. 3 battery study")
    drain.set_defaults(func=_cmd_drain)

    dump = sub.add_parser("dumpsys", help="dump a demo device's state")
    dump.set_defaults(func=_cmd_dumpsys)

    trace = sub.add_parser("trace", help="capture a device trace to JSON")
    trace.add_argument("name", help="attack1..attack6, multi, hybrid")
    trace.add_argument("--duration", type=float, default=60.0)
    trace.add_argument("--out", default="", help="write the JSON trace here")
    trace.set_defaults(func=_cmd_trace)

    chains = sub.add_parser("chains", help="attack-graph analysis of a run")
    chains.add_argument("name", help="attack1..attack6, multi, hybrid")
    chains.add_argument("--duration", type=float, default=60.0)
    chains.set_defaults(func=_cmd_chains)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)

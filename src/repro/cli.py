"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiments [NAME ...]`` — regenerate evaluation tables/figures
  through the registry + parallel engine (default: all, in paper order;
  ``--only fig9,fig10`` selects, ``--parallel N`` fans out,
  ``--cache-dir``/``--no-cache``/``--refresh`` control the result cache,
  ``--save DIR`` writes text artifacts plus ``manifest.json``);
* ``check`` — fuzz generated device scenarios against the conformance
  oracles (``--fuzz N --seed S --jobs J``; ``--corpus DIR`` shrinks
  failures into a replayable corpus, ``--replay FILE`` re-runs one
  corpus entry, ``--save DIR`` writes ``manifest.json`` +
  ``BENCH_fuzz.json``);
* ``bench [NAME ...]`` — run named performance benchmarks through the
  registry + engine, write schema-versioned ``BENCH.json``
  (``--out FILE``), and optionally gate against a committed baseline
  (``--compare BASELINE --max-regress 1.25`` exits 1 on regression;
  ``--write-baseline FILE`` records a new baseline, ``--list`` shows
  the registry);
* ``attack NAME`` — run one attack scenario and print the Android vs
  E-Android views plus the detector's verdict (``--trace-out FILE``
  additionally writes a Chrome trace-event JSON of the run,
  ``--telemetry`` prints the event-bus metrics summary);
* ``census [--seed N]`` — the Fig. 2 corpus census;
* ``drain`` — the Fig. 3 battery study;
* ``dumpsys`` — boot a demo device, run scene #1, dump all services;
* ``trace NAME --out FILE`` — run an attack, capture the device trace to
  JSON, and verify the offline analyzer reproduces the live report
  (``--trace-out FILE`` writes the Chrome trace-event view,
  ``--telemetry`` prints bus metrics);
* ``serve`` — the long-lived energy query service: ``--batch PATH``
  ingests traces (file / JSONL stream / directory / check corpus),
  ``--queries FILE`` answers a JSONL query stream in one shot,
  ``--daemon`` serves JSONL queries from stdin to stdout;
  ``--workers N`` shards sessions over engine worker processes,
  ``--queue``/``--burst`` control admission, ``--save DIR`` writes
  ``manifest.json`` + ``responses.jsonl``; ``--store DIR`` runs the
  service against an artifact store (digest-memoized corpus replay,
  persisted sessions), ``--spill`` releases ingested traces to the
  store, ``--restore`` re-registers previously persisted sessions;
* ``store`` — inspect/gc/migrate/add/verify a content-addressed
  artifact store (``python -m repro store inspect --store DIR``; see
  ``docs/STORAGE.md``);
* ``chains NAME`` — run an attack and print the attack-graph analysis.

Observability flags are uniform: every run-producing subcommand takes
``--telemetry`` (print/collect event-bus metrics) and ``--trace-out
FILE`` (write a Chrome trace-event JSON).  The pre-normalization
spellings ``--bus-stats`` and ``--chrome-trace`` remain as hidden
aliases.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .exec import EngineConfig, ExperimentEngine, write_manifest
    from .experiments.registry import (
        UnknownExperimentError,
        available_names,
        load_registry,
        resolve_selection,
    )
    from .experiments.runner import save_outcomes

    load_registry()
    names = list(args.names)
    if args.only:
        names += [n.strip() for n in args.only.split(",") if n.strip()]
    try:
        specs = resolve_selection(names)
    except UnknownExperimentError as exc:
        print(str(exc), file=sys.stderr)
        print(f"available: {', '.join(available_names())}", file=sys.stderr)
        return 2
    if args.list:
        for spec in specs:
            print(f"{spec.name:<12} {spec.description}")
        return 0

    engine = ExperimentEngine(
        EngineConfig(
            parallel=args.parallel,
            cache_dir=args.cache_dir or None,
            use_cache=not args.no_cache,
            refresh=args.refresh,
            telemetry=args.telemetry,
            verbose=args.verbose,
        )
    )
    recorder = None
    trace_out = _trace_out_if_serial(args, args.parallel)
    if trace_out:
        from .telemetry import capture

        with capture() as recorder:
            run = engine.run([spec.name for spec in specs])
    else:
        run = engine.run([spec.name for spec in specs])
    for result in run.results:
        print(f"\n=== {result.name} ===")
        print(result.outcome.text)

    if args.telemetry:
        for result in run.results:
            stats = result.telemetry or {}
            print(
                f"[telemetry] {result.name}: "
                f"{stats.get('total_events', 0)} event(s) "
                f"across {stats.get('buses', 0)} bus(es)"
            )

    outcomes = run.outcomes()
    failed = [o.name for o in outcomes if not o.claim_holds]
    stats = run.cache_stats
    print(
        f"\n{len(outcomes) - len(failed)}/{len(outcomes)} claims hold; "
        f"cache: {stats.hits} hit(s), {stats.misses} miss(es); "
        f"wall time {run.total_wall_time_s:.2f}s"
    )
    if failed:
        print("deviations:", ", ".join(failed))
    if args.save:
        written = save_outcomes(outcomes, args.save)
        written.append(str(write_manifest(run, args.save)))
        print(f"wrote {len(written)} artifact files to {args.save}")
    _write_recorded_trace(trace_out, recorder)
    return 0


def _trace_out_if_serial(args: argparse.Namespace, workers: int) -> str:
    """``--trace-out`` only works when events stay in this process."""
    if not args.trace_out:
        return ""
    if workers > 1:
        print(
            "note: --trace-out needs a serial run (worker processes keep "
            "their events); skipping trace capture",
            file=sys.stderr,
        )
        return ""
    return args.trace_out


def _write_recorded_trace(trace_out: str, recorder) -> None:
    """Write a capture()'d run's events as a Chrome trace, if asked."""
    if not trace_out or recorder is None:
        return
    from .telemetry import write_chrome_trace

    path = write_chrome_trace(trace_out, recorder.events)
    print(f"chrome trace written to {path} ({len(recorder.events)} event(s))")


def _cmd_check(args: argparse.Namespace) -> int:
    from .check import CampaignConfig, load_corpus_entry, run_campaign, run_scenario
    from .check.scenario import Scenario

    if args.replay:
        document = load_corpus_entry(args.replay)
        scenario = Scenario.from_dict(document["scenario"])
        report = run_scenario(scenario, stride=args.stride, metamorphic=not args.no_metamorphic)
        print(
            f"replayed {args.replay}: seed {scenario.seed}, "
            f"{len(scenario.ops)} op(s), "
            f"{'PASS' if report.passed else 'FAIL'}"
        )
        for violation in report.violations:
            print(f"  {violation}")
        chaos_ok = True
        if isinstance(document.get("chaos"), dict):
            from .faults import replay_chaos_entry

            soak = replay_chaos_entry(args.replay)
            chaos_ok = soak.passed
            print(
                f"chaos replay (seed {soak.seed}): "
                f"{sum(soak.injected.values())} fault(s) injected, "
                f"{soak.ok_identical}/{soak.queries} quer(ies) "
                f"byte-identical, {soak.typed_errors} typed error(s), "
                f"{'PASS' if soak.passed else 'FAIL'}"
            )
            for problem in soak.problems:
                print(f"  {problem}")
        return 0 if report.passed and chaos_ok else 1

    config = CampaignConfig(
        fuzz=args.fuzz,
        seed=args.seed,
        jobs=args.jobs,
        ops=args.ops,
        stride=args.stride,
        metamorphic=not args.no_metamorphic,
        corpus_dir=args.corpus or None,
        save_dir=args.save or None,
        cache_dir=args.cache_dir or None,
        use_cache=not args.no_cache,
        refresh=args.refresh,
        telemetry=args.telemetry,
        verbose=args.verbose,
        chaos=args.chaos,
        faults_path=args.faults or None,
    )
    recorder = None
    trace_out = _trace_out_if_serial(args, args.jobs)
    if trace_out:
        from .telemetry import capture

        with capture() as recorder:
            report = run_campaign(config)
    else:
        report = run_campaign(config)
    print(report.render_text())
    stats = report.cache_stats
    print(
        f"cache: {stats.get('hits', 0)} hit(s), "
        f"{stats.get('misses', 0)} miss(es)"
    )
    _write_recorded_trace(trace_out, recorder)
    return 0 if report.passed else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        SuiteConfig,
        UnknownBenchError,
        available_bench_names,
        compare_benchmarks,
        load_bench_json,
        resolve_bench_selection,
        run_suite,
        write_bench_json,
    )

    try:
        specs = resolve_bench_selection(list(args.names) or None)
    except UnknownBenchError as exc:
        print(str(exc), file=sys.stderr)
        print(f"available: {', '.join(available_bench_names())}", file=sys.stderr)
        return 2
    if args.list:
        for spec in specs:
            print(f"{spec.name:<22} [{spec.kind}] {spec.description}")
        return 0

    report = run_suite(
        SuiteConfig(
            names=[spec.name for spec in specs],
            repeats=args.repeats,
            parallel=args.parallel,
        )
    )
    print(report.render_text())
    if not report.passed:
        failed = [r.name for r in report.results if not r.ok]
        print(f"benchmark failure(s): {', '.join(failed)}", file=sys.stderr)
        return 1

    if args.out:
        print(f"wrote {write_bench_json(report, args.out)}")
    if args.write_baseline:
        print(f"baseline written to {write_bench_json(report, args.write_baseline)}")

    if args.compare:
        try:
            baseline = load_bench_json(args.compare)
        except (OSError, ValueError) as exc:
            print(f"cannot load baseline: {exc}", file=sys.stderr)
            return 2
        gate = compare_benchmarks(
            report.to_dict(), baseline, max_regress=args.max_regress
        )
        print()
        print(gate.render_text())
        return 0 if gate.passed else 1
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from .core import CollateralEnergyDetector

    runners = _attack_runners()
    if args.name not in runners:
        print(f"unknown attack {args.name!r}; available: {', '.join(runners)}",
              file=sys.stderr)
        return 2
    run, recorder = _run_with_telemetry(runners[args.name], args)
    print(f"--- stock Android view ({run.name}) ---")
    print(run.android_report().render_text())
    print("\n--- E-Android view ---")
    print(run.eandroid_report().render_text())
    print("\n--- detector ---")
    detector = CollateralEnergyDetector(run.system, run.eandroid.accounting)
    print(detector.render_text(run.start, run.end))
    _finish_telemetry(run, recorder, args)
    return 0


def _run_with_telemetry(runner, args):
    """Run a scenario, recording bus events when the flags ask for it."""
    from .telemetry import capture

    if getattr(args, "trace_out", "") or getattr(args, "telemetry", False):
        with capture() as recorder:
            run = runner(args.duration)
        return run, recorder
    return runner(args.duration), None


def _finish_telemetry(run, recorder, args) -> None:
    """Write ``--trace-out`` / print ``--telemetry`` for a recorded run."""
    from .telemetry import render_metrics_text, write_chrome_trace

    if recorder is None:
        return
    if getattr(args, "trace_out", ""):
        path = write_chrome_trace(
            args.trace_out,
            recorder.events,
            labels=_uid_labels(run.system),
            end_time=run.system.now,
        )
        print(f"\nchrome trace written to {path} "
              f"({len(recorder.events)} event(s))")
    if getattr(args, "telemetry", False):
        print()
        print(render_metrics_text(recorder.stats()))


def _uid_labels(system) -> dict:
    """uid -> display label for trace track names."""
    return {
        app.uid: app.label
        for app in system.package_manager.installed_apps()
        if app.uid is not None
    }


def _attack_runners():
    from .workloads import ALL_ATTACKS, run_hybrid_attack, run_multi_attack

    runners = dict(ALL_ATTACKS)
    runners["multi"] = run_multi_attack
    runners["hybrid"] = run_hybrid_attack
    return runners


def _cmd_trace(args: argparse.Namespace) -> int:
    from .offline import OfflineAnalyzer, DeviceTrace, capture_trace

    runners = _attack_runners()
    if args.name not in runners:
        print(f"unknown attack {args.name!r}; available: {', '.join(runners)}",
              file=sys.stderr)
        return 2
    run, recorder = _run_with_telemetry(runners[args.name], args)
    trace = capture_trace(run.system, run.eandroid)
    if args.out:
        from pathlib import Path

        binary = args.binary or Path(args.out).suffix.lower() in (".bin", ".rtb")
        if binary:
            path = trace.save(args.out, binary=True)
        else:
            path = Path(args.out)
            path.write_text(trace.to_json(indent=2), encoding="utf-8")
        print(
            f"trace written to {path} ({path.stat().st_size} bytes, "
            f"{'binary' if binary else 'json'})"
        )
        restored = DeviceTrace.load(path)
    else:
        restored = DeviceTrace.from_json(trace.to_json(indent=2))
    analyzer = OfflineAnalyzer(restored)
    print("\n--- offline E-Android reconstruction ---")
    print(analyzer.eandroid_report(run.start, run.end).render_text())
    _finish_telemetry(run, recorder, args)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    recorder = None
    if args.trace_out or args.telemetry:
        from .telemetry import capture

        with capture() as recorder:
            code = _serve_run(args)
    else:
        code = _serve_run(args)
    if recorder is not None:
        _write_recorded_trace(args.trace_out, recorder)
        if args.telemetry:
            from .telemetry import render_metrics_text

            print()
            print(render_metrics_text(recorder.stats()))
    return code


def _serve_run(args: argparse.Namespace) -> int:
    """The serve command body (telemetry capture wraps this)."""
    import json
    from pathlib import Path

    from .offline import TraceFormatError
    from .serve import (
        STATUS_ERROR,
        STATUS_SHED,
        ProfilingService,
        ProtocolError,
        ServiceClient,
        ServiceConfig,
        parse_queries_jsonl,
        responses_to_jsonl,
    )

    service = ProfilingService(
        ServiceConfig(
            max_queue=args.queue,
            cache_entries=args.cache_entries,
            workers=args.workers,
            telemetry=True,
            store_dir=args.store or None,
            spill=args.spill,
        )
    )
    client = ServiceClient(service)
    if args.restore:
        if not args.store:
            print("--restore needs --store DIR", file=sys.stderr)
            return 2
        restored = service.restore_sessions()
        print(
            f"restored {len(restored)} session(s) from {args.store}",
            file=sys.stderr if args.daemon else sys.stdout,
        )
    if args.batch:
        try:
            names = service.ingest(args.batch)
        except (TraceFormatError, FileNotFoundError) as exc:
            print(f"cannot ingest {args.batch}: {exc}", file=sys.stderr)
            return 2
        # In daemon mode stdout carries the JSONL responses, nothing else.
        print(
            f"ingested {len(names)} session(s) from {args.batch}",
            file=sys.stderr if args.daemon else sys.stdout,
        )

    responses = []
    exit_code = 0
    if args.queries:
        try:
            lines = Path(args.queries).read_text(encoding="utf-8").splitlines()
            queries = parse_queries_jsonl(lines)
        except (OSError, ProtocolError) as exc:
            print(f"cannot load queries: {exc}", file=sys.stderr)
            return 2
        expanded = client.expand(queries)
        responses = service.serve_batch(expanded, burst=args.burst)
        answered = sum(r.ok for r in responses)
        shed = sum(r.status == STATUS_SHED for r in responses)
        errors = sum(r.status == STATUS_ERROR for r in responses)
        hit_rate = service.cache.hit_rate
        print(
            f"served {len(responses)} quer(ies): {answered} answered, "
            f"{shed} shed, {errors} error(s); "
            f"cache hit-rate {hit_rate:.1%}"
        )
        if errors:
            exit_code = 1
    elif args.listen:
        code = _serve_listen(service, args)
        if code != 0:
            return code
    elif args.daemon:
        _serve_daemon(service, client)

    manifest = service.manifest()
    if args.save:
        outdir = Path(args.save)
        outdir.mkdir(parents=True, exist_ok=True)
        (outdir / "manifest.json").write_text(
            json.dumps(manifest, indent=2), encoding="utf-8"
        )
        written = ["manifest.json"]
        if responses:
            (outdir / "responses.jsonl").write_text(
                responses_to_jsonl(responses), encoding="utf-8"
            )
            written.append("responses.jsonl")
        print(
            f"wrote {' + '.join(written)} to {outdir}",
            file=sys.stderr if args.daemon else sys.stdout,
        )
    if args.fail_on_shed and manifest["stats"]["shed"] > 0:
        print(
            f"--fail-on-shed: {manifest['stats']['shed']} quer(ies) shed",
            file=sys.stderr,
        )
        return 1
    return exit_code


def _serve_daemon(service, client) -> None:
    """JSONL request/response loop on stdin/stdout (until EOF).

    A line carrying an ``op`` field is a fleet aggregate
    (:class:`~repro.aggregate.AggregateRequest`); anything else is a
    per-session :class:`~repro.serve.QueryRequest`.  Lines longer than
    ``MAX_LINE_BYTES`` and lines that fail to parse both come back as
    typed ``error`` responses — the same degradation contract as the
    TCP front-end (both go through ``decode_request_line``).
    """
    import json

    from .serve import MAX_LINE_BYTES, decode_request_line

    seq = 0
    for raw in sys.stdin:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        seq += 1
        if len(raw.encode("utf-8")) > MAX_LINE_BYTES:
            sys.stdout.write(
                json.dumps(
                    {
                        "id": seq,
                        "status": "error",
                        "error": (
                            "line exceeds the maximum line size "
                            f"({MAX_LINE_BYTES} bytes)"
                        ),
                    }
                )
                + "\n"
            )
            sys.stdout.flush()
            continue
        decoded = decode_request_line(line, default_id=seq)
        if decoded.kind == "error":
            sys.stdout.write(
                json.dumps(
                    {"id": decoded.id, "status": "error", "error": decoded.error}
                )
                + "\n"
            )
            sys.stdout.flush()
            continue
        if decoded.kind == "aggregate":
            response = service.aggregate(decoded.aggregate)
            out = {"id": decoded.id}
            out.update(response.to_dict())
            sys.stdout.write(json.dumps(out) + "\n")
            sys.stdout.flush()
            continue
        for expanded in client.expand([decoded.query]):
            response = service.submit(expanded)
            sys.stdout.write(json.dumps(response.to_dict()) + "\n")
        sys.stdout.flush()


def _serve_listen(service, args: argparse.Namespace) -> int:
    """Run the asyncio TCP front-end until SIGINT/SIGTERM."""
    import asyncio
    import json
    import signal

    from .serve import MAX_LINE_BYTES, NetConfig, NetServer

    host, _, port_text = args.listen.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not host or not 0 <= port <= 65535:
        print(f"--listen needs HOST:PORT, got {args.listen!r}", file=sys.stderr)
        return 2

    config = NetConfig(
        host=host,
        port=port,
        max_line_bytes=(
            args.max_line if args.max_line is not None else MAX_LINE_BYTES
        ),
        max_connections=args.max_connections,
        max_pending=args.queue,
        inflight_per_connection=args.inflight,
        deadline_s=args.deadline,
    )

    async def run() -> None:
        server = NetServer(service, config)
        await server.start()
        bound_host, bound_port = server.address
        # stderr: stdout may be piped, and the port matters for port 0.
        print(f"listening on {bound_host}:{bound_port}", file=sys.stderr, flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        await stop.wait()
        print(
            "shutting down: flushing in-flight responses", file=sys.stderr, flush=True
        )
        await server.shutdown()
        print(
            "net stats: " + json.dumps(server.stats.as_dict(), sort_keys=True),
            file=sys.stderr,
            flush=True,
        )

    asyncio.run(run())
    return 0


def _cmd_aggregate(args: argparse.Namespace) -> int:
    """One fleet aggregate over ingested/restored sessions."""
    import json
    from pathlib import Path

    from .aggregate import AggregateRequest, AggregateRequestError
    from .offline import TraceFormatError
    from .reports import UnknownBackendError
    from .serve import ProfilingService, ServiceConfig

    service = ProfilingService(
        ServiceConfig(
            workers=args.workers,
            telemetry=False,
            store_dir=args.store or None,
        )
    )
    if args.restore:
        if not args.store:
            print("--restore needs --store DIR", file=sys.stderr)
            return 2
        restored = service.restore_sessions()
        print(f"restored {len(restored)} session(s)", file=sys.stderr)
    if args.batch:
        try:
            names = service.ingest(args.batch)
        except (TraceFormatError, FileNotFoundError) as exc:
            print(f"cannot ingest {args.batch}: {exc}", file=sys.stderr)
            return 2
        print(f"ingested {len(names)} session(s)", file=sys.stderr)
    if not service.sessions:
        print("no sessions: pass --batch and/or --store --restore", file=sys.stderr)
        return 2

    try:
        request = AggregateRequest(
            backend=args.backend,
            op=args.op,
            group_by=args.group_by,
            sessions=tuple(args.sessions) if args.sessions else ("*",),
            start=args.start,
            end=args.end,
            k=args.k,
            bins=args.bins,
            bin_width=args.bin_width,
        )
    except (AggregateRequestError, UnknownBackendError) as exc:
        print(f"bad aggregate request: {exc}", file=sys.stderr)
        return 2

    if args.chaos or args.faults:
        from .faults import FaultPlan, activate

        plan = FaultPlan.load(args.faults) if args.faults else FaultPlan.mixed()
        with activate(plan, args.fault_seed):
            response = service.aggregate(request)
    else:
        response = service.aggregate(request)

    payload = response.payload or {}
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(text + "\n", encoding="utf-8")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)
    missing = payload.get("missing_sessions", [])
    print(
        f"aggregated {len(payload.get('sessions', []))} session(s) "
        f"({response.memoized} memoized, {response.computed} computed"
        + (f", {response.shards} shard(s)" if response.shards else "")
        + ")"
        + (f"; partial — missing: {', '.join(missing)}" if missing else ""),
        file=sys.stderr,
    )
    if missing and args.fail_on_partial:
        return 1
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    import json

    from .store import (
        ArtifactStore,
        CodecError,
        StoreError,
        UnknownCodecError,
        add_file,
        gc_store,
        inspect_store,
        migrate_store,
    )

    store = ArtifactStore(args.store or None)
    try:
        if args.action == "inspect":
            print(json.dumps(inspect_store(store), indent=2, sort_keys=True))
            return 0
        if args.action == "gc":
            report = gc_store(store, dry_run=args.dry_run)
            verb = "would remove" if args.dry_run else "removed"
            print(
                f"scanned {report.scanned} object(s): {report.live} live, "
                f"{verb} {report.removed} ({report.freed_bytes} bytes)"
            )
            return 0
        if args.action == "migrate":
            result = migrate_store(
                store, args.to_codec, kinds=args.kind or None
            )
            print(
                f"migrated {len(result['migrated'])} artifact(s) to "
                f"{result['to_codec']!r} ({result['skipped']} already current, "
                f"{result['refs_repointed']} ref(s) repointed)"
            )
            for row in result["migrated"]:
                print(f"  {row['from'][:12]} -> {row['to'][:12]}")
            return 0
        if args.action == "add":
            result = add_file(
                store,
                args.file,
                args.codec,
                ref=args.ref or None,
                namespace=args.namespace,
            )
            print(json.dumps(result, indent=2, sort_keys=True))
            return 0
        if args.action == "verify":
            problems = store.verify()
            stats = store.stats()
            if problems:
                for problem in problems:
                    print(problem, file=sys.stderr)
                print(f"{len(problems)} problem(s) found", file=sys.stderr)
                return 1
            print(
                f"ok: {stats['objects']} object(s), {stats['refs']} ref(s), "
                f"{stats['bytes']} bytes"
            )
            return 0
    except (StoreError, CodecError, UnknownCodecError, OSError, ValueError) as exc:
        print(f"store {args.action} failed: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled store action {args.action!r}")


def _cmd_chains(args: argparse.Namespace) -> int:
    from .core import AttackGraphAnalyzer

    runners = _attack_runners()
    if args.name not in runners:
        print(f"unknown attack {args.name!r}; available: {', '.join(runners)}",
              file=sys.stderr)
        return 2
    run = runners[args.name](args.duration)
    analyzer = AttackGraphAnalyzer(run.eandroid.accounting)
    print(analyzer.render_text(system=run.system))
    return 0


def _cmd_census(args: argparse.Namespace) -> int:
    from .apps import generate_corpus, run_census

    print(run_census(generate_corpus(seed=args.seed)).render_text())
    return 0


def _cmd_drain(args: argparse.Namespace) -> int:
    from .experiments import run_fig3

    print(run_fig3().render_text())
    return 0


def _cmd_dumpsys(args: argparse.Namespace) -> int:
    from .android import dumpsys
    from .workloads import run_scene1

    run = run_scene1()
    print(dumpsys(run.system))
    return 0


def _add_observability_flags(
    sub: argparse.ArgumentParser, telemetry_help: str, trace_out_help: str
) -> None:
    """The uniform ``--telemetry`` / ``--trace-out`` pair.

    Every run-producing subcommand spells these two the same way; the
    pre-normalization spellings (``--bus-stats``, ``--chrome-trace``)
    stay accepted as hidden aliases so existing scripts keep working.
    """
    sub.add_argument("--telemetry", action="store_true", help=telemetry_help)
    sub.add_argument(
        "--bus-stats",
        dest="telemetry",
        action="store_true",
        help=argparse.SUPPRESS,
    )
    sub.add_argument("--trace-out", default="", help=trace_out_help)
    sub.add_argument(
        "--chrome-trace", dest="trace_out", default="", help=argparse.SUPPRESS
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="E-Android reproduction: run experiments, attacks, and tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    experiments = sub.add_parser(
        "experiments", help="regenerate evaluation tables/figures"
    )
    experiments.add_argument("names", nargs="*", help="fig1..fig11, efficiency")
    experiments.add_argument(
        "--only",
        default="",
        help="comma-separated selection, e.g. --only fig9,fig10",
    )
    experiments.add_argument(
        "--parallel",
        type=int,
        default=1,
        help="run up to N experiments in worker processes (default: serial)",
    )
    experiments.add_argument(
        "--cache-dir",
        default="",
        help="result cache directory (default: ~/.cache/repro or $REPRO_CACHE_DIR)",
    )
    experiments.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the on-disk result cache",
    )
    experiments.add_argument(
        "--refresh",
        action="store_true",
        help="recompute every experiment and overwrite its cache entry",
    )
    experiments.add_argument(
        "--save", default="", help="write text artifacts + manifest.json here"
    )
    _add_observability_flags(
        experiments,
        telemetry_help="collect per-experiment event-bus stats into the manifest",
        trace_out_help="write a Chrome trace-event JSON (serial runs only)",
    )
    experiments.add_argument(
        "--verbose",
        action="store_true",
        help="print warnings (e.g. corrupt cache entries) to stderr",
    )
    experiments.add_argument(
        "--list", action="store_true", help="list the selection and exit"
    )
    experiments.set_defaults(func=_cmd_experiments)

    check = sub.add_parser(
        "check", help="fuzz the device against the conformance oracles"
    )
    check.add_argument(
        "--fuzz", type=int, default=50, help="number of scenarios (default 50)"
    )
    check.add_argument(
        "--seed", type=int, default=7, help="campaign base seed (default 7)"
    )
    check.add_argument(
        "--jobs", type=int, default=1, help="engine worker processes"
    )
    check.add_argument(
        "--ops", type=int, default=40, help="body ops per scenario (default 40)"
    )
    check.add_argument(
        "--stride",
        type=int,
        default=1,
        help="run step oracles every Nth op (default: every op)",
    )
    check.add_argument(
        "--no-metamorphic",
        action="store_true",
        help="skip the replay-based metamorphic oracles (3x faster)",
    )
    check.add_argument(
        "--corpus",
        default="",
        help="write shrunk failing scripts into this corpus directory",
    )
    check.add_argument(
        "--replay",
        default="",
        help="replay one corpus entry instead of fuzzing",
    )
    check.add_argument(
        "--save", default="", help="write manifest.json + BENCH_fuzz.json here"
    )
    check.add_argument(
        "--cache-dir",
        default="",
        help="result cache directory (default: ~/.cache/repro or $REPRO_CACHE_DIR)",
    )
    check.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the on-disk result cache",
    )
    check.add_argument(
        "--refresh",
        action="store_true",
        help="recompute every batch and overwrite its cache entry",
    )
    _add_observability_flags(
        check,
        telemetry_help="collect per-batch event-bus stats into the manifest",
        trace_out_help="write a Chrome trace-event JSON (serial runs only)",
    )
    check.add_argument(
        "--verbose",
        action="store_true",
        help="print warnings (e.g. corrupt cache entries) to stderr",
    )
    check.add_argument(
        "--chaos",
        action="store_true",
        help=(
            "run the campaign twice — fault-free, then under a "
            "deterministic fault plan — and require byte-identical "
            "verdicts from every run that completes"
        ),
    )
    check.add_argument(
        "--faults",
        default="",
        help="fault plan JSON for --chaos (default: the stock 5%% mixed plan)",
    )
    check.set_defaults(func=_cmd_check)

    bench = sub.add_parser(
        "bench", help="run performance benchmarks / gate against a baseline"
    )
    bench.add_argument(
        "names", nargs="*", help="benchmark names (default: the full registry)"
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="override every benchmark's repeat count",
    )
    bench.add_argument(
        "--parallel",
        type=int,
        default=1,
        help="run up to N benchmarks in worker processes (default: serial)",
    )
    bench.add_argument(
        "--out", default="", help="write the BENCH.json document here"
    )
    bench.add_argument(
        "--compare",
        default="",
        help="baseline BENCH.json to gate against (exit 1 on regression)",
    )
    bench.add_argument(
        "--max-regress",
        type=float,
        default=1.25,
        help="max allowed calibration-normalized slowdown (default 1.25)",
    )
    bench.add_argument(
        "--write-baseline",
        default="",
        help="record this run as the new baseline BENCH.json",
    )
    bench.add_argument(
        "--list", action="store_true", help="list the selection and exit"
    )
    bench.set_defaults(func=_cmd_bench)

    attack = sub.add_parser("attack", help="run one attack scenario")
    attack.add_argument(
        "name", help="attack1..attack6, multi, hybrid"
    )
    attack.add_argument(
        "--duration", type=float, default=60.0, help="attack window (virtual s)"
    )
    _add_observability_flags(
        attack,
        telemetry_help="print event-bus metrics",
        trace_out_help="write a Chrome trace-event JSON here",
    )
    attack.set_defaults(func=_cmd_attack)

    census = sub.add_parser("census", help="the Fig. 2 corpus census")
    census.add_argument("--seed", type=int, default=7)
    census.set_defaults(func=_cmd_census)

    drain = sub.add_parser("drain", help="the Fig. 3 battery study")
    drain.set_defaults(func=_cmd_drain)

    dump = sub.add_parser("dumpsys", help="dump a demo device's state")
    dump.set_defaults(func=_cmd_dumpsys)

    trace = sub.add_parser("trace", help="capture a device trace to a file")
    trace.add_argument("name", help="attack1..attack6, multi, hybrid")
    trace.add_argument("--duration", type=float, default=60.0)
    trace.add_argument(
        "--out",
        default="",
        help="write the trace here (.bin/.rtb suffixes pick the binary format)",
    )
    trace.add_argument(
        "--binary",
        action="store_true",
        help="force the columnar binary format regardless of suffix",
    )
    _add_observability_flags(
        trace,
        telemetry_help="print event-bus metrics",
        trace_out_help="write a Chrome trace-event JSON here",
    )
    trace.set_defaults(func=_cmd_trace)

    serve = sub.add_parser(
        "serve", help="long-lived energy query service over ingested traces"
    )
    serve.add_argument(
        "--batch",
        default="",
        help="ingest traces from this file / JSONL stream / directory",
    )
    serve.add_argument(
        "--queries",
        default="",
        help="answer this JSONL query stream in one shot and exit",
    )
    serve.add_argument(
        "--daemon",
        action="store_true",
        help="serve JSONL queries from stdin to stdout until EOF",
    )
    serve.add_argument(
        "--listen",
        default="",
        metavar="HOST:PORT",
        help="serve the JSONL protocol over TCP (port 0: ephemeral)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        help="per-query deadline in seconds for --listen (default 30)",
    )
    serve.add_argument(
        "--max-line",
        type=int,
        default=None,
        help="largest accepted request line in bytes (default 1 MiB)",
    )
    serve.add_argument(
        "--max-connections",
        type=int,
        default=64,
        help="concurrent TCP connection cap for --listen (default 64)",
    )
    serve.add_argument(
        "--inflight",
        type=int,
        default=32,
        help="per-connection in-flight query cap for --listen (default 32)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard sessions over N engine worker processes (default: in-process)",
    )
    serve.add_argument(
        "--queue",
        type=int,
        default=256,
        help="admission-control queue depth (default 256)",
    )
    serve.add_argument(
        "--burst",
        type=int,
        default=None,
        help="arrival burst size (default: the queue depth; larger bursts shed)",
    )
    serve.add_argument(
        "--cache-entries",
        type=int,
        default=512,
        help="result-LRU capacity (default 512)",
    )
    serve.add_argument(
        "--save", default="", help="write manifest.json + responses.jsonl here"
    )
    serve.add_argument(
        "--fail-on-shed",
        action="store_true",
        help="exit 1 if any query was shed (CI smoke gate)",
    )
    serve.add_argument(
        "--store",
        default="",
        help="artifact-store directory: memoize corpus replay + persist sessions",
    )
    serve.add_argument(
        "--spill",
        action="store_true",
        help="release ingested traces to the store; fault in lazily on query",
    )
    serve.add_argument(
        "--restore",
        action="store_true",
        help="re-register sessions persisted in --store before ingesting",
    )
    _add_observability_flags(
        serve,
        telemetry_help="print event-bus metrics for the serving run",
        trace_out_help="write a Chrome trace-event JSON of the serving run",
    )
    serve.set_defaults(func=_cmd_serve)

    aggregate = sub.add_parser(
        "aggregate",
        help="one fleet aggregate (scatter-gather) across ingested sessions",
    )
    aggregate.add_argument(
        "--batch",
        default="",
        help="ingest traces from this file / JSONL stream / directory",
    )
    aggregate.add_argument(
        "--store",
        default="",
        help="artifact-store directory: memoize per-session partials",
    )
    aggregate.add_argument(
        "--restore",
        action="store_true",
        help="re-register sessions persisted in --store before aggregating",
    )
    aggregate.add_argument(
        "--backend",
        default="eandroid",
        help="report backend valuing the rows (default eandroid)",
    )
    aggregate.add_argument(
        "--op",
        default="sum",
        choices=["sum", "mean", "topk", "histogram"],
        help="reduction operator (default sum)",
    )
    aggregate.add_argument(
        "--group-by",
        default="owner",
        choices=["owner", "category", "mechanism"],
        help="grouping dimension (default owner)",
    )
    aggregate.add_argument(
        "--sessions",
        nargs="*",
        default=None,
        metavar="PATTERN",
        help="fnmatch session selector(s) (default: '*', the whole fleet)",
    )
    aggregate.add_argument(
        "--start", type=float, default=0.0, help="window start (seconds)"
    )
    aggregate.add_argument(
        "--end", type=float, default=None, help="window end (default: trace end)"
    )
    aggregate.add_argument(
        "--k", type=int, default=10, help="groups to keep for --op topk"
    )
    aggregate.add_argument(
        "--bins", type=int, default=16, help="bin count for --op histogram"
    )
    aggregate.add_argument(
        "--bin-width",
        type=float,
        default=1.0,
        help="bin width in joules for --op histogram",
    )
    aggregate.add_argument(
        "--workers",
        type=int,
        default=1,
        help="scatter shards over N engine worker processes",
    )
    aggregate.add_argument(
        "--out", default="", help="write the repro.aggregate/1 payload here"
    )
    aggregate.add_argument(
        "--chaos",
        action="store_true",
        help="arm the stock mixed fault plan around the aggregate",
    )
    aggregate.add_argument(
        "--faults",
        default="",
        help="fault plan JSON to arm instead of the stock mixed plan",
    )
    aggregate.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="rng seed for the armed fault plan (default 0)",
    )
    aggregate.add_argument(
        "--fail-on-partial",
        action="store_true",
        help="exit 1 if any selected session is missing (CI smoke gate)",
    )
    aggregate.set_defaults(func=_cmd_aggregate)

    store = sub.add_parser(
        "store", help="inspect/gc/migrate a content-addressed artifact store"
    )
    store_sub = store.add_subparsers(dest="action", required=True)
    for action_name, action_help in (
        ("inspect", "print the store's artifacts, refs, and stats as JSON"),
        ("gc", "delete every object no ref reaches"),
        ("migrate", "transcode stored artifacts to another codec"),
        ("add", "validate a file through a codec and add it to the store"),
        ("verify", "re-hash every object and cross-check refs"),
    ):
        action = store_sub.add_parser(action_name, help=action_help)
        action.add_argument(
            "--store",
            default="",
            help="store directory (default: $REPRO_STORE_DIR or "
            "~/.local/share/repro/store)",
        )
        action.set_defaults(func=_cmd_store)
        if action_name == "gc":
            action.add_argument(
                "--dry-run",
                action="store_true",
                help="report what would be removed without deleting",
            )
        elif action_name == "migrate":
            action.add_argument(
                "--to-codec",
                required=True,
                help="target codec name (e.g. trace-bin)",
            )
            action.add_argument(
                "--kind",
                action="append",
                default=[],
                help="restrict to artifact kind(s) (default: the codec's kind)",
            )
        elif action_name == "add":
            action.add_argument("file", help="file to add")
            action.add_argument(
                "--codec",
                required=True,
                help="codec to validate/encode with (json, trace-json, "
                "trace-bin, corpus-json)",
            )
            action.add_argument(
                "--ref", default="", help="also create refs/<namespace>/<REF>"
            )
            action.add_argument(
                "--namespace", default="manual", help="ref namespace (default: manual)"
            )

    chains = sub.add_parser("chains", help="attack-graph analysis of a run")
    chains.add_argument("name", help="attack1..attack6, multi, hybrid")
    chains.add_argument("--duration", type=float, default=60.0)
    chains.set_defaults(func=_cmd_chains)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)

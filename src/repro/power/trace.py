"""Piecewise-constant power traces.

The hardware energy meter records, for every (owner, component) channel,
the full history of power-draw changes as a :class:`PowerTrace`.  Traces
answer the window-energy queries the profilers need: BatteryStats wants
"total energy of uid U", PowerTutor wants "screen energy during the
intervals U was foreground", and E-Android wants "energy of app B inside
the attack window [t0, t1)".

Window queries are O(log B) in the number of breakpoints B: alongside
the breakpoint arrays the trace maintains a cumulative-energy prefix-sum
array on append, so ``energy_j(start, end)`` is two ``bisect`` lookups
and a subtraction instead of a full breakpoint walk.  The original walk
survives as :meth:`naive_energy_j` — the differential oracle and the
benchmark registry hold the two implementations equal.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple


class PowerTrace:
    """History of a single channel's power draw over virtual time.

    The trace is a sequence of breakpoints ``(t_i, p_i)`` meaning the
    channel drew ``p_i`` milliwatts on ``[t_i, t_{i+1})``.  Appends must
    be time-ordered (equal times overwrite, last-write-wins, so several
    same-instant updates collapse to the final value).
    """

    __slots__ = ("_times", "_powers", "_cum_mj")

    def __init__(self) -> None:
        self._times: List[float] = []
        self._powers: List[float] = []
        # _cum_mj[i] = millijoules drawn over [t_0, t_i); the draw on the
        # final (open-ended) segment is integrated at query time.
        self._cum_mj: List[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def append(self, time: float, power_mw: float) -> bool:
        """Record that the draw becomes ``power_mw`` at ``time``.

        Returns True when the trace actually changed (the meter uses
        this to invalidate its memoized query caches).
        """
        if power_mw < 0:
            raise ValueError(f"negative power {power_mw!r} at t={time!r}")
        if self._times:
            last = self._times[-1]
            if time < last:
                raise ValueError(
                    f"trace appends must be ordered: got t={time!r} after {last!r}"
                )
            if time == last:
                # Same-instant overwrite: the prefix sums only cover up
                # to the last breakpoint, so no re-integration is needed.
                if self._powers[-1] == power_mw:
                    return False
                self._powers[-1] = power_mw
                return True
            if power_mw == self._powers[-1]:
                return False  # no change; keep the trace compact
            self._cum_mj.append(
                self._cum_mj[-1] + self._powers[-1] * (time - last)
            )
        else:
            self._cum_mj.append(0.0)
        self._times.append(time)
        self._powers.append(power_mw)
        return True

    def power_at(self, time: float) -> float:
        """Instantaneous draw at ``time`` (0 before the first breakpoint)."""
        index = bisect.bisect_right(self._times, time) - 1
        if index < 0:
            return 0.0
        return self._powers[index]

    @property
    def last_power(self) -> float:
        """Most recent draw (0 for an empty trace)."""
        return self._powers[-1] if self._powers else 0.0

    @property
    def last_time(self) -> Optional[float]:
        """Time of the latest breakpoint, or None for an empty trace."""
        return self._times[-1] if self._times else None

    def _cumulative_mj(self, time: float) -> float:
        """Millijoules drawn over [t_0, time) via the prefix sums."""
        index = bisect.bisect_right(self._times, time) - 1
        if index < 0:
            return 0.0
        return self._cum_mj[index] + self._powers[index] * (time - self._times[index])

    def energy_j(self, start: float, end: float) -> float:
        """Energy in joules drawn over ``[start, end)``.

        The draw after the final breakpoint is assumed to hold steady,
        which matches how the meter uses traces (it always appends a
        final breakpoint when asked to close out a measurement).
        """
        if end < start:
            raise ValueError(f"window end {end!r} before start {start!r}")
        if end == start or not self._times:
            return 0.0
        return (self._cumulative_mj(end) - self._cumulative_mj(start)) / 1000.0

    def naive_energy_j(self, start: float, end: float) -> float:
        """The pre-prefix-sum O(B) breakpoint walk, kept as the oracle
        (and benchmark baseline) for :meth:`energy_j`."""
        if end < start:
            raise ValueError(f"window end {end!r} before start {start!r}")
        if end == start or not self._times:
            return 0.0
        total_mj = 0.0  # milliwatt-seconds = millijoules
        index = max(0, bisect.bisect_right(self._times, start) - 1)
        for i in range(index, len(self._times)):
            seg_start = max(self._times[i], start)
            seg_end = self._times[i + 1] if i + 1 < len(self._times) else end
            seg_end = min(seg_end, end)
            if seg_end > seg_start:
                total_mj += self._powers[i] * (seg_end - seg_start)
            if seg_end >= end:
                break
        return total_mj / 1000.0

    def breakpoints(self) -> List[Tuple[float, float]]:
        """A copy of the raw (time, power_mw) breakpoint list."""
        return list(zip(self._times, self._powers))

"""Hardware ground-truth energy meter.

The :class:`EnergyMeter` plays the role of the external power monitor
(the Monsoon-style instrumentation energy papers calibrate against): it
sees the *true* draw of every hardware channel and never lies.  The
profilers under study (BatteryStats, PowerTutor, E-Android) are given
only this meter plus the framework's event stream, and each applies its
own attribution policy — the point of the paper is precisely that the
baselines mis-attribute perfectly measured energy.

Channels are keyed by ``(owner, component)``:

* ``owner`` is a uid for draws hardware can attribute to an app (CPU
  cycles, radio packets, camera sessions), or one of the pseudo-owners
  below for shared draws.
* ``component`` is the hardware component name, e.g. ``"cpu"``.

Pseudo-owners:

* :data:`SCREEN_OWNER` — panel draw; hardware cannot know which app
  "caused" the screen, so policy is left to profilers.
* :data:`SYSTEM_OWNER` — platform base / idle draw.

Query fast paths
----------------

Every mutation bumps an **append epoch** (global and per-owner), which
keys the meter's memoization:

* an owner -> channels index makes owner-filtered queries skip
  unrelated channels entirely;
* :meth:`energy_by_owner` keeps a small per-window cache and only
  re-integrates owners whose traces changed since the cached epoch;
* :meth:`total_power_breakpoints` is memoized on the append epoch.

``naive_*`` twins preserve the original full-rescan implementations;
the conformance oracles and the benchmark registry pin the two code
paths to identical joules.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..sim.kernel import Kernel
from ..telemetry import Category, DrawChangeEvent, TelemetryBus
from .trace import PowerTrace

SCREEN_OWNER = -100
"""Pseudo-owner for the display panel's draw."""

SYSTEM_OWNER = -1
"""Pseudo-owner for unattributable platform base draw."""

ChannelKey = Tuple[int, str]
DrawListener = Callable[[float, int, str, float], None]

#: Windows kept in each memoized query cache before LRU eviction.
_QUERY_CACHE_WINDOWS = 8


class EnergyMeter:
    """Records every channel's power history and integrates energy."""

    def __init__(self, kernel: Kernel, telemetry: Optional[TelemetryBus] = None) -> None:
        self._kernel = kernel
        self._telemetry = telemetry
        self._traces: Dict[ChannelKey, PowerTrace] = {}
        self._listeners: List[DrawListener] = []
        # Append-epoch invalidation: bumped on every trace mutation.
        self._epoch = 0
        self._owner_epochs: Dict[int, int] = {}
        self._owner_channels: Dict[int, List[ChannelKey]] = {}
        # (start, end) -> {"epoch", "owner_epochs", "energies"} (LRU).
        self._by_owner_cache: "OrderedDict[Tuple[float, float], Dict]" = OrderedDict()
        self._breakpoints_cache: Optional[Tuple[int, List[Tuple[float, float]]]] = None
        self.query_cache_stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "owner_recomputes": 0,
        }

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def set_draw(self, owner: int, component: str, power_mw: float) -> None:
        """Set the instantaneous draw of channel ``(owner, component)``."""
        key = (owner, component)
        trace = self._traces.get(key)
        if trace is None:
            if power_mw == 0.0:
                return  # don't materialise channels that never drew power
            trace = PowerTrace()
            self._traces[key] = trace
            self._owner_channels.setdefault(owner, []).append(key)
        now = self._kernel.now
        if trace.append(now, power_mw):
            self._epoch += 1
            self._owner_epochs[owner] = self._epoch
        bus = self._telemetry
        if bus is not None:
            # Draw changes are hot: only build the event when observed.
            if bus.wants(Category.POWER):
                bus.publish(
                    DrawChangeEvent(
                        time=now, owner=owner, component=component, power_mw=power_mw
                    )
                )
            else:
                bus.tick(Category.POWER, now)
        for listener in self._listeners:
            listener(now, owner, component, power_mw)

    def add_listener(self, listener: DrawListener) -> None:
        """Subscribe to draw changes (time, owner, component, power_mw)."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # epochs (cache keys for the profiler layers)
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Monotonic append counter; changes iff any trace changed."""
        return self._epoch

    def owner_epoch(self, owner: int) -> int:
        """Epoch of the owner's last trace change (0 if never drew)."""
        return self._owner_epochs.get(owner, 0)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def channels(self) -> List[ChannelKey]:
        """All channels that ever drew power."""
        return list(self._traces)

    def channels_of(self, owner: int) -> List[ChannelKey]:
        """The channels one owner ever drew on (index lookup)."""
        return list(self._owner_channels.get(owner, ()))

    def trace(self, owner: int, component: str) -> Optional[PowerTrace]:
        """The raw trace for one channel, if it exists."""
        return self._traces.get((owner, component))

    def current_power_mw(self, owner: Optional[int] = None) -> float:
        """Total instantaneous draw (optionally for a single owner)."""
        if owner is not None:
            return sum(
                self._traces[key].last_power
                for key in self._owner_channels.get(owner, ())
            )
        return sum(trace.last_power for trace in self._traces.values())

    def _window(self, start: float, end: Optional[float]) -> Tuple[float, float]:
        """Resolve (and validate) a query window; ``end`` defaults to now."""
        window_end = self._kernel.now if end is None else end
        if window_end < start:
            raise ValueError(f"window end {window_end!r} before start {start!r}")
        return start, window_end

    def energy_j(
        self,
        owner: Optional[int] = None,
        component: Optional[str] = None,
        start: float = 0.0,
        end: Optional[float] = None,
    ) -> float:
        """Energy drawn over ``[start, end)``, filtered by owner/component.

        ``end`` defaults to the current virtual time.  Raises
        ``ValueError`` when the window is reversed (``end < start``).
        """
        start, window_end = self._window(start, end)
        if owner is None and component is None:
            return sum(self._by_owner(start, window_end).values())
        if owner is not None:
            keys: Iterable[ChannelKey] = self._owner_channels.get(owner, ())
            if component is not None:
                keys = [key for key in keys if key[1] == component]
        else:
            keys = [key for key in self._traces if key[1] == component]
        return sum(self._traces[key].energy_j(start, window_end) for key in keys)

    def _by_owner(self, start: float, end: float) -> Dict[int, float]:
        """Per-owner energies over a resolved window, memoized.

        A cached window only re-integrates the owners whose traces
        changed since it was stored (append-epoch comparison); every
        other owner's joules are reused as-is.
        """
        window = (start, end)
        entry = self._by_owner_cache.get(window)
        if entry is not None and entry["epoch"] == self._epoch:
            self._by_owner_cache.move_to_end(window)
            self.query_cache_stats["hits"] += 1
            return entry["energies"]
        if entry is None:
            self.query_cache_stats["misses"] += 1
            entry = {"epoch": -1, "owner_epochs": {}, "energies": {}}
            self._by_owner_cache[window] = entry
            if len(self._by_owner_cache) > _QUERY_CACHE_WINDOWS:
                self._by_owner_cache.popitem(last=False)
        else:
            self._by_owner_cache.move_to_end(window)
        cached_epochs = entry["owner_epochs"]
        energies = entry["energies"]
        for owner, keys in self._owner_channels.items():
            owner_epoch = self._owner_epochs.get(owner, 0)
            if cached_epochs.get(owner) == owner_epoch:
                continue
            self.query_cache_stats["owner_recomputes"] += 1
            energies[owner] = sum(
                self._traces[key].energy_j(start, end) for key in keys
            )
            cached_epochs[owner] = owner_epoch
        entry["epoch"] = self._epoch
        return energies

    def energy_by_owner(
        self, start: float = 0.0, end: Optional[float] = None
    ) -> Dict[int, float]:
        """Map of owner -> energy (J) over the window (zero rows omitted)."""
        start, window_end = self._window(start, end)
        return {
            owner: energy
            for owner, energy in self._by_owner(start, window_end).items()
            if energy
        }

    def energy_by_component(
        self, owner: int, start: float = 0.0, end: Optional[float] = None
    ) -> Dict[str, float]:
        """Per-component energy breakdown for one owner."""
        start, window_end = self._window(start, end)
        result: Dict[str, float] = {}
        for key in self._owner_channels.get(owner, ()):
            energy = self._traces[key].energy_j(start, window_end)
            if energy:
                result[key[1]] = result.get(key[1], 0.0) + energy
        return result

    def app_energy_j(
        self, uid: int, start: float = 0.0, end: Optional[float] = None
    ) -> float:
        """Energy directly attributable to an app uid (excludes screen/system)."""
        return self.energy_j(owner=uid, start=start, end=end)

    def screen_energy_j(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Panel energy over the window."""
        return self.energy_j(owner=SCREEN_OWNER, start=start, end=end)

    def total_energy_j(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Whole-device energy over the window."""
        return self.energy_j(start=start, end=end)

    # ------------------------------------------------------------------
    # naive twins (oracle + benchmark baselines for the fast paths)
    # ------------------------------------------------------------------
    def naive_energy_j(
        self,
        owner: Optional[int] = None,
        component: Optional[str] = None,
        start: float = 0.0,
        end: Optional[float] = None,
    ) -> float:
        """The pre-cache full rescan of :meth:`energy_j` (O(channels x B))."""
        start, window_end = self._window(start, end)
        total = 0.0
        for (channel_owner, channel_component), trace in self._traces.items():
            if owner is not None and channel_owner != owner:
                continue
            if component is not None and channel_component != component:
                continue
            total += trace.naive_energy_j(start, window_end)
        return total

    def naive_energy_by_owner(
        self, start: float = 0.0, end: Optional[float] = None
    ) -> Dict[int, float]:
        """The pre-cache full rescan of :meth:`energy_by_owner`."""
        start, window_end = self._window(start, end)
        result: Dict[int, float] = {}
        for (channel_owner, _), trace in self._traces.items():
            energy = trace.naive_energy_j(start, window_end)
            if energy:
                result[channel_owner] = result.get(channel_owner, 0.0) + energy
        return result

    # ------------------------------------------------------------------
    # whole-device curve
    # ------------------------------------------------------------------
    def total_power_breakpoints(self) -> List[Tuple[float, float]]:
        """Whole-device piecewise-constant power curve.

        Merges every channel's breakpoints; used by the battery model to
        compute charge level over time without sampling.

        Single delta-merge sweep: each channel contributes its power
        *changes* keyed by time, and one running sum over the sorted
        times rebuilds the total curve.  O(B log B) in the total number
        of breakpoints B; the result is memoized on the append epoch so
        repeated battery queries between draw changes are O(B) copies.
        """
        cached = self._breakpoints_cache
        if cached is not None and cached[0] == self._epoch:
            return list(cached[1])
        deltas: Dict[float, float] = {}
        for trace in self._traces.values():
            previous = 0.0
            for t, power in trace.breakpoints():
                deltas[t] = deltas.get(t, 0.0) + (power - previous)
                previous = power
        curve: List[Tuple[float, float]] = []
        running = 0.0
        for t in sorted(deltas):
            running += deltas[t]
            curve.append((t, running))
        self._breakpoints_cache = (self._epoch, curve)
        return list(curve)

    def owners(self) -> Iterable[int]:
        """Distinct owners seen on any channel."""
        return set(self._owner_channels)

"""Hardware ground-truth energy meter.

The :class:`EnergyMeter` plays the role of the external power monitor
(the Monsoon-style instrumentation energy papers calibrate against): it
sees the *true* draw of every hardware channel and never lies.  The
profilers under study (BatteryStats, PowerTutor, E-Android) are given
only this meter plus the framework's event stream, and each applies its
own attribution policy — the point of the paper is precisely that the
baselines mis-attribute perfectly measured energy.

Channels are keyed by ``(owner, component)``:

* ``owner`` is a uid for draws hardware can attribute to an app (CPU
  cycles, radio packets, camera sessions), or one of the pseudo-owners
  below for shared draws.
* ``component`` is the hardware component name, e.g. ``"cpu"``.

Pseudo-owners:

* :data:`SCREEN_OWNER` — panel draw; hardware cannot know which app
  "caused" the screen, so policy is left to profilers.
* :data:`SYSTEM_OWNER` — platform base / idle draw.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..sim.kernel import Kernel
from ..telemetry import Category, DrawChangeEvent, TelemetryBus
from .trace import PowerTrace

SCREEN_OWNER = -100
"""Pseudo-owner for the display panel's draw."""

SYSTEM_OWNER = -1
"""Pseudo-owner for unattributable platform base draw."""

ChannelKey = Tuple[int, str]
DrawListener = Callable[[float, int, str, float], None]


class EnergyMeter:
    """Records every channel's power history and integrates energy."""

    def __init__(self, kernel: Kernel, telemetry: Optional[TelemetryBus] = None) -> None:
        self._kernel = kernel
        self._telemetry = telemetry
        self._traces: Dict[ChannelKey, PowerTrace] = {}
        self._listeners: List[DrawListener] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def set_draw(self, owner: int, component: str, power_mw: float) -> None:
        """Set the instantaneous draw of channel ``(owner, component)``."""
        key = (owner, component)
        trace = self._traces.get(key)
        if trace is None:
            if power_mw == 0.0:
                return  # don't materialise channels that never drew power
            trace = PowerTrace()
            self._traces[key] = trace
        now = self._kernel.now
        trace.append(now, power_mw)
        bus = self._telemetry
        if bus is not None:
            # Draw changes are hot: only build the event when observed.
            if bus.wants(Category.POWER):
                bus.publish(
                    DrawChangeEvent(
                        time=now, owner=owner, component=component, power_mw=power_mw
                    )
                )
            else:
                bus.tick(Category.POWER, now)
        for listener in self._listeners:
            listener(now, owner, component, power_mw)

    def add_listener(self, listener: DrawListener) -> None:
        """Subscribe to draw changes (time, owner, component, power_mw)."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def channels(self) -> List[ChannelKey]:
        """All channels that ever drew power."""
        return list(self._traces)

    def trace(self, owner: int, component: str) -> Optional[PowerTrace]:
        """The raw trace for one channel, if it exists."""
        return self._traces.get((owner, component))

    def current_power_mw(self, owner: Optional[int] = None) -> float:
        """Total instantaneous draw (optionally for a single owner)."""
        return sum(
            trace.last_power
            for (channel_owner, _), trace in self._traces.items()
            if owner is None or channel_owner == owner
        )

    def energy_j(
        self,
        owner: Optional[int] = None,
        component: Optional[str] = None,
        start: float = 0.0,
        end: Optional[float] = None,
    ) -> float:
        """Energy drawn over ``[start, end)``, filtered by owner/component.

        ``end`` defaults to the current virtual time.
        """
        window_end = self._kernel.now if end is None else end
        total = 0.0
        for (channel_owner, channel_component), trace in self._traces.items():
            if owner is not None and channel_owner != owner:
                continue
            if component is not None and channel_component != component:
                continue
            total += trace.energy_j(start, window_end)
        return total

    def energy_by_owner(
        self, start: float = 0.0, end: Optional[float] = None
    ) -> Dict[int, float]:
        """Map of owner -> energy (J) over the window."""
        window_end = self._kernel.now if end is None else end
        result: Dict[int, float] = {}
        for (channel_owner, _), trace in self._traces.items():
            energy = trace.energy_j(start, window_end)
            if energy:
                result[channel_owner] = result.get(channel_owner, 0.0) + energy
        return result

    def energy_by_component(
        self, owner: int, start: float = 0.0, end: Optional[float] = None
    ) -> Dict[str, float]:
        """Per-component energy breakdown for one owner."""
        window_end = self._kernel.now if end is None else end
        result: Dict[str, float] = {}
        for (channel_owner, channel_component), trace in self._traces.items():
            if channel_owner != owner:
                continue
            energy = trace.energy_j(start, window_end)
            if energy:
                result[channel_component] = result.get(channel_component, 0.0) + energy
        return result

    def app_energy_j(
        self, uid: int, start: float = 0.0, end: Optional[float] = None
    ) -> float:
        """Energy directly attributable to an app uid (excludes screen/system)."""
        return self.energy_j(owner=uid, start=start, end=end)

    def screen_energy_j(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Panel energy over the window."""
        return self.energy_j(owner=SCREEN_OWNER, start=start, end=end)

    def total_energy_j(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Whole-device energy over the window."""
        return self.energy_j(start=start, end=end)

    def total_power_breakpoints(self) -> List[Tuple[float, float]]:
        """Whole-device piecewise-constant power curve.

        Merges every channel's breakpoints; used by the battery model to
        compute charge level over time without sampling.

        Single delta-merge sweep: each channel contributes its power
        *changes* keyed by time, and one running sum over the sorted
        times rebuilds the total curve.  O(B log B) in the total number
        of breakpoints B, versus the old O(B x channels) re-sum of every
        channel at every time.
        """
        deltas: Dict[float, float] = {}
        for trace in self._traces.values():
            previous = 0.0
            for t, power in trace.breakpoints():
                deltas[t] = deltas.get(t, 0.0) + (power - previous)
                previous = power
        curve: List[Tuple[float, float]] = []
        running = 0.0
        for t in sorted(deltas):
            running += deltas[t]
            curve.append((t, running))
        return curve

    def owners(self) -> Iterable[int]:
        """Distinct owners seen on any channel."""
        return {owner for owner, _ in self._traces}

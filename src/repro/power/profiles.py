"""Device power profiles.

A :class:`DevicePowerProfile` bundles the per-component power constants
(milliwatts) used by the hardware models in :mod:`repro.power.components`.
The default :data:`NEXUS4` profile is calibrated to public measurements
of the LG Nexus 4 — the paper's evaluation device — at the fidelity the
reproduction needs: the *shape* of Fig. 3 (which attack drains the
2100 mAh battery fastest, and roughly how many hours each takes) and the
relative magnitudes in Fig. 9 depend on these constants, not on exact
silicon behaviour.

All power figures are milliwatts; battery capacity is joules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class CpuPowerProfile:
    """CPU power constants.

    ``freq_levels_mhz`` / ``active_mw`` describe the dynamic power at full
    utilisation for each frequency step; instantaneous power interpolates
    linearly in utilisation between ``idle_mw`` and the active figure, the
    standard utilisation-based model of PowerTutor / BatteryStats.
    """

    idle_mw: float = 35.0
    freq_levels_mhz: Tuple[int, ...] = (384, 486, 594, 702, 810, 918, 1026, 1134, 1242, 1512)
    active_mw: Tuple[float, ...] = (110.0, 140.0, 170.0, 205.0, 245.0, 290.0, 340.0, 395.0, 455.0, 585.0)
    suspend_mw: float = 5.5

    def __post_init__(self) -> None:
        if len(self.freq_levels_mhz) != len(self.active_mw):
            raise ValueError("freq_levels_mhz and active_mw must align")
        if not self.freq_levels_mhz:
            raise ValueError("profile needs at least one frequency level")

    def active_power_at(self, freq_index: int) -> float:
        """Full-utilisation power at a frequency step."""
        return self.active_mw[freq_index]


@dataclass(frozen=True)
class ScreenPowerProfile:
    """LCD power: ``base_mw + brightness * per_level_mw`` while on.

    With the Nexus 4 IPS panel, full brightness sits around 750 mW and
    minimum brightness around 180 mW; 256 brightness levels.
    """

    base_mw: float = 175.0
    per_level_mw: float = 2.25
    dim_brightness: int = 10
    max_brightness: int = 255

    def power_mw(self, brightness: int) -> float:
        """Instantaneous panel power at a brightness level (screen on)."""
        clamped = max(0, min(self.max_brightness, brightness))
        return self.base_mw + clamped * self.per_level_mw


@dataclass(frozen=True)
class RadioPowerProfile:
    """WiFi/cellular data power states with a post-activity tail."""

    idle_mw: float = 12.0
    low_mw: float = 28.0
    high_mw: float = 710.0
    tail_mw: float = 120.0
    tail_seconds: float = 5.5


@dataclass(frozen=True)
class GpsPowerProfile:
    """GPS receiver power."""

    on_mw: float = 430.0
    sleep_mw: float = 22.0
    tail_seconds: float = 8.0


@dataclass(frozen=True)
class CameraPowerProfile:
    """Camera sensor + ISP power; the paper's headline energy hog."""

    preview_mw: float = 1020.0
    record_mw: float = 1560.0


@dataclass(frozen=True)
class AudioPowerProfile:
    """Audio DSP/codec power."""

    playback_mw: float = 106.0


@dataclass(frozen=True)
class DevicePowerProfile:
    """Everything the hardware models need, for one device."""

    name: str = "generic"
    cpu: CpuPowerProfile = field(default_factory=CpuPowerProfile)
    screen: ScreenPowerProfile = field(default_factory=ScreenPowerProfile)
    radio: RadioPowerProfile = field(default_factory=RadioPowerProfile)
    gps: GpsPowerProfile = field(default_factory=GpsPowerProfile)
    camera: CameraPowerProfile = field(default_factory=CameraPowerProfile)
    audio: AudioPowerProfile = field(default_factory=AudioPowerProfile)
    # Always-on platform draw while awake (SoC rails, RAM refresh,
    # governor housekeeping).  Screen-on idle on a Nexus 4 sits near
    # 0.45-0.5 W total; with cpu.idle_mw and the minimum-brightness panel
    # this base lands the Fig. 3 baseline in the paper's ~15-18 h range.
    system_base_mw: float = 260.0
    # Whole-platform draw in suspend (deep sleep).
    suspend_mw: float = 6.5
    # 2100 mAh * 3.8 V = 7.98 Wh = 28,728 J for the Nexus 4.
    battery_capacity_j: float = 28_728.0


NEXUS4 = DevicePowerProfile(name="nexus4")
"""Default profile matching the paper's evaluation device."""

TABLET = DevicePowerProfile(
    name="tablet",
    cpu=CpuPowerProfile(
        idle_mw=55.0,
        freq_levels_mhz=(512, 768, 1024, 1280, 1536, 1792, 2048),
        active_mw=(160.0, 220.0, 290.0, 370.0, 460.0, 560.0, 680.0),
        suspend_mw=8.0,
    ),
    screen=ScreenPowerProfile(base_mw=420.0, per_level_mw=4.1),
    system_base_mw=380.0,
    suspend_mw=11.0,
    # 6000 mAh * 3.8 V ≈ 82,080 J.
    battery_capacity_j=82_080.0,
)
"""A larger-panel, larger-battery device for robustness checks: the
Fig. 3/Fig. 9 *shape* claims must hold on any sane profile, not just the
Nexus-4 constants."""

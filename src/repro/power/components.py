"""Hardware component power models.

Each model owns a slice of the device's physical draw and reports it to
the :class:`~repro.power.meter.EnergyMeter` whenever its state changes.
The models are deliberately event-driven (no sampling loop): because the
draws are piecewise-constant in virtual time, pushing a breakpoint at
every state change yields exact energy integrals.

Attribution granularity mirrors what real hardware/OS counters expose:

* CPU time is attributable per uid (the kernel knows which process ran),
  so the CPU model keeps a per-uid utilisation share; the idle floor goes
  to :data:`~repro.power.meter.SYSTEM_OWNER`.
* Radio, GPS, camera and audio sessions are attributable to the app
  holding the session.
* The screen is *not* attributable by hardware — its draw is recorded
  under :data:`~repro.power.meter.SCREEN_OWNER` and attribution is the
  profilers' policy decision, which is exactly the ambiguity the paper's
  attacks #5/#6 exploit.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..sim.kernel import Kernel
from ..sim.event_queue import ScheduledEvent
from .meter import SCREEN_OWNER, SYSTEM_OWNER, EnergyMeter
from .profiles import DevicePowerProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..telemetry import TelemetryBus

CPU = "cpu"
SCREEN = "screen"
RADIO = "radio"
GPS = "gps"
CAMERA = "camera"
AUDIO = "audio"
SYSTEM_BASE = "base"

ScreenListener = Callable[[], None]


MAIN_ROUTINE = "main"


def _cpu_channel(routine: str) -> str:
    """Meter component name for a CPU routine.

    The default routine keeps the plain ``cpu`` channel (so whole-app
    queries by component stay stable); named routines get ``cpu:<name>``
    sub-channels — the eprof-style subroutine decomposition of §II.
    """
    return CPU if routine == MAIN_ROUTINE else f"{CPU}:{routine}"


class CpuModel:
    """Utilisation-based CPU power with frequency steps and suspend.

    Apps (via their simulated workloads) call :meth:`set_utilization`
    with a fraction of one core.  Total utilisation is clamped at 1.0 and
    each uid's dynamic power share is proportional to its demand — the
    same proportional accounting BatteryStats applies to CPU time.

    Demand is tracked per ``(uid, routine)``: an app can label portions
    of its load ("render", "codec", ...) and the meter keeps a separate
    ``cpu:<routine>`` channel for each, giving the subroutine-level
    energy decomposition eprof pioneered (§II) for free.
    """

    def __init__(self, kernel: Kernel, meter: EnergyMeter, profile: DevicePowerProfile) -> None:
        self._kernel = kernel
        self._meter = meter
        self._profile = profile.cpu
        self._demands: Dict[Tuple[int, str], float] = {}
        self._freq_index = len(profile.cpu.freq_levels_mhz) - 1
        self._suspended = False
        self._meter.set_draw(SYSTEM_OWNER, CPU, self._profile.idle_mw)

    @property
    def suspended(self) -> bool:
        """Whether the CPU is halted (device deep sleep)."""
        return self._suspended

    @property
    def freq_index(self) -> int:
        """Current frequency step index."""
        return self._freq_index

    def set_frequency_index(self, index: int) -> None:
        """Pin the governor to a frequency step."""
        if not 0 <= index < len(self._profile.freq_levels_mhz):
            raise ValueError(f"frequency index {index!r} out of range")
        self._freq_index = index
        self._publish()

    def set_utilization(
        self, uid: int, fraction: float, routine: str = MAIN_ROUTINE
    ) -> None:
        """Set a routine's CPU demand as a fraction of one core in [0, 1].

        ``routine`` defaults to the app's main thread; naming routines
        splits the app's CPU energy into per-routine meter channels.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"utilization {fraction!r} outside [0, 1]")
        key = (uid, routine)
        if fraction == 0.0:
            if self._demands.pop(key, None) is not None:
                self._meter.set_draw(uid, _cpu_channel(routine), 0.0)
        else:
            self._demands[key] = fraction
        self._publish()

    def utilization_of(self, uid: int) -> float:
        """Current total demand of ``uid`` across all routines."""
        return sum(
            demand for (owner, _), demand in self._demands.items() if owner == uid
        )

    def routine_utilization(self, uid: int, routine: str) -> float:
        """Current demand of one routine."""
        return self._demands.get((uid, routine), 0.0)

    def total_utilization(self) -> float:
        """Summed demand, clamped to 1.0 (single-core abstraction)."""
        return min(1.0, sum(self._demands.values()))

    def suspend(self) -> None:
        """Halt the CPU: app draws stop; only the suspend floor remains."""
        if self._suspended:
            return
        self._suspended = True
        self._publish()

    def resume(self) -> None:
        """Wake the CPU back up; app demands resume drawing power."""
        if not self._suspended:
            return
        self._suspended = False
        self._publish()

    def _publish(self) -> None:
        if self._suspended:
            self._meter.set_draw(SYSTEM_OWNER, CPU, self._profile.suspend_mw)
            for uid, routine in list(self._demands):
                self._meter.set_draw(uid, _cpu_channel(routine), 0.0)
            return
        self._meter.set_draw(SYSTEM_OWNER, CPU, self._profile.idle_mw)
        active_mw = self._profile.active_power_at(self._freq_index)
        dynamic_span = max(0.0, active_mw - self._profile.idle_mw)
        total_demand = sum(self._demands.values())
        scale = 1.0 if total_demand <= 1.0 else 1.0 / total_demand
        for (uid, routine), demand in self._demands.items():
            self._meter.set_draw(
                uid, _cpu_channel(routine), dynamic_span * demand * scale
            )
        # Channels that existed before but have zero demand were already
        # zeroed in set_utilization; nothing further needed here.


class ScreenModel:
    """Display panel: on/off/dim, 256 brightness levels, auto/manual mode.

    The *panel* knows nothing about apps: its draw is recorded under
    :data:`SCREEN_OWNER`.  State-change listeners let the display manager
    and the profilers observe transitions.
    """

    def __init__(self, kernel: Kernel, meter: EnergyMeter, profile: DevicePowerProfile) -> None:
        self._kernel = kernel
        self._meter = meter
        self._profile = profile.screen
        self._on = False
        self._dimmed = False
        self._brightness = 102  # Android's default (40%)
        self._listeners: List[ScreenListener] = []
        self._publish()

    # -- state --------------------------------------------------------
    @property
    def is_on(self) -> bool:
        """Whether the panel is lit."""
        return self._on

    @property
    def is_dimmed(self) -> bool:
        """Whether the panel is in the dim pre-timeout state."""
        return self._dimmed

    @property
    def brightness(self) -> int:
        """Current brightness level, 0-255."""
        return self._brightness

    @property
    def max_brightness(self) -> int:
        """Highest supported brightness level."""
        return self._profile.max_brightness

    def add_listener(self, listener: ScreenListener) -> None:
        """Subscribe to any screen state change."""
        self._listeners.append(listener)

    # -- transitions ---------------------------------------------------
    def turn_on(self) -> None:
        """Light the panel at the current brightness."""
        if not self._on:
            self._on = True
            self._dimmed = False
            self._publish()

    def turn_off(self) -> None:
        """Power the panel down."""
        if self._on:
            self._on = False
            self._dimmed = False
            self._publish()

    def dim(self) -> None:
        """Enter the dim state (pre-timeout, or SCREEN_DIM wakelock)."""
        if self._on and not self._dimmed:
            self._dimmed = True
            self._publish()

    def undim(self) -> None:
        """Restore full brightness from the dim state."""
        if self._on and self._dimmed:
            self._dimmed = False
            self._publish()

    def set_brightness(self, level: int) -> None:
        """Set the panel brightness, clamped to [0, max]."""
        clamped = max(0, min(self._profile.max_brightness, int(level)))
        if clamped != self._brightness:
            self._brightness = clamped
            self._publish()

    def current_power_mw(self) -> float:
        """Instantaneous panel draw."""
        if not self._on:
            return 0.0
        level = self._profile.dim_brightness if self._dimmed else self._brightness
        return self._profile.power_mw(level)

    def _publish(self) -> None:
        self._meter.set_draw(SCREEN_OWNER, SCREEN, self.current_power_mw())
        for listener in self._listeners:
            listener()


class RadioModel:
    """WiFi/data radio with IDLE -> LOW/HIGH -> TAIL -> IDLE states.

    Each uid with traffic holds the radio in its level; the draw above
    idle is split across active uids proportional to their level, and a
    tail draw (attributed to the last active uid, matching tail-state
    energy accounting a la AppScope/eprof) lingers after activity stops.
    """

    IDLE, LOW, HIGH = 0, 1, 2

    def __init__(self, kernel: Kernel, meter: EnergyMeter, profile: DevicePowerProfile) -> None:
        self._kernel = kernel
        self._meter = meter
        self._profile = profile.radio
        self._levels: Dict[int, int] = {}
        self._tail_event: Optional[ScheduledEvent] = None
        self._tail_uid: Optional[int] = None
        # The idle floor of the radio is folded into the platform base
        # draw; this model only records per-uid draw *above* idle.

    def set_activity(self, uid: int, level: int) -> None:
        """Set a uid's traffic level (IDLE/LOW/HIGH)."""
        if level not in (self.IDLE, self.LOW, self.HIGH):
            raise ValueError(f"invalid radio level {level!r}")
        previously_active = bool(self._levels)
        if level == self.IDLE:
            if uid in self._levels:
                del self._levels[uid]
                if not self._levels and previously_active:
                    self._enter_tail(uid)
        else:
            self._cancel_tail()
            self._levels[uid] = level
        self._publish()

    def _enter_tail(self, uid: int) -> None:
        self._tail_uid = uid
        self._tail_event = self._kernel.call_later(
            self._profile.tail_seconds, self._end_tail, name="radio-tail"
        )

    def _end_tail(self) -> None:
        self._tail_event = None
        self._tail_uid = None
        self._publish()

    def _cancel_tail(self) -> None:
        if self._tail_event is not None:
            self._kernel.cancel(self._tail_event)
            self._tail_event = None
            self._tail_uid = None

    def _publish(self) -> None:
        profile = self._profile
        # Zero every uid channel first (cheap: only uids we have touched).
        if self._levels:
            power_of = {self.LOW: profile.low_mw, self.HIGH: profile.high_mw}
            for uid, level in self._levels.items():
                self._meter.set_draw(uid, RADIO, power_of[level] - profile.idle_mw)
        if self._tail_uid is not None and not self._levels:
            self._meter.set_draw(
                self._tail_uid, RADIO, profile.tail_mw - profile.idle_mw
            )
        elif not self._levels:
            # No activity, no tail: clear residual app channels.
            for owner, component in list(self._meter.channels()):
                if component == RADIO and owner != SYSTEM_OWNER:
                    self._meter.set_draw(owner, RADIO, 0.0)


class GpsModel:
    """GPS receiver held on by any requesting uid, with a sleep tail."""

    def __init__(self, kernel: Kernel, meter: EnergyMeter, profile: DevicePowerProfile) -> None:
        self._kernel = kernel
        self._meter = meter
        self._profile = profile.gps
        self._holders: Dict[int, int] = {}

    def start(self, uid: int) -> None:
        """uid requests location updates."""
        self._holders[uid] = self._holders.get(uid, 0) + 1
        self._publish()

    def stop(self, uid: int) -> None:
        """uid stops location updates."""
        count = self._holders.get(uid, 0)
        if count <= 1:
            self._holders.pop(uid, None)
        else:
            self._holders[uid] = count - 1
        self._publish()

    def is_on(self) -> bool:
        """Whether any uid holds the receiver on."""
        return bool(self._holders)

    def _publish(self) -> None:
        if self._holders:
            share = self._profile.on_mw / len(self._holders)
            for uid in self._holders:
                self._meter.set_draw(uid, GPS, share)
        for owner, component in list(self._meter.channels()):
            if component == GPS and owner not in self._holders:
                self._meter.set_draw(owner, GPS, 0.0)


class CameraModel:
    """Camera sensor; at most one session (Android enforces exclusivity)."""

    def __init__(self, kernel: Kernel, meter: EnergyMeter, profile: DevicePowerProfile) -> None:
        self._kernel = kernel
        self._meter = meter
        self._profile = profile.camera
        self._session_uid: Optional[int] = None
        self._recording = False

    @property
    def session_uid(self) -> Optional[int]:
        """uid of the app holding the camera, if any."""
        return self._session_uid

    def open(self, uid: int) -> None:
        """Open a preview session for ``uid``."""
        if self._session_uid is not None and self._session_uid != uid:
            raise RuntimeError(
                f"camera busy: held by uid {self._session_uid}, requested by {uid}"
            )
        self._session_uid = uid
        self._recording = False
        self._publish()

    def start_recording(self) -> None:
        """Escalate the open session to full video recording power."""
        if self._session_uid is None:
            raise RuntimeError("cannot record without an open camera session")
        self._recording = True
        self._publish()

    def stop_recording(self) -> None:
        """Drop back to preview power."""
        self._recording = False
        self._publish()

    def close(self) -> None:
        """Release the camera."""
        if self._session_uid is not None:
            uid = self._session_uid
            self._session_uid = None
            self._recording = False
            self._meter.set_draw(uid, CAMERA, 0.0)

    def _publish(self) -> None:
        if self._session_uid is None:
            return
        power = (
            self._profile.record_mw if self._recording else self._profile.preview_mw
        )
        self._meter.set_draw(self._session_uid, CAMERA, power)


class AudioModel:
    """Audio playback sessions, one channel per playing uid."""

    def __init__(self, kernel: Kernel, meter: EnergyMeter, profile: DevicePowerProfile) -> None:
        self._kernel = kernel
        self._meter = meter
        self._profile = profile.audio
        self._playing: Dict[int, int] = {}

    def start(self, uid: int) -> None:
        """uid starts playback."""
        self._playing[uid] = self._playing.get(uid, 0) + 1
        self._meter.set_draw(uid, AUDIO, self._profile.playback_mw)

    def stop(self, uid: int) -> None:
        """uid stops playback."""
        count = self._playing.get(uid, 0)
        if count <= 1:
            self._playing.pop(uid, None)
            self._meter.set_draw(uid, AUDIO, 0.0)
        else:
            self._playing[uid] = count - 1

    def is_playing(self, uid: int) -> bool:
        """Whether the uid has a live playback session."""
        return uid in self._playing


class SystemBase:
    """Always-on platform rails; switches between awake and suspend draw."""

    def __init__(self, kernel: Kernel, meter: EnergyMeter, profile: DevicePowerProfile) -> None:
        self._meter = meter
        self._profile = profile
        self._suspended = False
        self._meter.set_draw(SYSTEM_OWNER, SYSTEM_BASE, profile.system_base_mw)

    @property
    def suspended(self) -> bool:
        """Whether the platform is in deep sleep."""
        return self._suspended

    def suspend(self) -> None:
        """Drop the platform rails to the suspend floor."""
        self._suspended = True
        self._meter.set_draw(SYSTEM_OWNER, SYSTEM_BASE, self._profile.suspend_mw)

    def resume(self) -> None:
        """Restore awake platform draw."""
        self._suspended = False
        self._meter.set_draw(SYSTEM_OWNER, SYSTEM_BASE, self._profile.system_base_mw)


class HardwarePlatform:
    """Bundle of every hardware model plus the meter and battery capacity."""

    def __init__(
        self,
        kernel: Kernel,
        profile: DevicePowerProfile,
        telemetry: Optional["TelemetryBus"] = None,
    ) -> None:
        self.kernel = kernel
        self.profile = profile
        self.meter = EnergyMeter(kernel, telemetry=telemetry)
        self.base = SystemBase(kernel, self.meter, profile)
        self.cpu = CpuModel(kernel, self.meter, profile)
        self.screen = ScreenModel(kernel, self.meter, profile)
        self.radio = RadioModel(kernel, self.meter, profile)
        self.gps = GpsModel(kernel, self.meter, profile)
        self.camera = CameraModel(kernel, self.meter, profile)
        self.audio = AudioModel(kernel, self.meter, profile)

    def suspend(self) -> None:
        """Device deep sleep: CPU halted, platform rails low, screen off."""
        self.screen.turn_off()
        self.cpu.suspend()
        self.base.suspend()

    def resume(self) -> None:
        """Wake from deep sleep (screen handled by the display manager)."""
        self.cpu.resume()
        self.base.resume()

    @property
    def suspended(self) -> bool:
        """Whether the device is in deep sleep."""
        return self.base.suspended

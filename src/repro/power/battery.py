"""Battery model.

The battery converts the meter's whole-device power curve into a state
of charge over time — the quantity Fig. 3 plots (battery percentage vs
hours until dead) and the §VI-B energy-efficiency check compares between
Android and E-Android.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim.kernel import Kernel
from .meter import EnergyMeter


@dataclass(frozen=True)
class BatterySample:
    """One point on the discharge curve."""

    time_s: float
    percent: float


class Battery:
    """State-of-charge tracking over the meter's ground-truth energy."""

    def __init__(
        self, kernel: Kernel, meter: EnergyMeter, capacity_j: float
    ) -> None:
        if capacity_j <= 0:
            raise ValueError(f"battery capacity must be positive, got {capacity_j!r}")
        self._kernel = kernel
        self._meter = meter
        self._capacity_j = capacity_j
        self._epoch = kernel.now

    @property
    def capacity_j(self) -> float:
        """Full-charge capacity in joules."""
        return self._capacity_j

    def energy_used_j(self, at: Optional[float] = None) -> float:
        """Joules drained since the battery epoch."""
        end = self._kernel.now if at is None else at
        return self._meter.total_energy_j(start=self._epoch, end=end)

    def percent(self, at: Optional[float] = None) -> float:
        """State of charge in [0, 100] at virtual time ``at`` (default now)."""
        remaining = self._capacity_j - self.energy_used_j(at)
        return max(0.0, min(100.0, 100.0 * remaining / self._capacity_j))

    def is_dead(self, at: Optional[float] = None) -> bool:
        """Whether the battery hit 0%."""
        return self.percent(at) <= 0.0

    def time_of_percent(self, target_percent: float) -> Optional[float]:
        """First virtual time the charge dropped to ``target_percent``.

        Computed analytically from the piecewise-constant power curve;
        returns None if the level was never reached in simulated history
        (assuming the final draw persists, extrapolates beyond it).
        """
        if not 0.0 <= target_percent <= 100.0:
            raise ValueError(f"percent {target_percent!r} outside [0, 100]")
        target_energy_j = self._capacity_j * (1.0 - target_percent / 100.0)
        curve = self._meter.total_power_breakpoints()
        if not curve:
            return None
        used_mj = 0.0
        target_mj = target_energy_j * 1000.0
        for i, (t, power) in enumerate(curve):
            if t < self._epoch:
                # Clip the curve to the battery epoch.
                if i + 1 < len(curve) and curve[i + 1][0] <= self._epoch:
                    continue
                t = self._epoch
            seg_end = curve[i + 1][0] if i + 1 < len(curve) else None
            if seg_end is None:
                if power <= 0:
                    return None
                return t + (target_mj - used_mj) / power
            seg_mj = power * (seg_end - t)
            if used_mj + seg_mj >= target_mj:
                if power <= 0:
                    return seg_end
                return t + (target_mj - used_mj) / power
            used_mj += seg_mj
        return None

    def time_until_dead(self) -> Optional[float]:
        """Virtual time at which the battery empties (see time_of_percent)."""
        return self.time_of_percent(0.0)

    def discharge_curve(
        self, step_s: float = 600.0, until: Optional[float] = None
    ) -> List[BatterySample]:
        """Sampled charge curve from the epoch to ``until`` (default: dead).

        This is the series Fig. 3 plots: one sample per ``step_s`` of
        virtual time, clamped at 0%.
        """
        if step_s <= 0:
            raise ValueError(f"step must be positive, got {step_s!r}")
        end = until
        if end is None:
            end = self.time_until_dead()
            if end is None:
                end = self._kernel.now
        samples: List[BatterySample] = []
        t = self._epoch
        while t < end:
            samples.append(BatterySample(time_s=t, percent=self.percent(t)))
            t += step_s
        samples.append(BatterySample(time_s=end, percent=self.percent(end)))
        return samples

    def per_percent_times(self) -> List[Tuple[int, Optional[float]]]:
        """Time each whole percentage level was reached (the paper's
        'for each percentage of battery, we record the time')."""
        return [
            (level, self.time_of_percent(float(level)))
            for level in range(99, -1, -1)
        ]

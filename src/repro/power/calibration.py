"""Utilization-based power-model construction (§II).

"Energy modeling works measure the corresponding energy consumption of
each component under different utilization ... A mathematic model using
linear regression is developed to estimate the energy usage of distinct
applications with the utilization information collected from mobile
operating systems.  However, those utilization based approaches could
have an error rate as high as about 20%."

This module reproduces that pipeline against the simulator standing in
for the instrumented phone: drive a component through a utilization
sweep, sample (utilization, measured power) pairs — optionally with the
sensor noise that causes the real-world error — and fit the classic
``P = beta0 + beta1 * u`` model by ordinary least squares (closed form,
no numpy needed).  The fitted model is what PowerTutor-class profilers
run on; the residual diagnostics quantify the §II error-rate claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..sim.kernel import Kernel
from ..sim.rng import SeededRng
from .components import CpuModel
from .meter import EnergyMeter
from .profiles import DevicePowerProfile


@dataclass(frozen=True)
class CalibrationSample:
    """One (utilization, measured average power) observation."""

    utilization: float
    power_mw: float


@dataclass(frozen=True)
class LinearPowerModel:
    """The fitted ``P = beta0 + beta1 * u`` model."""

    beta0_mw: float
    beta1_mw: float
    samples: int

    def predict_mw(self, utilization: float) -> float:
        """Predicted power at a utilization level."""
        return self.beta0_mw + self.beta1_mw * utilization

    def predict_energy_j(self, utilization: float, seconds: float) -> float:
        """Predicted energy for holding a utilization for a duration."""
        return self.predict_mw(utilization) * seconds / 1000.0

    def error_rate(self, samples: Sequence[CalibrationSample]) -> float:
        """Mean absolute relative error against held-out samples."""
        errors = [
            abs(self.predict_mw(s.utilization) - s.power_mw) / s.power_mw
            for s in samples
            if s.power_mw > 0
        ]
        return sum(errors) / len(errors) if errors else 0.0


def fit_linear_model(samples: Sequence[CalibrationSample]) -> LinearPowerModel:
    """Ordinary-least-squares fit of the utilization model.

    Raises:
        ValueError: with fewer than two distinct utilization levels the
            slope is unidentifiable.
    """
    if len(samples) < 2:
        raise ValueError("need at least two samples to fit a line")
    xs = [s.utilization for s in samples]
    ys = [s.power_mw for s in samples]
    n = float(len(samples))
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("all samples share one utilization; slope unidentifiable")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    beta1 = sxy / sxx
    beta0 = mean_y - beta1 * mean_x
    return LinearPowerModel(beta0_mw=beta0, beta1_mw=beta1, samples=len(samples))


class CpuCalibrator:
    """Runs the utilization sweep the energy-modeling papers describe.

    For each utilization step, the calibrator holds the CPU at that load
    for ``dwell_s`` of virtual time and reads the meter's average power
    over the window — exactly how one calibrates against a Monsoon power
    monitor, with the simulator as the device under test.
    """

    def __init__(
        self,
        profile: DevicePowerProfile,
        dwell_s: float = 10.0,
        noise_stddev_mw: float = 0.0,
        seed: int = 1,
    ) -> None:
        self._profile = profile
        self.dwell_s = dwell_s
        self.noise_stddev_mw = noise_stddev_mw
        self._rng = SeededRng(seed)

    def sweep(
        self, levels: Optional[Sequence[float]] = None, uid: int = 10_000
    ) -> List[CalibrationSample]:
        """Collect one sample per utilization level on a fresh device."""
        if levels is None:
            levels = [i / 10.0 for i in range(0, 11)]
        samples: List[CalibrationSample] = []
        for level in levels:
            kernel = Kernel()
            meter = EnergyMeter(kernel)
            cpu = CpuModel(kernel, meter, self._profile)
            cpu.set_utilization(uid, level)
            start = kernel.now
            kernel.run_for(self.dwell_s)
            energy = meter.total_energy_j(start=start)
            power_mw = energy / self.dwell_s * 1000.0
            if self.noise_stddev_mw > 0:
                power_mw = max(0.0, power_mw + self._rng.gauss(0.0, self.noise_stddev_mw))
            samples.append(CalibrationSample(utilization=level, power_mw=power_mw))
        return samples

    def calibrate(
        self, levels: Optional[Sequence[float]] = None
    ) -> Tuple[LinearPowerModel, List[CalibrationSample]]:
        """Sweep and fit; returns the model and the raw samples."""
        samples = self.sweep(levels)
        return fit_linear_model(samples), samples

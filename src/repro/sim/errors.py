"""Exception hierarchy for the discrete-event simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for every error raised by the :mod:`repro.sim` kernel."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled at an invalid time.

    The kernel only moves forward: scheduling an event strictly in the
    past (before the current virtual time) is a logic error in the caller
    and is reported eagerly instead of corrupting the timeline.
    """


class EventCancelledError(SimulationError):
    """Raised when interacting with an event handle that was cancelled."""


class KernelStateError(SimulationError):
    """Raised when the kernel is driven incorrectly.

    Examples: running a kernel from inside an event callback, or stepping
    a kernel that has been shut down.
    """


class ProcessError(SimulationError):
    """Base class for process-table errors."""


class UnknownPidError(ProcessError):
    """Raised when an operation references a pid that was never spawned."""


class DeadProcessError(ProcessError):
    """Raised when an operation requires a live process but the pid is dead."""

"""Discrete-event simulation substrate.

Provides the virtual clock, event queue, kernel, process table, and
seeded RNG on which the Android framework simulator and the power models
are built.
"""

from .clock import VirtualClock
from .errors import (
    DeadProcessError,
    EventCancelledError,
    KernelStateError,
    ProcessError,
    SchedulingError,
    SimulationError,
    UnknownPidError,
)
from .event_queue import EventQueue, ScheduledEvent
from .kernel import Kernel, RepeatingTimer
from .process import ProcessRecord, ProcessTable
from .rng import SeededRng, derive_seed

__all__ = [
    "VirtualClock",
    "EventQueue",
    "ScheduledEvent",
    "Kernel",
    "RepeatingTimer",
    "ProcessRecord",
    "ProcessTable",
    "SeededRng",
    "derive_seed",
    "SimulationError",
    "SchedulingError",
    "EventCancelledError",
    "KernelStateError",
    "ProcessError",
    "UnknownPidError",
    "DeadProcessError",
]

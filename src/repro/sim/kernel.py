"""The discrete-event simulation kernel.

A :class:`Kernel` owns a :class:`~repro.sim.clock.VirtualClock` and an
:class:`~repro.sim.event_queue.EventQueue` and drives virtual time forward
by dispatching events in order.  Every subsystem in the reproduction —
the Android framework simulator, the power models, the profilers — hangs
off one kernel instance, so a whole "device" is a single deterministic
event timeline.

Typical use::

    kernel = Kernel()
    kernel.call_later(5.0, lambda: print("five virtual seconds elapsed"))
    kernel.run_for(10.0)

Events may freely schedule further events (including at the current
instant); the kernel processes them in ``(time, insertion order)`` order.
"""

from __future__ import annotations

import time as _wall
from typing import Any, Callable, Optional, TYPE_CHECKING

from ..telemetry import Category, KernelDispatchEvent, TimerFiredEvent
from .clock import VirtualClock
from .errors import KernelStateError, SchedulingError
from .event_queue import EventQueue, ScheduledEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..telemetry import TelemetryBus


class Kernel:
    """Deterministic discrete-event executor over virtual time."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._clock = VirtualClock(start_time)
        self._queue = EventQueue()
        self._running = False
        self._dispatched_count = 0
        self._error_handler: Optional[Callable[[ScheduledEvent, Exception], None]] = None
        self._telemetry: Optional["TelemetryBus"] = None

    def set_telemetry(self, bus: Optional["TelemetryBus"]) -> None:
        """Attach the device telemetry bus for dispatch/timer spans.

        Dispatch spans are hot (one per event): full
        :class:`~repro.telemetry.KernelDispatchEvent` construction is
        gated on ``bus.wants(Category.SIM)``; otherwise only the SIM
        counter ticks.
        """
        self._telemetry = bus

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._clock.now()

    @property
    def pending_events(self) -> int:
        """Number of events waiting to be dispatched."""
        return len(self._queue)

    @property
    def dispatched_count(self) -> int:
        """Total number of event callbacks run since kernel creation.

        Callbacks that raised count too — whether the exception was
        consumed by the error handler or propagated to the caller.
        """
        return self._dispatched_count

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def call_at(
        self, when: float, callback: Callable[[], Any], name: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        if when < self.now:
            raise SchedulingError(
                f"cannot schedule event {name!r} at {when!r}; now is {self.now!r}"
            )
        return self._queue.push(when, callback, name)

    def call_later(
        self, delay: float, callback: Callable[[], Any], name: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r} for event {name!r}")
        return self._queue.push(self.now + delay, callback, name)

    def call_soon(self, callback: Callable[[], Any], name: str = "") -> ScheduledEvent:
        """Schedule ``callback`` at the current instant (after pending same-time events)."""
        return self._queue.push(self.now, callback, name)

    def call_repeating(
        self,
        interval: float,
        callback: Callable[[], Any],
        name: str = "",
        immediately: bool = False,
    ) -> "RepeatingTimer":
        """Run ``callback`` every ``interval`` seconds until cancelled.

        Returns a :class:`RepeatingTimer` whose :meth:`~RepeatingTimer.cancel`
        stops the repetition.  Used by polling payloads and periodic
        samplers instead of hand-rolled self-rescheduling.
        """
        if interval <= 0:
            raise SchedulingError(f"repeating interval must be positive, got {interval!r}")
        timer = RepeatingTimer(self, interval, callback, name)
        timer.start(immediately=immediately)
        return timer

    def cancel(self, event: ScheduledEvent) -> bool:
        """Cancel a pending event; returns whether anything was cancelled."""
        if event.cancel_if_pending():
            self._queue.note_cancelled()
            return True
        return False

    def set_error_handler(
        self, handler: Optional[Callable[[ScheduledEvent, Exception], None]]
    ) -> None:
        """Install a handler for exceptions escaping event callbacks.

        Without a handler the exception propagates out of ``run_*`` /
        ``step``, aborting the simulation — the right default for tests.
        """
        self._error_handler = handler

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the single earliest event.

        Returns:
            True if an event ran; False if the queue was empty.
        """
        self._ensure_not_reentrant()
        event = self._queue.pop()
        if event is None:
            return False
        self._clock.advance_to(event.time)
        self._dispatch(event)
        return True

    def run_until(self, deadline: float) -> int:
        """Run all events with ``time <= deadline``; advance clock to deadline.

        Returns:
            The number of events dispatched.
        """
        self._ensure_not_reentrant()
        if deadline < self.now:
            raise SchedulingError(
                f"deadline {deadline!r} is before current time {self.now!r}"
            )
        dispatched = 0
        self._running = True
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None or next_time > deadline:
                    break
                event = self._queue.pop()
                assert event is not None
                self._clock.advance_to(event.time)
                self._dispatch(event)
                dispatched += 1
        finally:
            self._running = False
        self._clock.advance_to(deadline)
        return dispatched

    def run_for(self, duration: float) -> int:
        """Run for ``duration`` seconds of virtual time from now."""
        if duration < 0:
            raise SchedulingError(f"negative duration {duration!r}")
        return self.run_until(self.now + duration)

    def drain(self, max_events: int = 1_000_000) -> int:
        """Run until the queue is empty (bounded by ``max_events``).

        Raises:
            KernelStateError: if the bound is hit, which almost always
                means a callback chain is self-perpetuating.
        """
        self._ensure_not_reentrant()
        dispatched = 0
        self._running = True
        try:
            while True:
                event = self._queue.pop()
                if event is None:
                    break
                self._clock.advance_to(event.time)
                self._dispatch(event)
                dispatched += 1
                if dispatched >= max_events:
                    raise KernelStateError(
                        f"drain() exceeded {max_events} events; likely a live-lock"
                    )
        finally:
            self._running = False
        return dispatched

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _dispatch(self, event: ScheduledEvent) -> None:
        # The event is marked and counted exactly once whether the
        # callback returns, raises into a handler, or propagates out.
        bus = self._telemetry
        observed = False
        started = 0.0
        if bus is not None:
            observed = bus.wants(Category.SIM)
            if observed:
                started = _wall.perf_counter()
        try:
            event.callback()
        except Exception as exc:  # noqa: BLE001 - routed to handler by design
            if self._error_handler is None:
                raise
            self._error_handler(event, exc)
        finally:
            event.mark_dispatched()
            self._dispatched_count += 1
            if bus is not None:
                if observed:
                    bus.publish(
                        KernelDispatchEvent(
                            time=event.time,
                            event_name=event.name,
                            seq=self._dispatched_count,
                            wall_us=(_wall.perf_counter() - started) * 1e6,
                        )
                    )
                else:
                    bus.tick(Category.SIM, event.time)

    def _ensure_not_reentrant(self) -> None:
        if self._running:
            raise KernelStateError(
                "kernel is already running; event callbacks must schedule, not run"
            )


class RepeatingTimer:
    """Self-rescheduling timer created by :meth:`Kernel.call_repeating`."""

    def __init__(
        self,
        kernel: Kernel,
        interval: float,
        callback: Callable[[], Any],
        name: str = "",
    ) -> None:
        self._kernel = kernel
        self.interval = interval
        self._callback = callback
        self._name = name or "repeating"
        self._event: Optional[ScheduledEvent] = None
        self._cancelled = False
        self.fire_count = 0

    @property
    def active(self) -> bool:
        """Whether the timer will fire again."""
        return not self._cancelled

    def start(self, immediately: bool = False) -> None:
        """Arm the first firing (internal; called by the kernel)."""
        delay = 0.0 if immediately else self.interval
        self._event = self._kernel.call_later(delay, self._fire, name=self._name)

    def cancel(self) -> None:
        """Stop the timer; safe to call repeatedly."""
        if self._cancelled:
            return
        self._cancelled = True
        if self._event is not None:
            self._kernel.cancel(self._event)
            self._event = None

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fire_count += 1
        bus = self._kernel._telemetry
        if bus is not None:
            if bus.wants(Category.SIM):
                bus.publish(
                    TimerFiredEvent(
                        time=self._kernel.now,
                        timer_name=self._name,
                        fire_count=self.fire_count,
                        interval_s=self.interval,
                    )
                )
        self._callback()
        if not self._cancelled:
            self._event = self._kernel.call_later(
                self.interval, self._fire, name=self._name
            )

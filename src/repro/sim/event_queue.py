"""Priority event queue used by the simulation kernel.

The queue orders events by ``(time, sequence)`` so that events scheduled
for the same instant dispatch in FIFO order — the property the Android
framework simulator relies on for deterministic lifecycle callbacks
(e.g. ``onPause`` of the outgoing activity before ``onResume`` of the
incoming one when both are scheduled "now").
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from .errors import EventCancelledError


class ScheduledEvent:
    """Handle to an event sitting in (or already removed from) the queue.

    The handle supports O(1) cancellation: cancelling marks the entry and
    the kernel skips it on pop.  A cancelled or dispatched event cannot be
    revived.
    """

    __slots__ = ("time", "seq", "callback", "name", "_cancelled", "_dispatched")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], Any],
        name: str = "",
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.name = name
        self._cancelled = False
        self._dispatched = False

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this event."""
        return self._cancelled

    @property
    def dispatched(self) -> bool:
        """Whether the kernel already ran this event's callback."""
        return self._dispatched

    @property
    def pending(self) -> bool:
        """True while the event is still waiting to run."""
        return not (self._cancelled or self._dispatched)

    def cancel(self) -> None:
        """Remove the event from consideration.

        Raises:
            EventCancelledError: if the event already ran or was cancelled.
        """
        if self._dispatched:
            raise EventCancelledError(
                f"event {self.name or self.seq} already dispatched; cannot cancel"
            )
        if self._cancelled:
            raise EventCancelledError(
                f"event {self.name or self.seq} already cancelled"
            )
        self._cancelled = True

    def cancel_if_pending(self) -> bool:
        """Cancel the event if it has not yet run; return whether it did."""
        if self.pending:
            self._cancelled = True
            return True
        return False

    def mark_dispatched(self) -> None:
        """Internal: flag that the kernel has run the callback."""
        self._dispatched = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else (
            "dispatched" if self._dispatched else "pending"
        )
        return f"ScheduledEvent(t={self.time!r}, seq={self.seq}, {state}, name={self.name!r})"


class EventQueue:
    """A cancellable min-heap of :class:`ScheduledEvent` ordered by time."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of *pending* (not cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self, time: float, callback: Callable[[], Any], name: str = ""
    ) -> ScheduledEvent:
        """Insert a new event and return its handle."""
        event = ScheduledEvent(time, next(self._counter), callback, name)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def peek_time(self) -> Optional[float]:
        """Return the time of the earliest pending event, or None if empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Optional[ScheduledEvent]:
        """Remove and return the earliest pending event, or None if empty.

        Cancelled events encountered at the head are discarded silently;
        the returned event is always live (and not yet marked dispatched —
        the kernel does that after running the callback).
        """
        self._drop_cancelled_head()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def note_cancelled(self) -> None:
        """Adjust the live count after an external handle cancellation.

        Callers that cancel through :meth:`ScheduledEvent.cancel` directly
        (rather than via the kernel) should inform the queue so ``len``
        stays accurate.  The kernel wraps this for its users.
        """
        if self._live > 0:
            self._live -= 1

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

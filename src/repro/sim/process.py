"""Simulated OS process table.

Android's link-to-death mechanism (used by PowerManagerService to release
wakelocks of crashed apps, and by the ActivityManager to clean bindings)
is driven by the kernel Binder driver observing process death.  This
module provides the minimal process substrate for that: pids, the uid a
process runs as, spawn/kill, and death observers.

Each simulated app runs as one process (Android's default), so "app dies"
and "process dies" coincide; the table still supports several processes
per uid for completeness (e.g. isolated services).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .errors import DeadProcessError, UnknownPidError

DeathObserver = Callable[["ProcessRecord"], None]


@dataclass
class ProcessRecord:
    """A single simulated process."""

    pid: int
    uid: int
    name: str
    alive: bool = True
    start_time: float = 0.0
    death_time: Optional[float] = None
    _death_observers: List[DeathObserver] = field(default_factory=list, repr=False)

    def link_to_death(self, observer: DeathObserver) -> None:
        """Register ``observer`` to run when this process dies.

        Mirrors ``IBinder.linkToDeath``: linking to an already-dead process
        raises, matching the DeadObjectException behaviour.
        """
        if not self.alive:
            raise DeadProcessError(f"process {self.pid} ({self.name}) is dead")
        self._death_observers.append(observer)

    def unlink_to_death(self, observer: DeathObserver) -> bool:
        """Remove a previously registered observer; returns whether found."""
        try:
            self._death_observers.remove(observer)
            return True
        except ValueError:
            return False


class ProcessTable:
    """Spawn, look up, and kill simulated processes."""

    def __init__(self, first_pid: int = 1000) -> None:
        self._pids = itertools.count(first_pid)
        self._procs: Dict[int, ProcessRecord] = {}

    def spawn(self, uid: int, name: str, now: float = 0.0) -> ProcessRecord:
        """Create a live process for ``uid`` and return its record."""
        pid = next(self._pids)
        record = ProcessRecord(pid=pid, uid=uid, name=name, start_time=now)
        self._procs[pid] = record
        return record

    def get(self, pid: int) -> ProcessRecord:
        """Return the record for ``pid``.

        Raises:
            UnknownPidError: if no such pid was ever spawned.
        """
        try:
            return self._procs[pid]
        except KeyError:
            raise UnknownPidError(f"no process with pid {pid}") from None

    def is_alive(self, pid: int) -> bool:
        """Whether ``pid`` exists and has not been killed."""
        record = self._procs.get(pid)
        return bool(record and record.alive)

    def processes_of_uid(self, uid: int, alive_only: bool = True) -> List[ProcessRecord]:
        """All processes belonging to ``uid``."""
        return [
            record
            for record in self._procs.values()
            if record.uid == uid and (record.alive or not alive_only)
        ]

    def kill(self, pid: int, now: float = 0.0) -> ProcessRecord:
        """Kill ``pid`` and fire its death observers (link-to-death).

        Observers run in registration order.  Killing an already-dead
        process raises, so callers can't double-fire cleanup.
        """
        record = self.get(pid)
        if not record.alive:
            raise DeadProcessError(f"process {pid} ({record.name}) already dead")
        record.alive = False
        record.death_time = now
        observers = list(record._death_observers)
        record._death_observers.clear()
        for observer in observers:
            observer(record)
        return record

    def kill_uid(self, uid: int, now: float = 0.0) -> List[ProcessRecord]:
        """Kill every live process of ``uid`` (Force Stop semantics)."""
        return [self.kill(record.pid, now) for record in self.processes_of_uid(uid)]

    def live_count(self) -> int:
        """Number of live processes."""
        return sum(1 for record in self._procs.values() if record.alive)

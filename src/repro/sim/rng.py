"""Seeded randomness helpers.

Every stochastic element of the reproduction (the synthetic app corpus,
workload jitter, AnTuTu score noise) draws from a :class:`SeededRng`
created from an explicit seed so that experiments are reproducible
run-to-run and figure outputs are stable.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(seed: int, label: str) -> int:
    """Stable child seed for ``(seed, label)``.

    Uses SHA-256 rather than :func:`hash` so the derivation does not
    depend on ``PYTHONHASHSEED`` — forked streams must be identical
    across processes for cross-process fuzz replay and parallel
    experiments to be deterministic.
    """
    digest = hashlib.sha256(f"{int(seed)}\x1f{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFFFFFF


class SeededRng:
    """Thin wrapper over :class:`random.Random` with convenience draws."""

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._random = random.Random(self._seed)

    @property
    def seed(self) -> int:
        """The seed this generator was created with."""
        return self._seed

    def fork(self, label: str) -> "SeededRng":
        """Derive an independent child stream keyed by ``label``.

        Forking keeps unrelated consumers from perturbing each other's
        streams when one of them changes how many draws it makes.  The
        child seed is a stable digest of ``(seed, label)``, so forks are
        reproducible across processes and interpreter restarts.
        """
        return SeededRng(derive_seed(self._seed, label))

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform int in [low, high] inclusive."""
        return self._random.randint(low, high)

    def bernoulli(self, probability: float) -> bool:
        """True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability {probability!r} outside [0, 1]")
        return self._random.random() < probability

    def gauss(self, mean: float, stddev: float) -> float:
        """Normal draw."""
        return self._random.gauss(mean, stddev)

    def choice(self, items: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(items)

    def sample(self, items: Sequence[T], count: int) -> List[T]:
        """Sample ``count`` distinct items."""
        return self._random.sample(list(items), count)

    def shuffle(self, items: List[T]) -> None:
        """In-place shuffle."""
        self._random.shuffle(items)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Choice weighted by ``weights`` (need not be normalised)."""
        return self._random.choices(list(items), weights=list(weights), k=1)[0]

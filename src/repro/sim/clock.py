"""Virtual clock for the discrete-event kernel.

All framework and power-model time in this project is *virtual*: seconds
measured on a :class:`VirtualClock` advanced only by the kernel when it
dispatches events.  Nothing in the simulator ever reads wall-clock time,
which keeps every experiment deterministic and lets a 15-hour battery
drain (Fig. 3 of the paper) complete in milliseconds of real time.
"""

from __future__ import annotations

from .errors import SchedulingError


class VirtualClock:
    """A monotonically non-decreasing virtual time source.

    Time is a ``float`` number of seconds since simulation start.  Only the
    kernel should call :meth:`advance_to`; everything else treats the clock
    as read-only via :meth:`now`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SchedulingError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    def now(self) -> float:
        """Return the current virtual time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises:
            SchedulingError: if ``when`` is earlier than the current time.
        """
        if when < self._now:
            raise SchedulingError(
                f"cannot move clock backwards: now={self._now!r}, target={when!r}"
            )
        self._now = float(when)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now!r})"

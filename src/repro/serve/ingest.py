"""Trace ingestion: files, JSONL streams, directories, check corpora.

Everything the service can turn into a queryable session:

* a ``.json`` device-trace document (what :meth:`DeviceTrace.to_json`
  writes);
* a ``.json`` check-corpus entry (``kind: repro-check-corpus``) — the
  recorded scenario is replayed on a fresh simulated device and the
  resulting trace captured, so the conformance corpus doubles as a
  serving corpus;
* a ``.jsonl`` stream, one trace document (or corpus entry) per line;
* a directory of any of the above (sorted, recursive is not needed —
  corpora are flat).

Session names derive from file stems (``<stem>#<n>`` for JSONL lines),
so ingesting the same directory twice is idempotent by name.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Union

from ..offline.trace import DeviceTrace, TraceFormatError, capture_trace

PathLike = Union[str, Path]

#: The corpus-entry marker written by the conformance harness.
CORPUS_KIND = "repro-check-corpus"


@dataclass(frozen=True)
class IngestedTrace:
    """One trace ready to become a session."""

    session: str
    trace: DeviceTrace
    source: str


def trace_from_document(data: Dict[str, Any]) -> DeviceTrace:
    """A DeviceTrace from one parsed JSON document (trace or corpus entry).

    Corpus entries are replayed: the scenario runs on a fresh simulated
    device with E-Android attached and the full trace is captured.
    """
    if data.get("kind") == CORPUS_KIND:
        from ..check.runner import ScenarioExecutor
        from ..check.scenario import Scenario

        scenario = Scenario.from_dict(data["scenario"])
        executor = ScenarioExecutor(scenario)
        executor.run()
        return capture_trace(executor.system, executor.ea)
    # Plain device-trace document: reuse from_json's validation.
    return DeviceTrace.from_json(json.dumps(data))


def iter_traces(path: PathLike) -> Iterator[IngestedTrace]:
    """Yield every trace reachable from ``path`` (file or directory)."""
    root = Path(path)
    if root.is_dir():
        for child in sorted(root.iterdir()):
            if child.suffix in (".json", ".jsonl") and child.is_file():
                yield from iter_traces(child)
        return
    if not root.is_file():
        raise FileNotFoundError(f"no trace file or directory at {root}")
    if root.suffix == ".jsonl":
        for index, line in enumerate(root.read_text(encoding="utf-8").splitlines()):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                data = json.loads(stripped)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"{root}:{index + 1}: not valid JSON: {exc}"
                ) from exc
            if not isinstance(data, dict):
                raise TraceFormatError(
                    f"{root}:{index + 1}: trace line must be a JSON object"
                )
            yield IngestedTrace(
                session=f"{root.stem}#{index + 1}",
                trace=trace_from_document(data),
                source=f"{root}:{index + 1}",
            )
        return
    try:
        data = json.loads(root.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{root}: not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise TraceFormatError(f"{root}: trace document must be a JSON object")
    yield IngestedTrace(
        session=root.stem, trace=trace_from_document(data), source=str(root)
    )

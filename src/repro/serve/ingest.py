"""Trace ingestion: files, JSONL streams, directories, check corpora.

Everything the service can turn into a queryable session:

* a ``.json`` device-trace document (what :meth:`DeviceTrace.to_json`
  writes);
* a ``.bin`` / ``.rtb`` binary trace (the columnar format from
  :mod:`repro.store.binfmt`);
* a ``.json`` check-corpus entry (``kind: repro-check-corpus``) — the
  recorded scenario is replayed on a fresh simulated device and the
  resulting trace captured, so the conformance corpus doubles as a
  serving corpus;
* a ``.jsonl`` stream, one trace document (or corpus entry) per line;
* a directory of any of the above (sorted, recursive is not needed —
  corpora are flat).

Session names derive from file stems (``<stem>#<n>`` for JSONL lines).
Each :class:`IngestedTrace` also carries the content digest of its
source document, which the service uses to disambiguate same-stem files
from different directories (``<stem>@<digest8>``) instead of silently
replacing one with the other.

With an :class:`~repro.store.ArtifactStore`, corpus replay is
*digest-memoized*: the captured trace is stored under a
``refs/replay/<scenario-digest>`` pointer, and re-ingesting the same
entry loads the stored trace instead of re-simulating the scenario —
the difference between an O(simulation) and an O(decode) cold start.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union, TYPE_CHECKING

from ..faults import fault_point
from ..offline.trace import DeviceTrace, TraceFormatError, capture_trace
from ..store import StoreError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..store import ArtifactStore

PathLike = Union[str, Path]

#: The corpus-entry marker written by the conformance harness.
CORPUS_KIND = "repro-check-corpus"

#: Store ref namespace for memoized corpus-replay traces.
REPLAY_REF_NAMESPACE = "replay"

#: Suffixes ingested as binary trace documents.
BINARY_SUFFIXES = (".bin", ".rtb")


@dataclass(frozen=True)
class IngestedTrace:
    """One trace ready to become a session.

    ``digest`` is the SHA-256 of the source document's bytes — stable
    across re-ingests of the same content, different for same-stem
    files with different contents.
    """

    session: str
    trace: DeviceTrace
    source: str
    digest: str = ""


@dataclass(frozen=True)
class IngestError:
    """One source that could not become a session (lenient ingest).

    Collected instead of raised when :func:`iter_traces` is given an
    ``errors`` list, so one bad file in a directory never drops the
    rest of the batch — every source ends as a session *or* one of
    these records.
    """

    source: str
    error: str

    def to_dict(self) -> Dict[str, str]:
        """JSON-ready form (for the serve manifest)."""
        return {"source": self.source, "error": self.error}


def scenario_digest(data: Dict[str, Any]) -> str:
    """The memoization key of one corpus entry: SHA-256 of its canonical JSON."""
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _replay_corpus_entry(data: Dict[str, Any]) -> DeviceTrace:
    from ..check.runner import ScenarioExecutor
    from ..check.scenario import Scenario

    scenario = Scenario.from_dict(data["scenario"])
    executor = ScenarioExecutor(scenario)
    executor.run()
    return capture_trace(executor.system, executor.ea)


def trace_from_document(
    data: Dict[str, Any], store: Optional["ArtifactStore"] = None
) -> DeviceTrace:
    """A DeviceTrace from one parsed JSON document (trace or corpus entry).

    Corpus entries are replayed: the scenario runs on a fresh simulated
    device with E-Android attached and the full trace is captured.
    With a ``store``, replay is memoized by scenario digest — a corpus
    entry the store has seen before loads its captured trace instead of
    re-simulating (and a fresh replay is captured into the store for
    next time).
    """
    if data.get("kind") == CORPUS_KIND:
        if store is None:
            return _replay_corpus_entry(data)
        key = scenario_digest(data)
        memoized = store.get_ref(REPLAY_REF_NAMESPACE, key)
        if memoized is not None and store.has(memoized):
            try:
                trace = store.get(memoized)
            except (StoreError, OSError) as exc:
                # A corrupt or unreadable memoized replay must not abort
                # the batch: name it, evict it, and re-simulate.
                _note_replay_corruption(store.object_path(memoized), str(exc))
                store.evict(memoized)
            else:
                if isinstance(trace, DeviceTrace):
                    return trace
        trace = _replay_corpus_entry(data)
        try:
            info = store.put(trace, "trace-bin", meta={"scenario": key})
            store.set_ref(REPLAY_REF_NAMESPACE, key, info.digest)
        except OSError:
            pass  # memoization is an optimisation; serve the replay anyway
        return trace
    # Plain device-trace document: reuse from_json's validation.
    return DeviceTrace.from_json(json.dumps(data))


def _note_replay_corruption(path: Path, reason: str) -> None:
    from ..telemetry import CacheCorruptionEvent, TelemetryBus

    global _bus
    if _bus is None:
        _bus = TelemetryBus()
    _bus.publish(CacheCorruptionEvent(time=0.0, path=str(path), reason=reason))


_bus = None  # lazily created so capture() can hook it


def iter_traces(
    path: PathLike,
    store: Optional["ArtifactStore"] = None,
    errors: Optional[List[IngestError]] = None,
) -> Iterator[IngestedTrace]:
    """Yield every trace reachable from ``path`` (file or directory).

    With an ``errors`` list, per-source failures (unreadable file,
    malformed document, replay crash) are appended as
    :class:`IngestError` records and iteration continues with the next
    source — a batch is never dropped part-way.  Without one (the
    default), the first failure raises, as the CLI expects.
    """
    root = Path(path)
    if root.is_dir():
        for child in sorted(root.iterdir()):
            if (
                child.suffix in (".json", ".jsonl") + BINARY_SUFFIXES
                and child.is_file()
            ):
                yield from iter_traces(child, store=store, errors=errors)
        return
    if not root.is_file():
        missing = FileNotFoundError(f"no trace file or directory at {root}")
        if errors is None:
            raise missing
        errors.append(IngestError(source=str(root), error=str(missing)))
        return
    try:
        yield from _iter_file(root, store)
    except (TraceFormatError, StoreError, OSError, ValueError) as exc:
        if errors is None:
            raise
        errors.append(
            IngestError(source=str(root), error=f"{type(exc).__name__}: {exc}")
        )


def _iter_file(
    root: Path, store: Optional["ArtifactStore"] = None
) -> Iterator[IngestedTrace]:
    """Yield the traces of one source file (the raising core)."""
    fault_point("serve.parse")
    raw = root.read_bytes()
    if root.suffix in BINARY_SUFFIXES:
        yield IngestedTrace(
            session=root.stem,
            trace=DeviceTrace.from_bytes(raw),
            source=str(root),
            digest=hashlib.sha256(raw).hexdigest(),
        )
        return
    if root.suffix == ".jsonl":
        for index, line in enumerate(raw.decode("utf-8").splitlines()):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                data = json.loads(stripped)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"{root}:{index + 1}: not valid JSON: {exc}"
                ) from exc
            if not isinstance(data, dict):
                raise TraceFormatError(
                    f"{root}:{index + 1}: trace line must be a JSON object"
                )
            yield IngestedTrace(
                session=f"{root.stem}#{index + 1}",
                trace=trace_from_document(data, store=store),
                source=f"{root}:{index + 1}",
                digest=hashlib.sha256(stripped.encode("utf-8")).hexdigest(),
            )
        return
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"{root}: not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise TraceFormatError(f"{root}: trace document must be a JSON object")
    yield IngestedTrace(
        session=root.stem,
        trace=trace_from_document(data, store=store),
        source=str(root),
        digest=hashlib.sha256(raw).hexdigest(),
    )

"""The network serving layer: an asyncio TCP front-end for the service.

``python -m repro serve --listen HOST:PORT`` puts the existing JSONL
wire protocol (:mod:`repro.serve.protocol` — queries and aggregate ops,
newline-framed, ``ok``/``shed``/``error`` statuses) on a socket, so the
:class:`~repro.serve.service.ProfilingService` becomes reachable by
many concurrent out-of-process clients instead of one stdin pipe.

Design (every guarantee here is pinned by ``tests/test_serve_net.py``):

* **One line in, at least one line out.**  Every complete request line
  produces exactly one response — one per matched session for the
  ``"*"`` wildcard (expanded server-side, echoing the line's ``id``) —
  and a malformed, oversized, or unparseable line produces a typed
  ``status: error`` response.  Nothing is silently dropped, and no
  exception escapes a connection handler.
* **Read backpressure.**  Each connection holds a bounded in-flight
  permit pool (:attr:`NetConfig.inflight_per_connection`); when a
  client has that many queries outstanding the server simply stops
  reading its socket, and TCP flow control pushes the wait back to the
  sender.  A slowloris writer or a mid-line disconnect affects only its
  own connection.
* **Write backpressure.**  Responses flow through a bounded per-
  connection outbound queue drained by a single writer task that
  ``await``\\ s ``drain()`` after every line; a client that stops
  reading stalls only its own pipeline.
* **Admission control.**  Queries admitted while the server-wide
  pending count is at :attr:`NetConfig.max_pending` are refused with an
  explicit ``status: shed`` response through
  :meth:`~repro.serve.service.ProfilingService.shed`, keeping the
  service-wide ``received == answered + errors + shed`` invariant.
* **Deadlines.**  Every admitted query carries a deadline stamped at
  admission; a query that cannot produce its answer in
  :attr:`NetConfig.deadline_s` comes back as a typed ``error`` naming
  the query and session — the connection never hangs.
* **Graceful shutdown.**  :meth:`NetServer.shutdown` stops accepting,
  lets every connection finish the lines it has already received,
  flushes all in-flight responses, and only then closes sockets
  (bounded by :attr:`NetConfig.shutdown_timeout_s`).

Chaos sites ``net.accept`` / ``net.read`` / ``net.write`` /
``net.latency`` thread the transport through the fault plane
(:mod:`repro.faults`): latency injections exercise the deadline path,
io-errors kill a connection loudly (the peer sees the close), and
read/write corruption surfaces as parse errors — never a wrong answer.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..faults import fault_point, filter_read, filter_write
from ..faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy, retry_rng
from ..reports.request import ReportRequest
from .client import QueryFailedError
from .protocol import (
    ALL_SESSIONS,
    MAX_LINE_BYTES,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    DecodedLine,
    QueryRequest,
    QueryResponse,
    decode_request_line,
)
from .service import ProfilingService

#: Socket read granularity for the line assembler.
_READ_CHUNK = 1 << 16

#: Outbound-queue sentinel telling a connection's writer task to stop.
_CLOSE = object()


@dataclass(frozen=True)
class NetConfig:
    """Knobs for one TCP front-end."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: pick an ephemeral port (see NetServer.address)
    max_line_bytes: int = MAX_LINE_BYTES
    max_connections: int = 64
    max_pending: int = 256  # server-wide admission depth
    inflight_per_connection: int = 32
    pool_workers: int = 4  # threads answering queries off the event loop
    deadline_s: float = 30.0
    shutdown_timeout_s: float = 5.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (for manifests and smoke artifacts)."""
        return {
            "host": self.host,
            "port": self.port,
            "max_line_bytes": self.max_line_bytes,
            "max_connections": self.max_connections,
            "max_pending": self.max_pending,
            "inflight_per_connection": self.inflight_per_connection,
            "pool_workers": self.pool_workers,
            "deadline_s": self.deadline_s,
            "shutdown_timeout_s": self.shutdown_timeout_s,
        }


@dataclass
class NetStats:
    """Transport-level counters (the service keeps its own).

    The accounting identity the tests pin:
    ``received == answered + errors + shed`` over admitted queries, and
    every non-skipped line yields at least one response.
    """

    connections_opened: int = 0
    connections_closed: int = 0
    connections_refused: int = 0
    lines: int = 0
    oversized: int = 0
    parse_errors: int = 0
    received: int = 0
    answered: int = 0
    errors: int = 0
    shed: int = 0
    deadline_exceeded: int = 0
    responses_written: int = 0
    read_errors: int = 0
    write_errors: int = 0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (for the CLI summary / smoke artifacts)."""
        return {
            "connections_opened": self.connections_opened,
            "connections_closed": self.connections_closed,
            "connections_refused": self.connections_refused,
            "lines": self.lines,
            "oversized": self.oversized,
            "parse_errors": self.parse_errors,
            "received": self.received,
            "answered": self.answered,
            "errors": self.errors,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
            "responses_written": self.responses_written,
            "read_errors": self.read_errors,
            "write_errors": self.write_errors,
        }


class LineAssembler:
    """Chunk stream -> newline-framed lines, with oversized resync.

    Pure and synchronous so the framing logic is property-testable
    without sockets (``tests/test_protocol_property.py``): feeding the
    same byte stream in any chunking yields the same events.  Events
    are ``("line", bytes)`` for each complete line and
    ``("oversized", None)`` exactly once per line whose length exceeds
    ``max_line_bytes`` — the rest of that line is discarded and the
    assembler resynchronises at the next newline.
    """

    def __init__(self, max_line_bytes: int = MAX_LINE_BYTES) -> None:
        self.max_line_bytes = int(max_line_bytes)
        self._buf = bytearray()
        self._skipping = False

    def feed(self, chunk: bytes) -> List[Tuple[str, Optional[bytes]]]:
        """Absorb one chunk; return the framing events it completes."""
        events: List[Tuple[str, Optional[bytes]]] = []
        self._buf += chunk
        while True:
            newline = self._buf.find(b"\n")
            if newline < 0:
                if self._skipping:
                    self._buf.clear()
                elif len(self._buf) > self.max_line_bytes:
                    # The line is already too long and still unfinished:
                    # flag it now, drop what we have, resync at the next
                    # newline.  Read backpressure would otherwise let a
                    # hostile client balloon the buffer without bound.
                    events.append(("oversized", None))
                    self._skipping = True
                    self._buf.clear()
                break
            line = bytes(self._buf[:newline])
            del self._buf[: newline + 1]
            if self._skipping:
                self._skipping = False  # the oversized line's tail
                continue
            if len(line) > self.max_line_bytes:
                events.append(("oversized", None))
                continue
            events.append(("line", line))
        return events

    def finish(self) -> None:
        """EOF: a trailing partial line (no newline) is dropped.

        A mid-line disconnect therefore never produces a half-parsed
        query — the incomplete tail simply dies with the connection.
        """
        self._buf.clear()
        self._skipping = False


class _Connection:
    """Per-connection state: queues, permits, tasks."""

    def __init__(self, conn_id: int, reader, writer, config: NetConfig) -> None:
        self.id = conn_id
        self.reader = reader
        self.writer = writer
        peer = writer.get_extra_info("peername")
        self.peer = f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) else str(peer)
        self.seq = 0  # per-connection line sequence (default query ids)
        self.lines = 0
        self.responses = 0
        self.broken = False  # write side failed; discard, don't wedge
        self.inflight = asyncio.Semaphore(config.inflight_per_connection)
        self.outbound: "asyncio.Queue[Any]" = asyncio.Queue(
            maxsize=2 * config.inflight_per_connection
        )
        self.pending: Set[asyncio.Task] = set()
        self.writer_task: Optional[asyncio.Task] = None


class NetServer:
    """The asyncio TCP front-end over one in-process ProfilingService."""

    def __init__(
        self, service: ProfilingService, config: Optional[NetConfig] = None
    ) -> None:
        self.service = service
        self.config = config or NetConfig()
        self.stats = NetStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Dict[int, _Connection] = {}
        self._conn_seq = 0
        self._pending = 0  # admitted queries not yet responded, server-wide
        self._closing = False
        self._executor: Optional[ThreadPoolExecutor] = None
        # The service is not thread-safe (stats, LRU): the pool threads
        # serialise on this lock; the pool still overlaps deadline waits
        # and injected latency, which sleep before taking it.
        self._service_lock = threading.Lock()
        self._bus = service.bus

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, self.config.pool_workers),
            thread_name_prefix="repro-net",
        )
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` ephemeral binds."""
        assert self._server is not None and self._server.sockets
        name = self._server.sockets[0].getsockname()
        return (name[0], name[1])

    async def shutdown(self) -> None:
        """Graceful stop: flush in-flight responses, then close.

        Stops accepting, then feeds EOF to every connection's reader so
        each finishes the lines it has already received, drains its
        pending queries and outbound responses, and closes.  Bounded by
        ``shutdown_timeout_s``; stragglers are cancelled after that.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections.values()):
            conn.reader.feed_eof()
        deadline = asyncio.get_running_loop().time() + self.config.shutdown_timeout_s
        while self._connections:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                for conn in list(self._connections.values()):
                    for task in list(conn.pending):
                        task.cancel()
                    if conn.writer_task is not None:
                        conn.writer_task.cancel()
                    try:
                        conn.writer.transport.abort()
                    except Exception:
                        pass
                break
            await asyncio.sleep(min(0.01, remaining))
        if self._executor is not None:
            # Don't wait for threads parked in injected latency sleeps;
            # their results are already discarded.
            self._executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        try:
            fault_point("net.accept")
        except (OSError, RuntimeError):
            # Injected accept failure: refuse loudly and hang up.  The
            # peer sees a typed error line, never a silent hang.
            self.stats.connections_refused += 1
            await self._refuse(writer, "connection refused (accept fault)")
            return
        if self._closing:
            self.stats.connections_refused += 1
            await self._refuse(writer, "server is shutting down")
            return
        if len(self._connections) >= self.config.max_connections:
            self.stats.connections_refused += 1
            await self._refuse(
                writer,
                f"connection limit ({self.config.max_connections}) reached; "
                "retry later",
            )
            return
        self._conn_seq += 1
        conn = _Connection(self._conn_seq, reader, writer, self.config)
        self._connections[conn.id] = conn
        self.stats.connections_opened += 1
        self._publish_connection_opened(conn)
        conn.writer_task = asyncio.ensure_future(self._write_loop(conn))
        try:
            await self._read_loop(conn)
        finally:
            await self._close_connection(conn)

    async def _refuse(self, writer, reason: str) -> None:
        """One error line, then close — for connections never admitted."""
        try:
            payload = {"id": 0, "status": STATUS_ERROR, "error": reason}
            writer.write((json.dumps(payload) + "\n").encode("utf-8"))
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_loop(self, conn: _Connection) -> None:
        assembler = LineAssembler(self.config.max_line_bytes)
        while True:
            try:
                chunk = await conn.reader.read(_READ_CHUNK)
            except (ConnectionError, OSError):
                break  # mid-line disconnect: only this connection dies
            if not chunk:
                assembler.finish()
                break
            try:
                chunk = filter_read("net.read", bytes(chunk))
            except (OSError, RuntimeError):
                self.stats.read_errors += 1
                break  # injected read failure: the peer sees the close
            for kind, line in assembler.feed(chunk):
                if kind == "oversized":
                    conn.seq += 1
                    self.stats.lines += 1
                    self.stats.oversized += 1
                    self.stats.errors += 1
                    await self._enqueue(
                        conn,
                        {
                            "id": conn.seq,
                            "status": STATUS_ERROR,
                            "error": (
                                "line exceeds the maximum line size "
                                f"({self.config.max_line_bytes} bytes)"
                            ),
                        },
                    )
                    continue
                await self._handle_line(conn, line)

    async def _handle_line(self, conn: _Connection, raw: bytes) -> None:
        text = raw.decode("utf-8", errors="replace").strip()
        if not text or text.startswith("#"):
            return  # blank lines and comments skip, matching the daemon
        conn.seq += 1
        conn.lines += 1
        self.stats.lines += 1
        decoded = decode_request_line(text, default_id=conn.seq)
        if decoded.kind == "error":
            self.stats.parse_errors += 1
            self.stats.errors += 1
            await self._enqueue(
                conn,
                {"id": decoded.id, "status": STATUS_ERROR, "error": decoded.error},
            )
            return
        if decoded.kind == "aggregate":
            await self._admit(conn, decoded, None)
            return
        query = decoded.query
        assert query is not None
        if query.session == ALL_SESSIONS:
            expanded = [
                replace(query, session=name)
                for name in self.service.session_names()
            ]
            if not expanded:
                self.stats.errors += 1
                await self._enqueue(
                    conn,
                    {
                        "id": query.id,
                        "session": ALL_SESSIONS,
                        "status": STATUS_ERROR,
                        "error": "wildcard query matched no sessions "
                        "(nothing ingested)",
                    },
                )
                return
        else:
            expanded = [query]
        for subquery in expanded:
            await self._admit(conn, decoded, subquery)

    async def _admit(
        self,
        conn: _Connection,
        decoded: DecodedLine,
        query: Optional[QueryRequest],
    ) -> None:
        """Admission control + read backpressure for one work item."""
        if query is not None and self._pending >= self.config.max_pending:
            # Queue full: an explicit shed through the service's own
            # accounting path, never a silent drop.
            self.stats.received += 1
            self.stats.shed += 1
            response = self.service.shed(query)
            await self._enqueue(conn, response.to_dict())
            return
        # Bounded in-flight permits per connection: when they run out
        # the reader stops consuming this socket (read backpressure).
        await conn.inflight.acquire()
        self.stats.received += 1
        self._pending += 1
        deadline = asyncio.get_running_loop().time() + self.config.deadline_s
        task = asyncio.ensure_future(self._process(conn, decoded, query, deadline))
        conn.pending.add(task)
        task.add_done_callback(conn.pending.discard)

    async def _process(
        self,
        conn: _Connection,
        decoded: DecodedLine,
        query: Optional[QueryRequest],
        deadline: float,
    ) -> None:
        loop = asyncio.get_running_loop()
        label_session = query.session if query is not None else "(aggregate)"
        qid = query.id if query is not None else decoded.id
        try:
            remaining = deadline - loop.time()
            payload: Dict[str, Any]
            try:
                if remaining <= 0:
                    raise asyncio.TimeoutError
                if query is not None:
                    future = loop.run_in_executor(
                        self._executor, self._dispatch_query, query
                    )
                    response = await asyncio.wait_for(future, timeout=remaining)
                    payload = response.to_dict()
                    if response.status == STATUS_OK:
                        self.stats.answered += 1
                    elif response.status == STATUS_SHED:
                        self.stats.shed += 1
                    else:
                        self.stats.errors += 1
                else:
                    future = loop.run_in_executor(
                        self._executor, self._dispatch_aggregate, decoded.aggregate
                    )
                    aggregate = await asyncio.wait_for(future, timeout=remaining)
                    payload = {"id": decoded.id}
                    payload.update(aggregate.to_dict())
                    self.stats.answered += 1
            except asyncio.TimeoutError:
                self.stats.deadline_exceeded += 1
                self.stats.errors += 1
                error = (
                    f"deadline exceeded: query {qid} on session "
                    f"{label_session!r} missed the "
                    f"{self.config.deadline_s:g}s deadline"
                )
                payload = {
                    "id": qid,
                    "session": label_session,
                    "status": STATUS_ERROR,
                    "error": error,
                }
                self._publish_deadline(query, decoded)
            except Exception as exc:
                # Nothing may escape a connection handler: whatever the
                # compute path threw becomes a typed error response.
                self.stats.errors += 1
                payload = {
                    "id": qid,
                    "session": label_session,
                    "status": STATUS_ERROR,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            await self._enqueue(conn, payload)
        finally:
            self._pending -= 1
            conn.inflight.release()

    def _dispatch_query(self, query: QueryRequest) -> QueryResponse:
        """Runs on a pool thread: chaos latency point, then the service."""
        fault_point("net.latency")
        with self._service_lock:
            return self.service.submit(query)

    def _dispatch_aggregate(self, request: Any):
        fault_point("net.latency")
        with self._service_lock:
            return self.service.aggregate(request)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    async def _enqueue(self, conn: _Connection, payload: Dict[str, Any]) -> None:
        """Queue one response line (bounded: write backpressure)."""
        if conn.broken:
            return  # the peer is gone; responses have nowhere to go
        await conn.outbound.put(payload)

    async def _write_loop(self, conn: _Connection) -> None:
        while True:
            item = await conn.outbound.get()
            if item is _CLOSE:
                break
            if conn.broken:
                continue  # drain without writing so producers never wedge
            data = (json.dumps(item) + "\n").encode("utf-8")
            try:
                data = filter_write("net.write", data)
                conn.writer.write(data)
                await conn.writer.drain()
                conn.responses += 1
                self.stats.responses_written += 1
            except (ConnectionError, OSError, RuntimeError):
                # Peer closed (or an injected write fault): mark the
                # connection broken and keep draining the queue so
                # in-flight producers are released, then wake the reader.
                self.stats.write_errors += 1
                conn.broken = True
                try:
                    conn.writer.transport.abort()
                except Exception:
                    pass

    async def _close_connection(self, conn: _Connection) -> None:
        """Flush everything this connection still owes, then close."""
        if conn.pending:
            await asyncio.gather(*list(conn.pending), return_exceptions=True)
        await conn.outbound.put(_CLOSE)
        if conn.writer_task is not None:
            try:
                await asyncio.wait_for(
                    conn.writer_task, timeout=self.config.shutdown_timeout_s
                )
            except (asyncio.TimeoutError, asyncio.CancelledError):
                conn.writer_task.cancel()
        try:
            conn.writer.close()
            await conn.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._connections.pop(conn.id, None)
        self.stats.connections_closed += 1
        self._publish_connection_closed(conn)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def _publish(self, event) -> None:
        if self._bus is None:
            from ..telemetry import TelemetryBus

            self._bus = TelemetryBus()
        self._bus.publish(event)

    def _publish_connection_opened(self, conn: _Connection) -> None:
        from ..telemetry import ConnectionOpenedEvent

        self._publish(
            ConnectionOpenedEvent(
                time=0.0, peer=conn.peer, open_connections=len(self._connections)
            )
        )

    def _publish_connection_closed(self, conn: _Connection) -> None:
        from ..telemetry import ConnectionClosedEvent

        self._publish(
            ConnectionClosedEvent(
                time=0.0, peer=conn.peer, lines=conn.lines, responses=conn.responses
            )
        )

    def _publish_deadline(
        self, query: Optional[QueryRequest], decoded: DecodedLine
    ) -> None:
        from ..telemetry import QueryDeadlineExceededEvent

        self._publish(
            QueryDeadlineExceededEvent(
                time=0.0,
                session=query.session if query is not None else "(aggregate)",
                backend=query.report.backend if query is not None else "aggregate",
                deadline_s=self.config.deadline_s,
            )
        )


# ----------------------------------------------------------------------
# the async client
# ----------------------------------------------------------------------
class AsyncServiceClient:
    """Async front door to a :class:`NetServer` over one TCP connection.

    The network twin of :class:`~repro.serve.client.ServiceClient`:
    keyword-style queries, typed :class:`QueryFailedError` on hard
    errors, and bounded resubmission of ``shed`` responses — the
    backoff between resubmits reuses the shared retry machinery
    (:data:`repro.faults.retry.DEFAULT_RETRY_POLICY` +
    :func:`repro.faults.retry.retry_rng`), so client-side backoff is as
    deterministic and analysable as every other retry site.

    Responses are matched to requests by ``id``; the wildcard session
    is expanded *server-side* with the id echoed once per session, so
    :meth:`submit` (exactly-one-response semantics) refuses ``"*"`` —
    use :meth:`query_raw_line` for wildcard fan-out.
    """

    def __init__(
        self,
        host: str,
        port: int,
        max_resubmits: int = 3,
        policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        max_line_bytes: int = 16 * MAX_LINE_BYTES,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.max_resubmits = int(max_resubmits)
        self.policy = policy
        self.max_line_bytes = int(max_line_bytes)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._read_task: Optional[asyncio.Task] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._unmatched: List[Dict[str, Any]] = []
        self._next_id = 1
        self._rng = retry_rng("net.client.shed")

    async def __aenter__(self) -> "AsyncServiceClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def connect(self) -> None:
        """Open the connection and start the response dispatcher."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=self.max_line_bytes
        )
        self._read_task = asyncio.ensure_future(self._read_loop())

    async def close(self) -> None:
        """Close the connection (pending futures fail with the reason)."""
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if self._read_task is not None:
            try:
                await asyncio.wait_for(self._read_task, timeout=1.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self._read_task.cancel()
        self._writer = None
        self._reader = None

    async def _read_loop(self) -> None:
        assert self._reader is not None
        error: Optional[BaseException] = None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    data = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    continue  # a torn/corrupted response line (chaos)
                future = self._pending.get(int(data.get("id", -1)))
                if future is not None and not future.done():
                    future.set_result(data)
                else:
                    self._unmatched.append(data)
        except (ConnectionError, OSError) as exc:
            error = exc
        finally:
            failure = error or ConnectionError(
                "connection closed before a response arrived"
            )
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(failure)

    def _take_id(self) -> int:
        qid = self._next_id
        self._next_id += 1
        return qid

    async def _roundtrip(self, query: QueryRequest) -> QueryResponse:
        assert self._writer is not None
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[query.id] = future
        try:
            self._writer.write(
                (json.dumps(query.to_dict()) + "\n").encode("utf-8")
            )
            await self._writer.drain()
            data = await future
        finally:
            self._pending.pop(query.id, None)
        return QueryResponse.from_dict(data)

    async def submit(self, query: QueryRequest) -> QueryResponse:
        """One query -> one response, resubmitting bounded on ``shed``."""
        if query.session == ALL_SESSIONS:
            raise ValueError(
                "AsyncServiceClient.submit needs a concrete session; "
                "the '*' wildcard fans out server-side (multiple "
                "responses per request line)"
            )
        response = await self._roundtrip(query)
        for attempt in range(self.max_resubmits):
            if response.status != STATUS_SHED:
                return response
            await asyncio.sleep(self.policy.delay_for(attempt, self._rng))
            response = await self._roundtrip(query)
        if response.status == STATUS_SHED:
            response = QueryResponse(
                id=response.id,
                session=response.session,
                status=STATUS_SHED,
                error=(
                    f"query {response.id} on session {response.session!r} "
                    f"still shed after {self.max_resubmits} resubmit(s): "
                    f"{response.error or 'queue full'}"
                ),
            )
        return response

    async def submit_all(
        self, queries: Sequence[QueryRequest]
    ) -> List[QueryResponse]:
        """Submit concurrently; responses come back in request order."""
        return list(await asyncio.gather(*(self.submit(q) for q in queries)))

    async def query(
        self,
        session: str,
        backend: str,
        start: float = 0.0,
        end: Optional[float] = None,
        owners: Optional[Sequence[int]] = None,
    ) -> Dict[str, Any]:
        """One report payload; raises :class:`QueryFailedError` on error."""
        request = QueryRequest(
            id=self._take_id(),
            session=session,
            report=ReportRequest(
                backend=backend,
                start=start,
                end=end,
                owners=None if owners is None else tuple(owners),
            ),
        )
        response = await self.submit(request)
        if response.status != STATUS_OK or response.report is None:
            raise QueryFailedError(response)
        return response.report

    async def total_j(
        self,
        session: str,
        backend: str,
        start: float = 0.0,
        end: Optional[float] = None,
    ) -> float:
        """Convenience: just the report's total joules."""
        payload = await self.query(session, backend, start, end)
        return float(payload["total_j"])

"""The query service's request/response wire protocol.

One :class:`QueryRequest` names a *session* (an ingested trace) plus a
:class:`~repro.reports.ReportRequest`; one :class:`QueryResponse`
carries the answered :class:`~repro.reports.ReportView` wire form (its
``to_dict()``), or an explicit refusal.  Both round-trip through flat
JSON objects, one per JSONL line — which is also the daemon's stdin /
stdout framing.

Response statuses:

* ``ok``    — the report payload is attached;
* ``shed``  — admission control refused the query (queue full); the
  caller should back off and resubmit;
* ``error`` — the query itself was bad (unknown session/backend,
  malformed window); resubmitting the same query cannot succeed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..reports.request import ReportRequest

STATUS_OK = "ok"
STATUS_SHED = "shed"
STATUS_ERROR = "error"

#: Session name that expands to *every* ingested session client-side.
ALL_SESSIONS = "*"

#: The largest wire line (request side) any serving front-end accepts —
#: shared by the stdin daemon and the TCP server so an oversized line
#: degrades to the same typed ``error`` response on both transports.
MAX_LINE_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A wire document could not be parsed as a query."""


@dataclass(frozen=True)
class QueryRequest:
    """One query: which session, which report.

    ``id`` is caller-chosen and echoed back verbatim so responses can be
    matched to requests across batching and shard fan-out.
    """

    id: int
    session: str
    report: ReportRequest

    def key(self):
        """The result-cache identity: (session, backend, window, owners)."""
        return (self.session,) + self.report.key()

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-ready form (one JSONL line)."""
        data: Dict[str, Any] = {"id": self.id, "session": self.session}
        data.update(self.report.to_dict())
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], default_id: int = 0) -> "QueryRequest":
        """Parse the :meth:`to_dict` shape (validating as it builds)."""
        try:
            session = str(data["session"])
        except KeyError as exc:
            raise ProtocolError("query is missing required field 'session'") from exc
        if "backend" not in data:
            raise ProtocolError("query is missing required field 'backend'")
        report = ReportRequest.from_dict(data)
        return cls(id=int(data.get("id", default_id)), session=session, report=report)


@dataclass
class QueryResponse:
    """One answered (or refused) query."""

    id: int
    session: str
    status: str
    report: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    cached: bool = False
    latency_us: float = 0.0
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the query was answered."""
        return self.status == STATUS_OK

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-ready form (one JSONL line)."""
        data: Dict[str, Any] = {
            "id": self.id,
            "session": self.session,
            "status": self.status,
            "cached": self.cached,
            "latency_us": self.latency_us,
        }
        if self.report is not None:
            data["report"] = self.report
        if self.error is not None:
            data["error"] = self.error
        data.update(self.extras)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QueryResponse":
        """Rebuild from :meth:`to_dict` data."""
        known = {"id", "session", "status", "cached", "latency_us", "report", "error"}
        return cls(
            id=int(data.get("id", 0)),
            session=str(data.get("session", "")),
            status=str(data["status"]),
            report=data.get("report"),
            error=data.get("error"),
            cached=bool(data.get("cached", False)),
            latency_us=float(data.get("latency_us", 0.0)),
            extras={k: v for k, v in data.items() if k not in known},
        )


def parse_queries_jsonl(lines: Iterable[str]) -> List[QueryRequest]:
    """Parse a JSONL query stream (blank lines and ``#`` comments skip).

    Queries without an explicit ``id`` get their (1-based) line sequence
    number, so responses stay matchable even for anonymous streams.
    """
    queries: List[QueryRequest] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"line {lineno}: not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ProtocolError(
                f"line {lineno}: query must be a JSON object, "
                f"got {type(data).__name__}"
            )
        try:
            queries.append(QueryRequest.from_dict(data, default_id=lineno))
        except (ProtocolError, KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"line {lineno}: {exc}") from exc
    return queries


def responses_to_jsonl(responses: Iterable[QueryResponse]) -> str:
    """Serialise responses as JSONL text (one response per line)."""
    return "\n".join(json.dumps(r.to_dict()) for r in responses) + "\n"


@dataclass(frozen=True)
class DecodedLine:
    """What one wire line decoded to — a query, an aggregate, or a typed
    refusal.  Exactly one of ``query`` / ``aggregate`` / ``error`` is
    set, matching ``kind``.
    """

    kind: str  # "query" | "aggregate" | "error"
    id: int
    query: Optional[QueryRequest] = None
    aggregate: Optional[Any] = None
    error: Optional[str] = None


def decode_request_line(text: str, default_id: int = 0) -> DecodedLine:
    """Decode one JSONL wire line; **never raises**.

    This is the single request-parse boundary every serving front-end
    (stdin daemon, TCP server) goes through: any garbage, truncated,
    non-object, or otherwise malformed line comes back as a typed
    ``kind="error"`` result the caller turns into a ``status: error``
    response — a broken line must never take down a connection handler,
    and must never be silently dropped.  A line carrying an ``op`` field
    is routed to the fleet-aggregation request parser, everything else
    to :meth:`QueryRequest.from_dict`.
    """
    from ..aggregate import AggregateRequestError, is_aggregate_document

    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        return DecodedLine(kind="error", id=default_id, error=f"not valid JSON: {exc}")
    except (RecursionError, ValueError) as exc:  # pathological nesting etc.
        return DecodedLine(
            kind="error", id=default_id, error=f"unparseable line: {exc}"
        )
    if not isinstance(data, dict):
        return DecodedLine(
            kind="error",
            id=default_id,
            error=f"query must be a JSON object, got {type(data).__name__}",
        )
    try:
        qid = int(data.get("id", default_id))
    except (TypeError, ValueError, OverflowError):
        return DecodedLine(
            kind="error",
            id=default_id,
            error=f"query id must be an integer, got {data.get('id')!r}",
        )
    try:
        if is_aggregate_document(data):
            from ..aggregate import AggregateRequest

            return DecodedLine(
                kind="aggregate", id=qid, aggregate=AggregateRequest.from_dict(data)
            )
        return DecodedLine(
            kind="query",
            id=qid,
            query=QueryRequest.from_dict(data, default_id=default_id),
        )
    except (
        ProtocolError,
        AggregateRequestError,
        KeyError,
        TypeError,
        ValueError,
        OverflowError,
    ) as exc:
        return DecodedLine(kind="error", id=qid, error=str(exc))
    except Exception as exc:  # the never-raise contract is load-bearing:
        # an exception escaping here would kill a connection handler.
        return DecodedLine(
            kind="error", id=qid, error=f"{type(exc).__name__}: {exc}"
        )

"""repro.serve — the long-lived energy query service.

Ingest device traces (files, JSONL streams, directories, the check
corpus) into sessions once; answer ``energy`` / ``batterystats`` /
``powertutor`` / ``eandroid`` / ``collateral`` report queries many
times, through the unified :mod:`repro.reports` API, with an LRU result
cache, shard-per-worker fan-out over :mod:`repro.exec`, and explicit
backpressure.  See ``docs/SERVING.md``.
"""

from .client import QueryFailedError, ServiceClient
from .net import AsyncServiceClient, LineAssembler, NetConfig, NetServer, NetStats
from .ingest import (
    CORPUS_KIND,
    REPLAY_REF_NAMESPACE,
    IngestedTrace,
    iter_traces,
    scenario_digest,
    trace_from_document,
)
from .protocol import (
    ALL_SESSIONS,
    MAX_LINE_BYTES,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    DecodedLine,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    decode_request_line,
    parse_queries_jsonl,
    responses_to_jsonl,
)
from .service import (
    SESSION_REF_NAMESPACE,
    ProfilingService,
    ResultLRU,
    ServeStats,
    ServiceConfig,
    SessionRecord,
    UnknownSessionError,
)

__all__ = [
    "ALL_SESSIONS",
    "AsyncServiceClient",
    "CORPUS_KIND",
    "DecodedLine",
    "IngestedTrace",
    "LineAssembler",
    "MAX_LINE_BYTES",
    "NetConfig",
    "NetServer",
    "NetStats",
    "ProfilingService",
    "ProtocolError",
    "REPLAY_REF_NAMESPACE",
    "SESSION_REF_NAMESPACE",
    "QueryFailedError",
    "QueryRequest",
    "QueryResponse",
    "ResultLRU",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_SHED",
    "ServeStats",
    "ServiceClient",
    "ServiceConfig",
    "SessionRecord",
    "UnknownSessionError",
    "decode_request_line",
    "iter_traces",
    "parse_queries_jsonl",
    "responses_to_jsonl",
    "scenario_digest",
    "trace_from_document",
]

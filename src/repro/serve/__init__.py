"""repro.serve — the long-lived energy query service.

Ingest device traces (files, JSONL streams, directories, the check
corpus) into sessions once; answer ``energy`` / ``batterystats`` /
``powertutor`` / ``eandroid`` / ``collateral`` report queries many
times, through the unified :mod:`repro.reports` API, with an LRU result
cache, shard-per-worker fan-out over :mod:`repro.exec`, and explicit
backpressure.  See ``docs/SERVING.md``.
"""

from .client import QueryFailedError, ServiceClient
from .ingest import CORPUS_KIND, IngestedTrace, iter_traces, trace_from_document
from .protocol import (
    ALL_SESSIONS,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    parse_queries_jsonl,
    responses_to_jsonl,
)
from .service import (
    ProfilingService,
    ResultLRU,
    ServeStats,
    ServiceConfig,
    SessionRecord,
    UnknownSessionError,
)

__all__ = [
    "ALL_SESSIONS",
    "CORPUS_KIND",
    "IngestedTrace",
    "ProfilingService",
    "ProtocolError",
    "QueryFailedError",
    "QueryRequest",
    "QueryResponse",
    "ResultLRU",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_SHED",
    "ServeStats",
    "ServiceClient",
    "ServiceConfig",
    "SessionRecord",
    "UnknownSessionError",
    "iter_traces",
    "parse_queries_jsonl",
    "responses_to_jsonl",
    "trace_from_document",
]

"""The profiling query service: sessions, shards, cache, admission.

:class:`ProfilingService` is the long-lived serving path the ROADMAP
asks for — ingest once, answer many.  One *session* per ingested
:class:`~repro.offline.trace.DeviceTrace`; every query is a typed
:class:`~repro.reports.ReportRequest` against one session and is
answered through the unified :class:`~repro.reports.ReportView`
protocol, so all five backends come back in one shape.

Scale-out structure:

* **Result LRU** — answered wire payloads are cached on
  ``(session, backend, window, owners)``; an unchanged question is a
  dictionary lookup, never a recomputation.
* **Shard-per-worker** — sessions hash-partition over ``workers``
  shards (stable crc32 of the session name); with ``workers > 1`` a
  batch's cache misses fan out through the existing
  :class:`~repro.exec.engine.ExperimentEngine` process pool, one
  ``serve`` job per shard.
* **Admission control** — arrivals are taken in bursts against a
  bounded queue of depth ``max_queue``; what doesn't fit is *shed* with
  an explicit ``status: shed`` response (never silently dropped), the
  signal for callers to back off and resubmit.
* **Artifact store** — with ``store_dir`` set, the service runs against
  a :class:`~repro.store.ArtifactStore`: corpus replay is digest-
  memoized (see :mod:`repro.serve.ingest`), sessions persist as
  ``refs/session/<name>`` pointers at binary trace artifacts (so a new
  process can :meth:`~ProfilingService.restore_sessions` without
  re-ingesting), and ``spill=True`` releases each trace from memory
  after ingest, faulting it back in lazily on first query.
* **Telemetry** — every ingest/serve/shed publishes a typed event on
  the service's :class:`~repro.telemetry.TelemetryBus`
  (:data:`~repro.telemetry.Category.SERVE`).
"""

from __future__ import annotations

import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..faults import RetriesExhaustedError, fault_point, run_with_retry
from ..offline.analyzer import OfflineAnalyzer
from ..offline.trace import DeviceTrace
from ..reports.request import UnknownBackendError
from ..store import StoreError
from .ingest import IngestedTrace, IngestError, PathLike, iter_traces
from .protocol import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    QueryRequest,
    QueryResponse,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..aggregate.engine import AggregateResponse
    from ..aggregate.request import AggregateRequest
    from ..store import ArtifactStore

#: Store ref namespace persisted sessions live under.
SESSION_REF_NAMESPACE = "session"


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for one service instance."""

    max_queue: int = 256
    cache_entries: int = 512
    workers: int = 1
    telemetry: bool = True
    store_dir: Optional[str] = None
    spill: bool = False

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (for the manifest)."""
        return {
            "max_queue": self.max_queue,
            "cache_entries": self.cache_entries,
            "workers": self.workers,
            "telemetry": self.telemetry,
            "store_dir": self.store_dir,
            "spill": self.spill,
        }


class SessionRecord:
    """One ingested trace, lazily analyzable and lazily re-serialisable.

    The summary fields (``captured_at``, ``channel_count`` …) are cached
    at construction so manifests and telemetry never fault a spilled
    trace back into memory just to describe it.
    """

    def __init__(
        self,
        name: str,
        trace: DeviceTrace,
        source: str,
        digest: Optional[str] = None,
    ) -> None:
        self.name = name
        self.source = source
        self._trace: Optional[DeviceTrace] = trace
        self._analyzer: Optional[OfflineAnalyzer] = None
        self._trace_json: Optional[str] = None
        self._store: Optional["ArtifactStore"] = None
        self._digest: Optional[str] = None
        #: Stable content identity (source sha256 or artifact digest);
        #: keys memoized aggregate partials.  None: memoization skipped.
        self.content_digest: Optional[str] = digest
        self.captured_at = trace.captured_at
        self.channel_count = len(trace.channels)
        self.link_count = len(trace.links)
        self.app_count = len(trace.apps)

    @classmethod
    def from_store(
        cls, name: str, store: "ArtifactStore", digest: str, source: str = "store"
    ) -> "SessionRecord":
        """A session backed entirely by a stored artifact (no decode yet)."""
        record = cls.__new__(cls)
        record.name = name
        record.source = source
        record._trace = None
        record._analyzer = None
        record._trace_json = None
        record._store = store
        record._digest = digest
        record.content_digest = digest
        meta = store.info(digest).meta
        record.captured_at = float(meta.get("captured_at", 0.0))
        record.channel_count = int(meta.get("channels", 0))
        record.link_count = int(meta.get("links", 0))
        record.app_count = int(meta.get("apps", 0))
        return record

    @property
    def spilled(self) -> bool:
        """Whether the trace currently lives only in the store."""
        return self._trace is None

    @property
    def trace(self) -> DeviceTrace:
        """The session's trace, faulted in from the store if spilled.

        The fault-in is retried under the shared policy (transient read
        failures and one-off digest mismatches recover); persistent
        failure surfaces as :class:`~repro.faults.RetriesExhaustedError`
        for the serving path to turn into a typed error response.
        """
        if self._trace is None:
            from ..store import ArtifactCorruptError

            assert self._store is not None and self._digest is not None
            store, digest = self._store, self._digest

            def _fault_in() -> DeviceTrace:
                fault_point("serve.restore")
                return store.get(digest)

            self._trace = run_with_retry(
                _fault_in,
                site="serve.restore",
                retry_on=(OSError, ArtifactCorruptError),
            )
        return self._trace

    def spill(self, store: "ArtifactStore") -> str:
        """Persist the trace to ``store`` and release the in-memory copy.

        Returns the artifact digest; a ``refs/session/<name>`` pointer
        keeps it gc-reachable and restorable by later processes.
        """
        fault_point("serve.spill")
        if self._digest is None or self._store is not store:
            info = store.put(
                self.trace,
                "trace-bin",
                meta={
                    "session": self.name,
                    "captured_at": self.captured_at,
                    "channels": self.channel_count,
                    "links": self.link_count,
                    "apps": self.app_count,
                },
            )
            self._store = store
            self._digest = info.digest
        store.set_ref(SESSION_REF_NAMESPACE, self.name, self._digest)
        if self.content_digest is None:
            self.content_digest = self._digest
        self._trace = None
        self._analyzer = None
        self._trace_json = None
        return self._digest

    @property
    def analyzer(self) -> OfflineAnalyzer:
        """The session's analyzer (built on first query)."""
        if self._analyzer is None:
            self._analyzer = OfflineAnalyzer(self.trace)
        return self._analyzer

    @property
    def trace_json(self) -> str:
        """The trace re-serialised for shipping to shard workers."""
        if self._trace_json is None:
            self._trace_json = self.trace.to_json()
        return self._trace_json

    def describe(self) -> Dict[str, Any]:
        """JSON-ready session summary (for the manifest)."""
        return {
            "source": self.source,
            "captured_at": self.captured_at,
            "channels": self.channel_count,
            "links": self.link_count,
            "apps": self.app_count,
            "spilled": self.spilled,
        }


class ResultLRU:
    """Bounded answered-payload cache keyed on the query identity."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[Any, ...], Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Tuple[Any, ...]) -> Optional[Dict[str, Any]]:
        """The cached payload, refreshed to most-recent, or None."""
        payload = self._entries.get(key)
        if payload is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return payload

    def store(self, key: Tuple[Any, ...], payload: Dict[str, Any]) -> None:
        """Record one answered payload, evicting the least recent."""
        if self.capacity <= 0:
            return
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every cached payload (counters keep running)."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """hits / lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class ServeStats:
    """Running counters over the service's lifetime."""

    ingested: int = 0
    received: int = 0
    answered: int = 0
    shed: int = 0
    errors: int = 0
    ingest_errors: int = 0
    spill_failures: int = 0
    aggregates: int = 0
    by_backend: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (for the manifest)."""
        out = {
            "ingested": self.ingested,
            "received": self.received,
            "answered": self.answered,
            "shed": self.shed,
            "errors": self.errors,
            "by_backend": dict(self.by_backend),
        }
        if self.ingest_errors:
            out["ingest_errors"] = self.ingest_errors
        if self.spill_failures:
            out["spill_failures"] = self.spill_failures
        if self.aggregates:
            out["aggregates"] = self.aggregates
        return out


class UnknownSessionError(KeyError):
    """A query named a session the service has not ingested."""

    def __init__(self, session: str) -> None:
        super().__init__(session)
        self.session = session

    def __str__(self) -> str:
        return f"unknown session {self.session!r}"


class ProfilingService:
    """Ingest traces once; answer report queries many times."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.sessions: Dict[str, SessionRecord] = {}
        self.cache = ResultLRU(self.config.cache_entries)
        self.stats = ServeStats()
        self.ingest_errors: List[IngestError] = []
        self.store: Optional["ArtifactStore"] = None
        if self.config.store_dir:
            from ..store import ArtifactStore

            self.store = ArtifactStore(self.config.store_dir)
        self.bus = None
        if self.config.telemetry:
            from ..telemetry import TelemetryBus

            self.bus = TelemetryBus()

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest_trace(
        self,
        name: str,
        trace: DeviceTrace,
        source: str = "memory",
        digest: Optional[str] = None,
    ) -> SessionRecord:
        """Register one trace as a queryable session (replaces by name).

        ``digest`` is the trace's content identity (source sha256) when
        the caller knows it — it keys memoized aggregate partials.
        """
        record = SessionRecord(name, trace, source, digest=digest)
        self.sessions[name] = record
        self.stats.ingested += 1
        if self.bus is not None:
            from ..telemetry import SessionIngestedEvent

            self.bus.publish(
                SessionIngestedEvent(
                    time=record.captured_at,
                    session=name,
                    source=source,
                    channels=record.channel_count,
                    links=record.link_count,
                )
            )
        if self.store is not None and self.config.spill:
            try:
                record.spill(self.store)
            except OSError:
                # The session simply stays in memory; spilling is a
                # memory optimisation, not a correctness requirement.
                self.stats.spill_failures += 1
        return record

    def _session_name(self, ingested: IngestedTrace) -> str:
        """Disambiguate same-stem ingests from *different* sources.

        Re-ingesting the same file stays idempotent by name; a different
        file that happens to share the stem gets a short content-digest
        suffix instead of silently replacing the earlier session.
        """
        existing = self.sessions.get(ingested.session)
        if existing is None or existing.source == ingested.source:
            return ingested.session
        suffix = (
            ingested.digest[:8]
            if ingested.digest
            else format(zlib.crc32(ingested.source.encode("utf-8")), "08x")
        )
        return f"{ingested.session}@{suffix}"

    def ingest(self, path: PathLike, strict: bool = True) -> List[str]:
        """Batch-ingest a trace file, JSONL stream, or directory.

        ``strict=False`` records per-source failures in
        :attr:`ingest_errors` and keeps going — every source in the
        batch ends up as a session or an error record, never silently
        dropped.  The default raises on the first bad source, as the
        CLI has always done.
        """
        names: List[str] = []
        errors: Optional[List[IngestError]] = None if strict else []
        for ingested in iter_traces(path, store=self.store, errors=errors):
            name = self._session_name(ingested)
            self.ingest_trace(
                name, ingested.trace, ingested.source, digest=ingested.digest
            )
            names.append(name)
        if errors:
            self.ingest_errors.extend(errors)
            self.stats.ingest_errors += len(errors)
        return names

    def restore_sessions(self) -> List[str]:
        """Re-register every session the store has persisted.

        Traces are *not* decoded here — each restored session reads its
        summary from the artifact manifest and faults the trace in on
        first query.  Returns the restored names (existing in-memory
        sessions with the same name are left alone).
        """
        if self.store is None:
            return []
        names: List[str] = []
        for (_, name), digest in sorted(
            self.store.refs(SESSION_REF_NAMESPACE).items()
        ):
            if name in self.sessions or not self.store.has(digest):
                continue
            try:
                record = SessionRecord.from_store(name, self.store, digest)
            except (StoreError, OSError) as exc:
                # Name the session being restored — a bare store error
                # gives the operator nothing to delete or re-ingest.
                raise StoreError(
                    f"failed to restore session {name!r} "
                    f"(ref {SESSION_REF_NAMESPACE}/{name}, "
                    f"artifact {digest[:16]}): {exc}"
                ) from exc
            self.sessions[name] = record
            self.stats.ingested += 1
            if self.bus is not None:
                from ..telemetry import SessionIngestedEvent

                self.bus.publish(
                    SessionIngestedEvent(
                        time=record.captured_at,
                        session=name,
                        source="store",
                        channels=record.channel_count,
                        links=record.link_count,
                    )
                )
            names.append(name)
        return names

    def session_names(self) -> List[str]:
        """Every ingested session, in ingestion order."""
        return list(self.sessions)

    # ------------------------------------------------------------------
    # sharding
    # ------------------------------------------------------------------
    def shard_of(self, session: str) -> int:
        """Stable shard assignment for a session name."""
        workers = max(1, self.config.workers)
        return zlib.crc32(session.encode("utf-8")) % workers

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def submit(self, query: QueryRequest) -> QueryResponse:
        """Answer one query in-process (cache first, then compute)."""
        started = time.perf_counter()
        self.stats.received += 1
        cached_payload = self.cache.get(query.key())
        if cached_payload is not None:
            return self._finish(query, cached_payload, started, cached=True)
        try:
            payload = self._answer(query)
        except UnknownSessionError as exc:
            return self._finish_error(query, str(exc), started)
        except (UnknownBackendError, ValueError) as exc:
            return self._finish_error(query, str(exc), started)
        except (RetriesExhaustedError, StoreError, OSError) as exc:
            # Fault-in kept failing or the query path itself faulted:
            # the caller gets a typed error naming the failure class.
            return self._finish_error(
                query, f"{type(exc).__name__}: {exc}", started
            )
        self.cache.store(query.key(), payload)
        return self._finish(query, payload, started, cached=False)

    def aggregate(self, request: "AggregateRequest") -> "AggregateResponse":
        """Answer one fleet aggregate across this service's sessions.

        Scatter-gather over every session the request's selector
        matches: partials come from the store memo when fresh, from the
        shard pool (``workers > 1``) or in-process otherwise, and merge
        into one ``repro.aggregate/1`` payload.  See
        :func:`repro.aggregate.run_aggregate`.
        """
        from ..aggregate.engine import run_aggregate

        self.stats.aggregates += 1
        return run_aggregate(self, request)

    def serve_batch(
        self,
        queries: Sequence[QueryRequest],
        burst: Optional[int] = None,
    ) -> List[QueryResponse]:
        """Answer a query load under admission control.

        Arrivals are consumed in bursts of ``burst`` (default: the queue
        depth) against the bounded queue: the first ``max_queue``
        queries of each burst are admitted and served, the rest are shed
        with explicit ``status: shed`` responses.  At the default burst
        size shedding is impossible — backpressure only appears when the
        caller deliberately delivers bursts larger than the queue.

        Responses come back in arrival order regardless of shard
        completion order.
        """
        burst_size = self.config.max_queue if burst is None else max(1, burst)
        responses: Dict[int, QueryResponse] = {}
        order: List[int] = []
        for begin in range(0, len(queries), burst_size):
            arrival = queries[begin : begin + burst_size]
            admitted = list(arrival[: self.config.max_queue])
            for overflow in arrival[self.config.max_queue :]:
                responses[overflow.id] = self.shed(overflow)
                order.append(overflow.id)
            for query in admitted:
                order.append(query.id)
            for answered in self._drain(admitted):
                responses[answered.id] = answered
        # Arrival order, not completion order.
        seen: set = set()
        ordered: List[QueryResponse] = []
        for qid in order:
            if qid in seen:
                continue
            seen.add(qid)
            ordered.append(responses[qid])
        return ordered

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _drain(self, admitted: List[QueryRequest]) -> List[QueryResponse]:
        """Serve one admitted burst, fanning misses out over shards."""
        if self.config.workers <= 1 or len(admitted) < 2:
            return [self.submit(query) for query in admitted]

        responses: List[QueryResponse] = []
        misses_by_shard: Dict[int, List[QueryRequest]] = {}
        for query in admitted:
            self.stats.received += 1
            started = time.perf_counter()
            cached_payload = self.cache.get(query.key())
            if cached_payload is not None:
                responses.append(
                    self._finish(query, cached_payload, started, cached=True)
                )
                continue
            if query.session not in self.sessions:
                responses.append(
                    self._finish_error(
                        query, str(UnknownSessionError(query.session)), started
                    )
                )
                continue
            misses_by_shard.setdefault(self.shard_of(query.session), []).append(query)
        if misses_by_shard:
            responses.extend(self._dispatch_shards(misses_by_shard))
        return responses

    def _dispatch_shards(
        self, misses_by_shard: Dict[int, List[QueryRequest]]
    ) -> List[QueryResponse]:
        """Run one ``serve`` engine job per shard; fold results back."""
        from ..exec.engine import EngineConfig, ExperimentEngine

        responses: List[QueryResponse] = []
        requests = []
        shard_queries: List[List[QueryRequest]] = []
        for shard, queries in sorted(misses_by_shard.items()):
            sessions = {q.session for q in queries}
            try:
                traces = {
                    name: self.sessions[name].trace_json for name in sessions
                }
            except (RetriesExhaustedError, StoreError, OSError) as exc:
                # A spilled trace would not come back: every query on
                # this shard errors with the failure named, the other
                # shards still dispatch.
                for query in queries:
                    responses.append(
                        self._finish_error(
                            query,
                            f"{type(exc).__name__}: {exc}",
                            time.perf_counter(),
                        )
                    )
                continue
            requests.append(
                (
                    "serve",
                    {
                        "traces": traces,
                        "queries": [q.to_dict() for q in queries],
                    },
                )
            )
            shard_queries.append(queries)
        if not requests:
            return responses
        engine = ExperimentEngine(
            EngineConfig(parallel=self.config.workers, use_cache=False)
        )

        def _dispatch():
            fault_point("serve.dispatch")
            return engine.run(requests)

        try:
            run = run_with_retry(_dispatch, site="serve.dispatch", retry_on=(OSError,))
        except RetriesExhaustedError as exc:
            for queries in shard_queries:
                for query in queries:
                    responses.append(
                        self._finish_error(query, str(exc), time.perf_counter())
                    )
            return responses
        for queries, result in zip(shard_queries, run.results):
            raw = result.outcome.metrics.get("responses")
            if raw is None:  # the whole shard job failed — every query errors
                for query in queries:
                    responses.append(
                        self._finish_error(
                            query,
                            result.outcome.error or "shard worker failed",
                            time.perf_counter(),
                        )
                    )
                continue
            by_id = {int(r["id"]): QueryResponse.from_dict(r) for r in raw}
            for query in queries:
                response = by_id.get(query.id)
                if response is None:
                    response = QueryResponse(
                        id=query.id,
                        session=query.session,
                        status=STATUS_ERROR,
                        error="shard worker returned no response",
                    )
                if response.ok and response.report is not None:
                    # The miss was already counted when _drain probed the
                    # cache; just fold the remote answer in.
                    self.cache.store(query.key(), response.report)
                self._note(query, response)
                responses.append(response)
        return responses

    def _answer(self, query: QueryRequest) -> Dict[str, Any]:
        """Compute one report payload (no cache, no stats)."""
        fault_point("serve.query")
        record = self.sessions.get(query.session)
        if record is None:
            raise UnknownSessionError(query.session)
        return record.analyzer.describe(query.report).to_dict()

    def _finish(
        self,
        query: QueryRequest,
        payload: Dict[str, Any],
        started: float,
        cached: bool,
    ) -> QueryResponse:
        response = QueryResponse(
            id=query.id,
            session=query.session,
            status=STATUS_OK,
            report=payload,
            cached=cached,
            latency_us=(time.perf_counter() - started) * 1e6,
        )
        self._note(query, response)
        return response

    def _finish_error(
        self, query: QueryRequest, error: str, started: float
    ) -> QueryResponse:
        response = QueryResponse(
            id=query.id,
            session=query.session,
            status=STATUS_ERROR,
            error=error,
            latency_us=(time.perf_counter() - started) * 1e6,
        )
        self._note(query, response)
        return response

    def shed(self, query: QueryRequest) -> QueryResponse:
        """Refuse one query under admission control (counted, never silent).

        Public because every serving front-end (batch, daemon, TCP) must
        shed through the same accounting path so
        ``received == answered + errors + shed`` holds service-wide.
        """
        self.stats.received += 1
        self.stats.shed += 1
        if self.bus is not None:
            from ..telemetry import QueryShedEvent

            record = self.sessions.get(query.session)
            self.bus.publish(
                QueryShedEvent(
                    time=record.captured_at if record else 0.0,
                    session=query.session,
                    backend=query.report.backend,
                    queue_depth=self.config.max_queue,
                )
            )
        return QueryResponse(
            id=query.id,
            session=query.session,
            status=STATUS_SHED,
            error=f"queue full (depth {self.config.max_queue}); back off and resubmit",
        )

    def _note(self, query: QueryRequest, response: QueryResponse) -> None:
        """Fold one served/errored response into stats + telemetry."""
        if response.status == STATUS_OK:
            self.stats.answered += 1
            backend = query.report.backend
            self.stats.by_backend[backend] = self.stats.by_backend.get(backend, 0) + 1
        else:
            self.stats.errors += 1
        if self.bus is not None:
            from ..telemetry import QueryServedEvent

            record = self.sessions.get(query.session)
            self.bus.publish(
                QueryServedEvent(
                    time=record.captured_at if record else 0.0,
                    session=query.session,
                    backend=query.report.backend,
                    status=response.status,
                    cached=response.cached,
                    latency_us=response.latency_us,
                )
            )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def manifest(self) -> Dict[str, Any]:
        """The service's run record: config, sessions, stats, cache."""
        return {
            "kind": "repro-serve-manifest",
            "config": self.config.as_dict(),
            "sessions": {
                name: record.describe() for name, record in self.sessions.items()
            },
            "stats": self.stats.as_dict(),
            "cache": {
                "entries": len(self.cache),
                "capacity": self.cache.capacity,
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "hit_rate": self.cache.hit_rate,
            },
            "store": self.store.stats() if self.store is not None else None,
            "telemetry": self.bus.stats_dict() if self.bus is not None else None,
            **(
                {"ingest_errors": [e.to_dict() for e in self.ingest_errors]}
                if self.ingest_errors
                else {}
            ),
        }

"""ServiceClient — the ergonomic front door to a ProfilingService.

The service itself speaks only the wire protocol (QueryRequest in,
QueryResponse out).  The client adds what callers actually want:

* keyword-style queries (``client.query("phone-a", "eandroid")``);
* the ``"*"`` session wildcard, expanded over every ingested session;
* batch submission under the service's admission control, with
  automatic resubmission of shed responses (bounded retries);
* typed errors instead of status-code checking.

The client talks to an in-process service object; the daemon mode of
``python -m repro serve`` wraps the same protocol over stdin/stdout for
out-of-process callers.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..reports.request import ReportRequest
from .protocol import ALL_SESSIONS, STATUS_SHED, QueryRequest, QueryResponse
from .service import ProfilingService


class QueryFailedError(RuntimeError):
    """A query came back with ``status: error``."""

    def __init__(self, response: QueryResponse) -> None:
        super().__init__(
            f"query {response.id} on session {response.session!r} failed: "
            f"{response.error}"
        )
        self.response = response


class ServiceClient:
    """Keyword-friendly querying over one in-process service."""

    def __init__(self, service: ProfilingService, max_resubmits: int = 3) -> None:
        self.service = service
        self.max_resubmits = max_resubmits
        self._next_id = 1

    # ------------------------------------------------------------------
    # building queries
    # ------------------------------------------------------------------
    def _take_id(self) -> int:
        qid = self._next_id
        self._next_id += 1
        return qid

    def build(
        self,
        session: str,
        backend: str,
        start: float = 0.0,
        end: Optional[float] = None,
        owners: Optional[Sequence[int]] = None,
    ) -> List[QueryRequest]:
        """One query — or one per session for the ``"*"`` wildcard."""
        report = ReportRequest(
            backend=backend,
            start=start,
            end=end,
            owners=None if owners is None else tuple(owners),
        )
        sessions = (
            self.service.session_names() if session == ALL_SESSIONS else [session]
        )
        return [
            QueryRequest(id=self._take_id(), session=name, report=report)
            for name in sessions
        ]

    def expand(self, queries: Sequence[QueryRequest]) -> List[QueryRequest]:
        """Expand ``"*"`` sessions in an already-built query list."""
        expanded: List[QueryRequest] = []
        for query in queries:
            if query.session == ALL_SESSIONS:
                expanded.extend(
                    QueryRequest(
                        id=self._take_id(), session=name, report=query.report
                    )
                    for name in self.service.session_names()
                )
            else:
                expanded.append(query)
        return expanded

    # ------------------------------------------------------------------
    # issuing queries
    # ------------------------------------------------------------------
    def query(
        self,
        session: str,
        backend: str,
        start: float = 0.0,
        end: Optional[float] = None,
        owners: Optional[Sequence[int]] = None,
    ) -> Dict[str, Any]:
        """One report payload (the ReportView wire form); raises on error.

        With ``session="*"`` returns a ``{session: payload}`` mapping
        instead.
        """
        queries = self.build(session, backend, start, end, owners)
        responses = self.submit_all(queries)
        if session == ALL_SESSIONS:
            return {r.session: r.report for r in responses}
        return responses[0].report

    def total_j(
        self,
        session: str,
        backend: str,
        start: float = 0.0,
        end: Optional[float] = None,
    ) -> float:
        """Convenience: just the report's total joules."""
        return float(self.query(session, backend, start, end)["total_j"])

    def submit_all(
        self, queries: Sequence[QueryRequest], burst: Optional[int] = None
    ) -> List[QueryResponse]:
        """Serve a batch, resubmitting shed queries a bounded number of
        times; raises :class:`QueryFailedError` on the first hard error.
        """
        pending = self.expand(list(queries))
        answered: Dict[int, QueryResponse] = {}
        arrival = [q.id for q in pending]
        for _ in range(self.max_resubmits + 1):
            if not pending:
                break
            responses = self.service.serve_batch(pending, burst=burst)
            by_id = {q.id: q for q in pending}
            pending = []
            for response in responses:
                if response.status == STATUS_SHED:
                    pending.append(by_id[response.id])
                    answered[response.id] = response  # kept if retries run out
                else:
                    if response.status != "ok":
                        raise QueryFailedError(response)
                    answered[response.id] = response
        for qid, response in answered.items():
            if response.status == STATUS_SHED:
                # Name the query that ran out of resubmits — a bare
                # "shed" tells the caller nothing about *what* to retry.
                answered[qid] = replace(
                    response,
                    error=(
                        f"query {response.id} on session {response.session!r} "
                        f"still shed after {self.max_resubmits} resubmit(s): "
                        f"{response.error or 'queue full'}"
                    ),
                )
        return [answered[qid] for qid in arrival]

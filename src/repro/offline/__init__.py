"""Offline trace capture and attribution (analysis without the device)."""

from .analyzer import OfflineAnalyzer
from .trace import (
    ChannelTrace,
    DeviceTrace,
    LinkRecord,
    TraceFormatError,
    capture_trace,
)

__all__ = [
    "DeviceTrace",
    "ChannelTrace",
    "LinkRecord",
    "TraceFormatError",
    "capture_trace",
    "OfflineAnalyzer",
]

"""Offline trace capture and attribution (analysis without the device)."""

from .analyzer import OfflineAnalyzer
from .trace import ChannelTrace, DeviceTrace, LinkRecord, capture_trace

__all__ = [
    "DeviceTrace",
    "ChannelTrace",
    "LinkRecord",
    "capture_trace",
    "OfflineAnalyzer",
]
